//! Offline shim for the subset of `crossbeam-epoch` this workspace uses:
//! [`Atomic`], [`Owned`], [`Shared`], [`Guard`] with [`Guard::defer_destroy`],
//! [`pin`] and [`unprotected`].
//!
//! Reclamation is era-based quiescent-state tracking rather than crossbeam's
//! per-thread garbage bags:
//!
//! * a global **era** counter is bumped after every retirement;
//! * a pinned thread advertises the era it pinned at in a registry slot;
//! * garbage retired at era `R` is freed once every pinned thread advertises
//!   an era `> R`.
//!
//! Safety argument (matching how the commit chain uses the API): a node is
//! *unlinked* (made unreachable from the shared structure) before it is
//! retired, and the retirement records the era **before** bumping it. Any
//! thread that could still hold a reference to the node must therefore have
//! pinned before the unlink, i.e. at an era `<= R`. Once the minimum
//! advertised era exceeds `R`, no such thread remains pinned and the node
//! can be freed. All protocol accesses use `SeqCst`, so the claim-slot →
//! pin → load ordering and the unlink → retire → bump ordering are both
//! within the single total order the argument needs.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

const SLOT_COUNT: usize = 512;
const INACTIVE: u64 = u64::MAX;

static ERA: AtomicU64 = AtomicU64::new(1);

/// One era-advertisement slot, padded to its own cache line: `pin`/unpin
/// store to the owning thread's slot on every guard cycle, and an unpadded
/// array would false-share those stores across all pinning threads — which
/// shows up directly in read-path scaling, since every transactional read
/// pins.
#[repr(align(128))]
struct Slot(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)]
const INACTIVE_SLOT: Slot = Slot(AtomicU64::new(INACTIVE));
static SLOTS: [Slot; SLOT_COUNT] = [INACTIVE_SLOT; SLOT_COUNT];
/// Number of registry slots ever claimed; bounds the collection scan.
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);
static FREE_SLOTS: Mutex<Vec<usize>> = Mutex::new(Vec::new());

/// Type-erased deferred destruction of a `Box<T>`.
struct Garbage {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// The pointee was unlinked from all shared structures before retirement;
// whichever thread frees it has exclusive access.
unsafe impl Send for Garbage {}

impl Garbage {
    fn new<T>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut u8) {
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Garbage { ptr: ptr.cast(), drop_fn: drop_box::<T> }
    }

    fn free(self) {
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

static LIMBO: Mutex<Vec<(u64, Garbage)>> = Mutex::new(Vec::new());
/// Approximate `LIMBO` length, maintained alongside the mutex so unpin can
/// skip the collection pass (and its `try_lock`) with one relaxed load when
/// there is nothing to reclaim — the overwhelmingly common case on read-only
/// paths that pin without ever retiring.
static LIMBO_COUNT: AtomicUsize = AtomicUsize::new(0);

struct ThreadReg {
    slot: usize,
    depth: Cell<usize>,
}

impl ThreadReg {
    fn claim() -> ThreadReg {
        let slot = loop {
            if let Some(i) = FREE_SLOTS.lock().unwrap_or_else(PoisonError::into_inner).pop() {
                break i;
            }
            let hw = HIGH_WATER.load(Ordering::SeqCst);
            if hw < SLOT_COUNT
                && HIGH_WATER
                    .compare_exchange(hw, hw + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                break hw;
            }
            // More live threads than slots: wait for one to exit.
            std::thread::yield_now();
        };
        ThreadReg { slot, depth: Cell::new(0) }
    }
}

impl Drop for ThreadReg {
    fn drop(&mut self) {
        SLOTS[self.slot].0.store(INACTIVE, Ordering::SeqCst);
        FREE_SLOTS.lock().unwrap_or_else(PoisonError::into_inner).push(self.slot);
    }
}

thread_local! {
    static REG: ThreadReg = ThreadReg::claim();
}

/// Frees every limbo entry whose retirement era precedes the minimum era
/// advertised by a pinned thread. Skips the pass when the limbo lock is
/// contended — some other thread is already collecting.
fn try_collect() {
    if LIMBO_COUNT.load(Ordering::Relaxed) == 0 {
        return;
    }
    let mut limbo = match LIMBO.try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => return,
    };
    if limbo.is_empty() {
        return;
    }
    let hw = HIGH_WATER.load(Ordering::SeqCst).min(SLOT_COUNT);
    let mut min = u64::MAX;
    for slot in SLOTS.iter().take(hw) {
        min = min.min(slot.0.load(Ordering::SeqCst));
    }
    let mut keep = Vec::new();
    for (era, g) in limbo.drain(..) {
        if era < min {
            g.free();
        } else {
            keep.push((era, g));
        }
    }
    LIMBO_COUNT.store(keep.len(), Ordering::Relaxed);
    *limbo = keep;
}

/// A pinned-participant handle. While alive, garbage retired at or after
/// the pin cannot be freed.
pub struct Guard {
    /// Registry slot of the pinning thread; `-1` marks the unprotected guard.
    slot: isize,
    _not_send: PhantomData<*mut ()>,
}

/// Pins the current thread, returning a guard that keeps loaded [`Shared`]
/// pointers valid until dropped.
pub fn pin() -> Guard {
    REG.with(|reg| {
        if reg.depth.get() == 0 {
            SLOTS[reg.slot].0.store(ERA.load(Ordering::SeqCst), Ordering::SeqCst);
        }
        reg.depth.set(reg.depth.get() + 1);
        Guard { slot: reg.slot as isize, _not_send: PhantomData }
    })
}

struct StaticGuard(Guard);
// The unprotected guard carries no thread state.
unsafe impl Sync for StaticGuard {}
static UNPROTECTED: StaticGuard = StaticGuard(Guard { slot: -1, _not_send: PhantomData });

/// Returns a guard that performs no pinning.
///
/// # Safety
///
/// Callers must guarantee no other thread concurrently accesses the data
/// structure (e.g. inside `Drop` with `&mut self`).
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED.0
}

impl Guard {
    /// Defers destruction of the value `ptr` points to until no pinned
    /// thread can still be holding a reference to it.
    ///
    /// # Safety
    ///
    /// `ptr` must point to an initialized, owned allocation that has been
    /// made unreachable to threads that pin after this call.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        debug_assert!(!ptr.is_null());
        if self.slot < 0 {
            // Unprotected: the caller asserts exclusive access.
            drop(unsafe { Box::from_raw(ptr.ptr) });
            return;
        }
        let era = ERA.load(Ordering::SeqCst);
        LIMBO.lock().unwrap_or_else(PoisonError::into_inner).push((era, Garbage::new(ptr.ptr)));
        LIMBO_COUNT.fetch_add(1, Ordering::Relaxed);
        ERA.fetch_add(1, Ordering::SeqCst);
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.slot < 0 {
            return;
        }
        let outermost = REG
            .try_with(|reg| {
                let d = reg.depth.get() - 1;
                reg.depth.set(d);
                if d == 0 {
                    SLOTS[reg.slot].0.store(INACTIVE, Ordering::SeqCst);
                }
                d == 0
            })
            .unwrap_or(true);
        // Nested unpins cannot advance the minimum advertised era, so only
        // the outermost unpin attempts collection — this keeps reentrant
        // pin/unpin cycles (amortized read batches) free of shared-state
        // traffic entirely.
        if outermost {
            try_collect();
        }
    }
}

/// Types that can be handed to [`Atomic::store`] / [`Atomic::compare_exchange`]:
/// owned boxes ([`Owned`]) and borrowed pointers ([`Shared`]).
pub trait Pointer<T> {
    /// Consumes `self` into a raw pointer (without dropping the pointee).
    fn into_ptr(self) -> *mut T;
    /// Reconstructs `Self` from a raw pointer produced by [`Pointer::into_ptr`].
    ///
    /// # Safety
    ///
    /// `ptr` must have come from `into_ptr` of the same implementing type.
    unsafe fn from_ptr(ptr: *mut T) -> Self;
}

/// An owned, heap-allocated value destined for an [`Atomic`].
pub struct Owned<T> {
    ptr: *mut T,
}

unsafe impl<T: Send> Send for Owned<T> {}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned { ptr: Box::into_raw(Box::new(value)) }
    }

    /// Converts into a [`Shared`] pointer bound to `guard`.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { ptr: self.into_ptr(), _marker: PhantomData }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.ptr }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        drop(unsafe { Box::from_raw(self.ptr) });
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let p = self.ptr;
        std::mem::forget(self);
        p
    }
    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Owned { ptr }
    }
}

/// A pointer into an [`Atomic`], valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.ptr, other.ptr)
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared { ptr: std::ptr::null_mut(), _marker: PhantomData }
    }

    /// Whether this pointer is null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences, returning `None` for null.
    ///
    /// # Safety
    ///
    /// Non-null pointers must reference live data (guaranteed while the
    /// guard that produced them is held and the data was reachable).
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        unsafe { self.ptr.as_ref() }
    }

    /// Dereferences a known non-null pointer.
    ///
    /// # Safety
    ///
    /// As for [`Shared::as_ref`], plus the pointer must be non-null.
    pub unsafe fn deref(&self) -> &'g T {
        unsafe { &*self.ptr }
    }

    /// Takes ownership of the pointee.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee and the pointer
    /// must be non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned { ptr: self.ptr }
    }

    /// The raw pointer value.
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr
    }
    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Shared { ptr, _marker: PhantomData }
    }
}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

/// Error of a failed [`Atomic::compare_exchange`]: the value actually
/// found, and the not-installed new value handed back to the caller.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic held instead of the expected one.
    pub current: Shared<'g, T>,
    /// The new value, returned so the caller can retry without realloc.
    pub new: P,
}

/// An atomic pointer usable with epoch-guarded loads.
pub struct Atomic<T> {
    inner: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null atomic pointer.
    pub fn null() -> Self {
        Atomic { inner: AtomicPtr::new(std::ptr::null_mut()) }
    }

    /// Allocates `value` and stores a pointer to it.
    pub fn new(value: T) -> Self {
        Atomic { inner: AtomicPtr::new(Box::into_raw(Box::new(value))) }
    }

    /// Loads the pointer; the result is valid while `_guard` is held.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { ptr: self.inner.load(ord), _marker: PhantomData }
    }

    /// Stores `new` (a [`Shared`] or [`Owned`]).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.inner.store(new.into_ptr(), ord);
    }

    /// Compare-exchange: installs `new` if the current value is `current`.
    /// On failure the not-installed `new` is handed back in the error.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.into_ptr();
        match self.inner.compare_exchange(current.ptr, new_ptr, success, failure) {
            Ok(_) => Ok(Shared { ptr: new_ptr, _marker: PhantomData }),
            Err(found) => Err(CompareExchangeError {
                current: Shared { ptr: found, _marker: PhantomData },
                new: unsafe { P::from_ptr(new_ptr) },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Value whose drops are counted through a per-test counter (tests run
    /// concurrently, so a global counter would race).
    struct Counted(u64, Arc<AtomicUsize>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.1.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn cas_load_and_reclaim() {
        let drops = Arc::new(AtomicUsize::new(0));
        let a: Atomic<Counted> = Atomic::new(Counted(1, Arc::clone(&drops)));
        {
            let guard = pin();
            let old = a.load(Ordering::Acquire, &guard);
            let newv = Owned::new(Counted(2, Arc::clone(&drops)));
            let installed = a
                .compare_exchange(old, newv, Ordering::AcqRel, Ordering::Acquire, &guard)
                .ok()
                .expect("uncontended CAS succeeds");
            assert_eq!(unsafe { installed.deref() }.0, 2);
            unsafe { guard.defer_destroy(old) };
        }
        // Collection only needs *some* later unpin with no pins active; other
        // tests may hold pins concurrently, so poll briefly.
        for _ in 0..1000 {
            drop(pin());
            if drops.load(Ordering::SeqCst) >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(drops.load(Ordering::SeqCst) >= 1, "retired node never collected");
        // Free the live node via the unprotected path.
        let guard = unsafe { unprotected() };
        let cur = a.load(Ordering::Relaxed, guard);
        drop(unsafe { cur.into_owned() });
    }

    #[test]
    fn failed_cas_returns_new_value() {
        let a: Atomic<u64> = Atomic::new(7);
        let guard = pin();
        let stale = Shared::null();
        let n = Owned::new(9u64);
        match a.compare_exchange(stale, n, Ordering::AcqRel, Ordering::Acquire, &guard) {
            Ok(_) => panic!("CAS against null must fail: value is non-null"),
            Err(e) => {
                assert_eq!(unsafe { e.current.deref() }, &7);
                assert_eq!(*e.new, 9); // Owned handed back intact
            }
        }
        drop(guard);
        let unp = unsafe { unprotected() };
        let cur = a.load(Ordering::Relaxed, unp);
        drop(unsafe { cur.into_owned() });
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let a: Arc<Atomic<Counted>> = Arc::new(Atomic::new(Counted(10, Arc::clone(&drops))));

        let reader_guard = pin();
        let held = a.load(Ordering::Acquire, &reader_guard);

        // Another thread swaps the value out and retires the old node.
        let a2 = Arc::clone(&a);
        let d2 = Arc::clone(&drops);
        std::thread::spawn(move || {
            let guard = pin();
            let old = a2.load(Ordering::Acquire, &guard);
            let n = Owned::new(Counted(11, d2));
            a2.compare_exchange(old, n, Ordering::AcqRel, Ordering::Acquire, &guard)
                .ok()
                .expect("uncontended CAS succeeds");
            unsafe { guard.defer_destroy(old) };
        })
        .join()
        .unwrap();

        // While we stay pinned the node must not be freed.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(unsafe { held.deref() }.0, 10);
        drop(reader_guard);

        // After unpinning, collection passes eventually free it.
        for _ in 0..1000 {
            drop(pin());
            if drops.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "retired node never collected");

        let guard = unsafe { unprotected() };
        let cur = a.load(Ordering::Relaxed, guard);
        drop(unsafe { cur.into_owned() });
    }
}
