//! Offline shim for the subset of `crossbeam-deque` this workspace uses:
//! [`Injector`], [`Worker`]/[`Stealer`], and the [`Steal`] result enum.
//!
//! The real crate implements the Chase–Lev lock-free deque; this shim uses
//! a mutex-guarded `VecDeque` per queue, which preserves the API and the
//! FIFO semantics (all queues here are created with [`Worker::new_fifo`])
//! at some loss of peak throughput. The task pool's throughput is
//! dominated by task bodies, not queue operations, so this is an
//! acceptable stand-in when the real crate cannot be fetched.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and may be retried. (This shim's locked
    /// queues never race, so `Retry` is never produced; the variant exists
    /// for API compatibility.)
    Retry,
}

impl<T> Steal<T> {
    /// Whether this is [`Steal::Retry`].
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Whether this is [`Steal::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A global FIFO queue every worker can push to and steal from.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector { queue: Mutex::new(VecDeque::new()) }
    }

    /// Pushes a task onto the global queue.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Steals one task from the global queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks into `dest`'s local queue and pops one.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.queue);
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        // Move up to half of the remainder (capped) into the local queue.
        let take = (q.len() / 2).min(16);
        if take > 0 {
            let mut local = lock(&dest.queue);
            for _ in 0..take {
                match q.pop_front() {
                    Some(t) => local.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

/// A worker-local FIFO queue.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates an empty FIFO worker queue.
    pub fn new_fifo() -> Self {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Pushes a task onto the local queue.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Pops the next local task.
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_front()
    }

    /// Whether the local queue was observed empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// A handle other threads use to steal from this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

/// Steals tasks from another worker's queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals one task from the owning worker's queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_fifo_and_batch_steal() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        assert!(matches!(inj.steal(), Steal::Success(0)));
        let w = Worker::new_fifo();
        // Pops 1, moves up to half the remaining 8 into the local queue.
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success(1)));
        let mut local = Vec::new();
        while let Some(t) = w.pop() {
            local.push(t);
        }
        assert_eq!(local, vec![2, 3, 4, 5]);
        assert!(matches!(inj.steal(), Steal::Success(6)));
    }

    #[test]
    fn stealer_takes_from_worker() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        assert!(s.steal().is_empty());
        w.push('a');
        w.push('b');
        assert!(matches!(s.steal(), Steal::Success('a')));
        assert_eq!(w.pop(), Some('b'));
    }
}
