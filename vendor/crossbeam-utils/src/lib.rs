//! Offline shim for the subset of `crossbeam-utils` this workspace uses:
//! [`CachePadded`].

#![warn(missing_docs)]

/// Pads and aligns a value to (a conservative upper bound of) the length
/// of a cache line, so adjacent atomics in an array do not false-share.
///
/// 128 bytes covers the spatial-prefetcher pairs on modern x86_64 and the
/// cache lines of aarch64 big cores.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        let mut p = CachePadded::new(5u64);
        *p += 1;
        assert_eq!(*p, 6);
        assert_eq!(p.into_inner(), 6);
    }
}
