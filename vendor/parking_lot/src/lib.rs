//! Offline shim over `std::sync` exposing the subset of the `parking_lot`
//! API this workspace uses: `Mutex`/`MutexGuard` (including
//! [`MutexGuard::unlocked`]), `RwLock`, and `Condvar::wait_for`.
//!
//! Semantics follow parking_lot, not std: locks do **not** poison — a
//! panic while a guard is held leaves the protected data accessible to
//! other threads (std's `PoisonError` is swallowed via `into_inner`).

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a [`Mutex`]; unlocks on drop.
///
/// Holds the underlying std guard in an `Option` so that
/// [`MutexGuard::unlocked`] and [`Condvar::wait_for`] can temporarily
/// release and re-acquire the lock in place.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { lock: self, inner: Some(inner) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(inner) => Some(MutexGuard { lock: self, inner: Some(inner) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { lock: self, inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Runs `f` with the lock released, re-acquiring it afterwards.
    ///
    /// Mirrors `parking_lot::MutexGuard::unlocked`: the guard is unusable
    /// while `f` runs and valid again once it returns.
    pub fn unlocked<U>(s: &mut MutexGuard<'a, T>, f: impl FnOnce() -> U) -> U {
        s.inner = None; // drop the std guard: releases the lock
        let r = f();
        s.inner = Some(s.lock.0.lock().unwrap_or_else(PoisonError::into_inner));
        r
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is locked")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is locked")
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar(std::sync::Condvar);

/// Whether a [`Condvar::wait_for`] returned because of a timeout.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard is locked");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard is locked");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut g = m.lock();
        let m2 = Arc::clone(&m);
        MutexGuard::unlocked(&mut g, move || {
            // The lock is free here: another thread can take it.
            let h = std::thread::spawn(move || {
                *m2.lock() += 10;
            });
            h.join().unwrap();
        });
        assert_eq!(*g, 10);
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 11);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        drop(g);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            pair.1.wait_for(&mut g, Duration::from_millis(50));
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
