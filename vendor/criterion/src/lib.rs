//! Offline shim for the subset of the `criterion` API this workspace's
//! benches use: `Criterion::default()` with `sample_size` /
//! `measurement_time` / `warm_up_time`, `bench_function`, `Bencher::iter`
//! and `Bencher::iter_batched`, plus the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a straightforward calibrated timing loop (no statistical
//! regression, outlier analysis, or HTML reports): each sample runs a batch
//! sized so the whole measurement fits in `measurement_time`, and the shim
//! prints min/median/mean per-iteration times. Good enough to compare runs
//! of this repository against each other, which is all the harness needs.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the shim
/// re-creates one input per measured call regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver configured fluently, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark: hands `f` a [`Bencher`] and reports the timing.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Per-iteration timing results, in nanoseconds.
struct Stats {
    min: f64,
    median: f64,
    mean: f64,
}

/// Runs the measured routine; handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Per-iteration nanoseconds of each sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine` directly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up & calibration: find how many iterations fit one sample.
        let mut iters_per_sample = 1u64;
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            let target = self.measurement_time.div_f64(self.sample_size as f64);
            if elapsed >= target || Instant::now() >= warm_deadline {
                if elapsed < target {
                    let scale = target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                    iters_per_sample =
                        ((iters_per_sample as f64 * scale).ceil() as u64).max(iters_per_sample);
                }
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }

        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }

    /// Benchmarks a routine that runs `iters` iterations itself and returns
    /// the measured wall time — for multi-threaded or externally timed loops
    /// (mirrors upstream criterion's `iter_custom`).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        // Warm-up & calibration: find how many iterations fit one sample.
        let mut iters_per_sample = 1u64;
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            let elapsed = routine(iters_per_sample);
            let target = self.measurement_time.div_f64(self.sample_size as f64);
            if elapsed >= target || Instant::now() >= warm_deadline {
                if elapsed < target {
                    let scale = target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                    iters_per_sample =
                        ((iters_per_sample as f64 * scale).ceil() as u64).max(iters_per_sample);
                }
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }
        for _ in 0..self.sample_size {
            let d = routine(iters_per_sample);
            self.samples.push(d.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up: at least one call, bounded by the warm-up budget.
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            let input = setup();
            std::hint::black_box(routine(input));
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // One timed call per sample; setup cost excluded.
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64() * 1e9);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn stats(&self) -> Option<Stats> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Stats { min: sorted[0], median, mean })
    }

    fn report(&self, name: &str) {
        match self.stats() {
            Some(s) => println!(
                "bench: {name:<60} min {} median {} mean {}",
                fmt_ns(s.min),
                fmt_ns(s.median),
                fmt_ns(s.mean),
            ),
            None => println!("bench: {name:<60} (no samples)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either the block form
/// (`name = ident; config = expr; targets = fns`) or the simple list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("shim_smoke_iter", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("shim_smoke_batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= runs && runs >= 3);
    }

    #[test]
    fn group_macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("macro_target", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default()
                .sample_size(2)
                .measurement_time(Duration::from_millis(5))
                .warm_up_time(Duration::from_millis(1));
            targets = target
        }
        benches();
    }
}
