//! Offline API shim for the [`loom`] concurrency model checker.
//!
//! The build environment has no network access, so the real `loom` crate
//! (exhaustive DPOR exploration of every interleaving under the C11 memory
//! model) cannot be used. This shim exposes the small surface the workspace's
//! `cfg(loom)` tests consume — [`model`], [`thread::spawn`],
//! [`thread::yield_now`], [`hint::spin_loop`] and the [`sync`] re-exports —
//! and implements [`model`] as **randomized stress scheduling**: the closure
//! runs for many iterations, and [`thread::yield_now`] / [`hint::spin_loop`]
//! inject pseudo-random sleeps and OS yields to perturb thread timing
//! differently on every iteration.
//!
//! # Fidelity caveats (honest limitations)
//!
//! * This is a **stress tester, not a model checker**: it samples
//!   interleavings instead of enumerating them, so passing runs raise
//!   confidence but prove nothing.
//! * It runs on real hardware, so only interleavings your CPU's memory model
//!   can produce are explored (x86-TSO is much stronger than C11; weak-order
//!   bugs that need Arm/Power reorderings may never fire).
//! * `sync`/`cell` are re-exports of `std` types, not loom's checked
//!   doubles, so there is no happens-before verification or leak checking.
//!
//! Swapping in the real crate requires no test changes: the surface below is
//! call-compatible with loom 0.7 for everything the tests use.
//!
//! [`loom`]: https://docs.rs/loom

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Iterations [`model`] runs its closure (override with `LOOM_MAX_ITER`,
/// kept name-compatible with the real crate's iteration bound knob).
const DEFAULT_ITERS: u64 = 400;

static SCHED_SEED: AtomicU64 = AtomicU64::new(0);

/// Runs `f` under the stress scheduler: many fresh iterations, each with a
/// different pseudo-random perturbation seed consumed by
/// [`thread::yield_now`]. Panics propagate (a failed assertion in any
/// iteration fails the test), matching real loom's contract.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters =
        std::env::var("LOOM_MAX_ITER").ok().and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        SCHED_SEED.store(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), Ordering::Relaxed);
        f();
    }
}

fn next_perturbation() -> u64 {
    // SplitMix64 step over the shared seed: cheap, thread-safe, and varied
    // across both iterations and call sites.
    let mut z = SCHED_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scheduling-perturbation points (loom's preemption points).
pub mod thread {
    pub use std::thread::{spawn, JoinHandle};

    /// A preemption point: randomly either yields to the OS scheduler,
    /// spins briefly, or sleeps for a few microseconds, so that successive
    /// [`crate::model`] iterations explore different timings.
    pub fn yield_now() {
        match super::next_perturbation() % 8 {
            0 | 1 => std::thread::yield_now(),
            2 => std::thread::sleep(std::time::Duration::from_micros(
                super::next_perturbation() % 50,
            )),
            3 | 4 => {
                for _ in 0..(super::next_perturbation() % 64) {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    }
}

/// Spin-hint preemption point.
pub mod hint {
    /// Forwards to [`crate::thread::yield_now`] so spin loops are also
    /// perturbed.
    pub fn spin_loop() {
        super::thread::yield_now();
    }
}

/// `std::sync` re-exports (NOT loom's instrumented doubles — see the module
/// docs for what that forfeits).
pub mod sync {
    pub use std::sync::atomic;
    pub use std::sync::{Arc, Barrier, Condvar, Mutex, MutexGuard, RwLock};
}

/// `std::cell` stand-ins.
pub mod cell {
    pub use std::cell::{Cell, RefCell, UnsafeCell};
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_and_propagates_state() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        static RUNS: AtomicU64 = AtomicU64::new(0);
        super::model(|| {
            RUNS.fetch_add(1, Ordering::Relaxed);
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = Arc::clone(&flag);
            let t = super::thread::spawn(move || {
                super::thread::yield_now();
                f2.store(1, Ordering::Release);
            });
            t.join().unwrap();
            assert_eq!(flag.load(Ordering::Acquire), 1);
        });
        assert!(RUNS.load(Ordering::Relaxed) >= 2);
    }
}
