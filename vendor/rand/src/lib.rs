//! Offline shim exposing the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng` seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` (integer/float ranges) and `gen_bool`.
//!
//! The generator is SplitMix64 — tiny, fast, and statistically fine for
//! workload generation and benchmarks. It is **not** the same stream as
//! the real `StdRng` (ChaCha12): workloads are reproducible within this
//! repository, not bit-compatible with runs against the real crate. It is
//! also not cryptographically secure, which no caller here needs.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator && denominator > 0,
            "gen_ratio({numerator}, {denominator}) is not a probability"
        );
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of [0, 1]: {p}");
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// 53 random bits mapped to a uniform `f64` in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64 — see the
    /// crate docs for how this differs from the real `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize =
            (0..100).filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000)).count();
        assert!(same < 50, "different seeds produced near-identical streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(5..=5u64);
            assert_eq!(v, 5);
            let v = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&heads), "p=0.25 gave {heads}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn values_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
