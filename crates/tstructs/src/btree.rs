//! A transactional ordered map: a copy-on-write B-tree of versioned boxes.
//!
//! Every tree node lives in its own [`VBox`], so the TM tracks node accesses
//! individually: a point update touches one leaf (plus ancestors only when
//! nodes split or merge), and two transactions conflict exactly when their
//! access paths overlap on a written node. This mirrors the role STAMP's
//! red-black tree plays for the Vacation benchmark, with the ordered range
//! scans the paper's long transactions need ("identify travels within a
//! given price range", §V).
//!
//! Structure invariants (checked by `debug_validate` in tests):
//! * leaves hold sorted `(K, V)` entries; internals hold `seps.len() + 1`
//!   children, where `seps[i]` is the smallest key of subtree `i + 1`;
//! * every non-root node has between `MIN_KEYS` and `MAX_KEYS` entries.

use rtf::{Tx, VBox};
use std::sync::Arc;

const MAX_KEYS: usize = 15;
const MIN_KEYS: usize = 6;

/// Key bound for [`TBTreeMap`].
pub trait TKey: Ord + Clone + Send + Sync + 'static {}
impl<T: Ord + Clone + Send + Sync + 'static> TKey for T {}

/// Value bound for [`TBTreeMap`].
pub trait TVal: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> TVal for T {}

enum BNode<K: TKey, V: TVal> {
    Leaf(Vec<(K, V)>),
    Internal { seps: Vec<K>, children: Vec<VBox<BNode<K, V>>> },
}

impl<K: TKey, V: TVal> Clone for BNode<K, V> {
    fn clone(&self) -> Self {
        match self {
            BNode::Leaf(e) => BNode::Leaf(e.clone()),
            BNode::Internal { seps, children } => {
                BNode::Internal { seps: seps.clone(), children: children.clone() }
            }
        }
    }
}

/// A transactional ordered map.
pub struct TBTreeMap<K: TKey, V: TVal> {
    root: VBox<BNode<K, V>>,
}

impl<K: TKey, V: TVal> Clone for TBTreeMap<K, V> {
    fn clone(&self) -> Self {
        TBTreeMap { root: self.root.clone() }
    }
}

impl<K: TKey, V: TVal> Default for TBTreeMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a recursive insert: did the child split?
enum Ins<K: TKey, V: TVal> {
    Done(Option<V>),
    Split { sep: K, right: VBox<BNode<K, V>>, old: Option<V> },
}

impl<K: TKey, V: TVal> TBTreeMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        TBTreeMap { root: VBox::new(BNode::Leaf(Vec::new())) }
    }

    /// Transactional lookup.
    pub fn get(&self, tx: &mut Tx, key: &K) -> Option<V> {
        let mut node: Arc<BNode<K, V>> = tx.read(&self.root);
        loop {
            match &*node {
                BNode::Leaf(entries) => {
                    return entries
                        .binary_search_by(|(k, _)| k.cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone());
                }
                BNode::Internal { seps, children } => {
                    let idx = seps.partition_point(|s| s <= key);
                    let child = children[idx].clone();
                    node = tx.read(&child);
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, tx: &mut Tx, key: &K) -> bool {
        self.get(tx, key).is_some()
    }

    /// Transactional insert; returns the previous value, if any.
    pub fn insert(&self, tx: &mut Tx, key: K, value: V) -> Option<V> {
        match Self::insert_rec(tx, &self.root, key, value) {
            Ins::Done(old) => old,
            Ins::Split { sep, right, old } => {
                // Root split: move the (already updated) left half into a
                // fresh box and grow the tree by one level in place.
                let left_val = (*tx.read(&self.root)).clone();
                let left = VBox::new(left_val);
                tx.write(
                    &self.root,
                    BNode::Internal { seps: vec![sep], children: vec![left, right] },
                );
                old
            }
        }
    }

    fn insert_rec(tx: &mut Tx, nbox: &VBox<BNode<K, V>>, key: K, value: V) -> Ins<K, V> {
        let node = tx.read(nbox);
        match &*node {
            BNode::Leaf(entries) => {
                let mut entries = entries.clone();
                let old = match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value)),
                    Err(i) => {
                        entries.insert(i, (key, value));
                        None
                    }
                };
                if entries.len() > MAX_KEYS {
                    let right_half = entries.split_off(entries.len() / 2);
                    let sep = right_half[0].0.clone();
                    tx.write(nbox, BNode::Leaf(entries));
                    let right = VBox::new(BNode::Leaf(right_half));
                    Ins::Split { sep, right, old }
                } else {
                    tx.write(nbox, BNode::Leaf(entries));
                    Ins::Done(old)
                }
            }
            BNode::Internal { seps, children } => {
                let idx = seps.partition_point(|s| *s <= key);
                let child = children[idx].clone();
                match Self::insert_rec(tx, &child, key, value) {
                    Ins::Done(old) => Ins::Done(old),
                    Ins::Split { sep, right, old } => {
                        let mut seps = seps.clone();
                        let mut children = children.clone();
                        seps.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if seps.len() > MAX_KEYS {
                            let mid = seps.len() / 2;
                            let sep_up = seps[mid].clone();
                            let right_seps = seps.split_off(mid + 1);
                            seps.pop(); // sep_up moves to the parent
                            let right_children = children.split_off(mid + 1);
                            tx.write(nbox, BNode::Internal { seps, children });
                            let right = VBox::new(BNode::Internal {
                                seps: right_seps,
                                children: right_children,
                            });
                            Ins::Split { sep: sep_up, right, old }
                        } else {
                            tx.write(nbox, BNode::Internal { seps, children });
                            Ins::Done(old)
                        }
                    }
                }
            }
        }
    }

    /// Transactional removal; returns the removed value, if any.
    pub fn remove(&self, tx: &mut Tx, key: &K) -> Option<V> {
        let (removed, _) = Self::remove_rec(tx, &self.root, key);
        // Root shrink: an internal root left with a single child is
        // replaced by that child's content.
        if removed.is_some() {
            let root = tx.read(&self.root);
            if let BNode::Internal { seps, children } = &*root {
                if seps.is_empty() {
                    debug_assert_eq!(children.len(), 1);
                    let only = children[0].clone();
                    let content = (*tx.read(&only)).clone();
                    tx.write(&self.root, content);
                }
            }
        }
        removed
    }

    fn remove_rec(tx: &mut Tx, nbox: &VBox<BNode<K, V>>, key: &K) -> (Option<V>, bool) {
        let node = tx.read(nbox);
        match &*node {
            BNode::Leaf(entries) => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(i) => {
                    let mut entries = entries.clone();
                    let (_, v) = entries.remove(i);
                    let underflow = entries.len() < MIN_KEYS;
                    tx.write(nbox, BNode::Leaf(entries));
                    (Some(v), underflow)
                }
                Err(_) => (None, false),
            },
            BNode::Internal { seps, children } => {
                let idx = seps.partition_point(|s| s <= key);
                let child = children[idx].clone();
                let (removed, underflow) = Self::remove_rec(tx, &child, key);
                if removed.is_none() || !underflow {
                    return (removed, false);
                }
                let mut seps = seps.clone();
                let mut children = children.clone();
                Self::fix_underflow(tx, &mut seps, &mut children, idx);
                let parent_underflow = seps.len() < MIN_KEYS;
                tx.write(nbox, BNode::Internal { seps, children });
                (removed, parent_underflow)
            }
        }
    }

    /// Restores the minimum-occupancy invariant of `children[idx]` by
    /// borrowing from or merging with a sibling.
    fn fix_underflow(
        tx: &mut Tx,
        seps: &mut Vec<K>,
        children: &mut Vec<VBox<BNode<K, V>>>,
        idx: usize,
    ) {
        // Prefer borrowing from the richer adjacent sibling.
        let left_len = if idx > 0 { Self::node_len(tx, &children[idx - 1]) } else { 0 };
        let right_len =
            if idx + 1 < children.len() { Self::node_len(tx, &children[idx + 1]) } else { 0 };

        if left_len > MIN_KEYS && left_len >= right_len {
            Self::borrow_from_left(tx, seps, children, idx);
        } else if right_len > MIN_KEYS {
            Self::borrow_from_right(tx, seps, children, idx);
        } else if idx > 0 {
            Self::merge(tx, seps, children, idx - 1);
        } else {
            Self::merge(tx, seps, children, idx);
        }
    }

    fn node_len(tx: &mut Tx, nbox: &VBox<BNode<K, V>>) -> usize {
        match &*tx.read(nbox) {
            BNode::Leaf(e) => e.len(),
            BNode::Internal { seps, .. } => seps.len(),
        }
    }

    fn borrow_from_left(
        tx: &mut Tx,
        seps: &mut [K],
        children: &mut [VBox<BNode<K, V>>],
        idx: usize,
    ) {
        let left = children[idx - 1].clone();
        let cur = children[idx].clone();
        let mut lnode = (*tx.read(&left)).clone();
        let mut cnode = (*tx.read(&cur)).clone();
        match (&mut lnode, &mut cnode) {
            (BNode::Leaf(le), BNode::Leaf(ce)) => {
                let moved = le.pop().expect("left sibling above minimum");
                seps[idx - 1] = moved.0.clone();
                ce.insert(0, moved);
            }
            (
                BNode::Internal { seps: ls, children: lc },
                BNode::Internal { seps: cs, children: cc },
            ) => {
                // Rotate through the parent separator.
                let moved_child = lc.pop().expect("left sibling above minimum");
                let moved_sep = ls.pop().expect("left sibling above minimum");
                let down = std::mem::replace(&mut seps[idx - 1], moved_sep);
                cs.insert(0, down);
                cc.insert(0, moved_child);
            }
            _ => unreachable!("siblings are at the same height"),
        }
        tx.write(&left, lnode);
        tx.write(&cur, cnode);
    }

    fn borrow_from_right(
        tx: &mut Tx,
        seps: &mut [K],
        children: &mut [VBox<BNode<K, V>>],
        idx: usize,
    ) {
        let cur = children[idx].clone();
        let right = children[idx + 1].clone();
        let mut cnode = (*tx.read(&cur)).clone();
        let mut rnode = (*tx.read(&right)).clone();
        match (&mut cnode, &mut rnode) {
            (BNode::Leaf(ce), BNode::Leaf(re)) => {
                let moved = re.remove(0);
                ce.push(moved);
                seps[idx] = re[0].0.clone();
            }
            (
                BNode::Internal { seps: cs, children: cc },
                BNode::Internal { seps: rs, children: rc },
            ) => {
                let moved_child = rc.remove(0);
                let moved_sep = rs.remove(0);
                let down = std::mem::replace(&mut seps[idx], moved_sep);
                cs.push(down);
                cc.push(moved_child);
            }
            _ => unreachable!("siblings are at the same height"),
        }
        tx.write(&cur, cnode);
        tx.write(&right, rnode);
    }

    /// Merges `children[i + 1]` into `children[i]`.
    fn merge(tx: &mut Tx, seps: &mut Vec<K>, children: &mut Vec<VBox<BNode<K, V>>>, i: usize) {
        let left = children[i].clone();
        let right = children[i + 1].clone();
        let mut lnode = (*tx.read(&left)).clone();
        let rnode = (*tx.read(&right)).clone();
        let sep = seps.remove(i);
        children.remove(i + 1);
        match (&mut lnode, rnode) {
            (BNode::Leaf(le), BNode::Leaf(re)) => {
                le.extend(re);
            }
            (
                BNode::Internal { seps: ls, children: lc },
                BNode::Internal { seps: rs, children: rc },
            ) => {
                ls.push(sep);
                ls.extend(rs);
                lc.extend(rc);
            }
            _ => unreachable!("siblings are at the same height"),
        }
        tx.write(&left, lnode);
    }

    /// Collects all entries with `lo <= key < hi`, in order.
    pub fn range(&self, tx: &mut Tx, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        if lo < hi {
            self.range_into(tx, &self.root.clone(), lo, hi, &mut out);
        }
        out
    }

    fn range_into(
        &self,
        tx: &mut Tx,
        nbox: &VBox<BNode<K, V>>,
        lo: &K,
        hi: &K,
        out: &mut Vec<(K, V)>,
    ) {
        let node = tx.read(nbox);
        match &*node {
            BNode::Leaf(entries) => {
                let start = entries.partition_point(|(k, _)| k < lo);
                for (k, v) in &entries[start..] {
                    if k >= hi {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                }
            }
            BNode::Internal { seps, children } => {
                let first = seps.partition_point(|s| s <= lo);
                let last = seps.partition_point(|s| s < hi);
                for child in &children[first..=last] {
                    let child = child.clone();
                    self.range_into(tx, &child, lo, hi, out);
                }
            }
        }
    }

    /// In-order visit of every entry.
    pub fn for_each(&self, tx: &mut Tx, f: &mut impl FnMut(&K, &V)) {
        Self::for_each_rec(tx, &self.root.clone(), f);
    }

    fn for_each_rec(tx: &mut Tx, nbox: &VBox<BNode<K, V>>, f: &mut impl FnMut(&K, &V)) {
        let node = tx.read(nbox);
        match &*node {
            BNode::Leaf(entries) => {
                for (k, v) in entries {
                    f(k, v);
                }
            }
            BNode::Internal { children, .. } => {
                for child in children.clone() {
                    Self::for_each_rec(tx, &child, f);
                }
            }
        }
    }

    /// Number of entries (full scan).
    pub fn count(&self, tx: &mut Tx) -> usize {
        let mut n = 0;
        self.for_each(tx, &mut |_, _| n += 1);
        n
    }

    /// Checks all structure invariants; returns the entry count.
    /// Test/diagnostic helper (full scan).
    pub fn debug_validate(&self, tx: &mut Tx) -> usize {
        fn walk<K: TKey, V: TVal>(
            tx: &mut Tx,
            nbox: &VBox<BNode<K, V>>,
            lo: Option<&K>,
            hi: Option<&K>,
            is_root: bool,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> usize {
            let node = tx.read(nbox);
            match &*node {
                BNode::Leaf(entries) => {
                    assert!(is_root || entries.len() >= MIN_KEYS, "leaf underflow");
                    assert!(entries.len() <= MAX_KEYS + 1, "leaf overflow");
                    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "unsorted leaf");
                    if let Some(lo) = lo {
                        assert!(entries.iter().all(|(k, _)| k >= lo), "key below bound");
                    }
                    if let Some(hi) = hi {
                        assert!(entries.iter().all(|(k, _)| k < hi), "key above bound");
                    }
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "unbalanced tree"),
                        None => *leaf_depth = Some(depth),
                    }
                    entries.len()
                }
                BNode::Internal { seps, children } => {
                    assert!(is_root || seps.len() >= MIN_KEYS, "internal underflow");
                    assert_eq!(children.len(), seps.len() + 1, "child/sep mismatch");
                    assert!(seps.windows(2).all(|w| w[0] < w[1]), "unsorted seps");
                    let children = children.clone();
                    let seps = seps.clone();
                    let mut total = 0;
                    for (i, child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(&seps[i - 1]) };
                        let chi = if i == seps.len() { hi } else { Some(&seps[i]) };
                        total += walk(tx, child, clo, chi, false, depth + 1, leaf_depth);
                    }
                    total
                }
            }
        }
        let mut leaf_depth = None;
        walk(tx, &self.root.clone(), None, None, true, 0, &mut leaf_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf::Rtf;
    use std::collections::BTreeMap;

    fn tm() -> Rtf {
        Rtf::builder().workers(1).build()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let tm = tm();
        let m: TBTreeMap<u64, String> = TBTreeMap::new();
        tm.atomic(|tx| {
            assert_eq!(m.insert(tx, 5, "five".into()), None);
            assert_eq!(m.insert(tx, 5, "FIVE".into()), Some("five".into()));
            assert_eq!(m.get(tx, &5), Some("FIVE".into()));
            assert_eq!(m.get(tx, &6), None);
            assert_eq!(m.remove(tx, &5), Some("FIVE".into()));
            assert_eq!(m.remove(tx, &5), None);
        });
    }

    #[test]
    fn grows_through_many_splits() {
        let tm = tm();
        let m: TBTreeMap<u64, u64> = TBTreeMap::new();
        tm.atomic(|tx| {
            for i in 0..2000u64 {
                m.insert(tx, i * 7 % 2000, i);
            }
            assert_eq!(m.debug_validate(tx), 2000);
            for i in 0..2000u64 {
                assert!(m.contains_key(tx, &i), "missing {i}");
            }
        });
    }

    #[test]
    fn shrinks_through_merges_and_borrows() {
        let tm = tm();
        let m: TBTreeMap<u64, u64> = TBTreeMap::new();
        tm.atomic(|tx| {
            for i in 0..1000u64 {
                m.insert(tx, i, i);
            }
            // Remove in a mixed pattern to exercise left/right borrows and
            // merges at several depths.
            for i in (0..1000u64).step_by(2) {
                assert_eq!(m.remove(tx, &i), Some(i));
                if i % 64 == 0 {
                    m.debug_validate(tx);
                }
            }
            for i in (1..1000u64).rev().filter(|i| i % 2 == 1) {
                assert_eq!(m.remove(tx, &i), Some(i));
                if i % 63 == 0 {
                    m.debug_validate(tx);
                }
            }
            assert_eq!(m.count(tx), 0);
            m.debug_validate(tx);
        });
    }

    #[test]
    fn range_scan_matches_model() {
        let tm = tm();
        let m: TBTreeMap<u64, u64> = TBTreeMap::new();
        tm.atomic(|tx| {
            let mut model = BTreeMap::new();
            for i in 0..500u64 {
                let k = (i * 37) % 1000;
                m.insert(tx, k, i);
                model.insert(k, i);
            }
            for (lo, hi) in [(0u64, 1000u64), (100, 200), (999, 1000), (500, 500), (0, 1)] {
                let got = m.range(tx, &lo, &hi);
                let want: Vec<(u64, u64)> = model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "range {lo}..{hi}");
            }
        });
    }

    #[test]
    fn for_each_is_in_order() {
        let tm = tm();
        let m: TBTreeMap<i64, ()> = TBTreeMap::new();
        tm.atomic(|tx| {
            for i in [5i64, -3, 99, 0, 42, -77] {
                m.insert(tx, i, ());
            }
            let mut seen = Vec::new();
            m.for_each(tx, &mut |k, _| seen.push(*k));
            assert_eq!(seen, vec![-77, -3, 0, 5, 42, 99]);
        });
    }

    #[test]
    fn concurrent_inserts_disjoint_ranges() {
        let tm = std::sync::Arc::new(Rtf::builder().workers(2).build());
        let m: TBTreeMap<u64, u64> = TBTreeMap::new();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let tm = std::sync::Arc::clone(&tm);
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let k = t * 1000 + i;
                        tm.atomic(|tx| {
                            m.insert(tx, k, k);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        tm.atomic(|tx| {
            assert_eq!(m.debug_validate(tx), 400);
        });
    }

    /// Seeded random operation sequences replayed against
    /// `std::collections::BTreeMap` (64 deterministic cases).
    #[test]
    fn matches_std_btreemap() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0xB7EE_0000 + seed);
            let ops: Vec<(u8, u16, u64)> = (0..rng.gen_range(1..400usize))
                .map(|_| {
                    (rng.gen_range(0u8..3), rng.gen_range(0u16..256), rng.gen_range(0u64..1000))
                })
                .collect();
            let tm = Rtf::builder().workers(0).build();
            let m: TBTreeMap<u16, u64> = TBTreeMap::new();
            // Replay deterministically inside one transaction; the model
            // must match at every step. The model lives inside the closure
            // so the body stays `Fn` (re-executable).
            tm.atomic(|tx| {
                let mut model: BTreeMap<u16, u64> = BTreeMap::new();
                for (op, k, v) in &ops {
                    match op {
                        0 => {
                            let got = m.insert(tx, *k, *v);
                            let want = model.insert(*k, *v);
                            assert_eq!(got, want, "insert diverged (seed {seed})");
                        }
                        1 => {
                            let got = m.remove(tx, k);
                            let want = model.remove(k);
                            assert_eq!(got, want, "remove diverged (seed {seed})");
                        }
                        _ => {
                            let got = m.get(tx, k);
                            let want = model.get(k).copied();
                            assert_eq!(got, want, "get diverged (seed {seed})");
                        }
                    }
                }
                assert_eq!(m.debug_validate(tx), model.len(), "length diverged (seed {seed})");
            });
        }
    }
}
