//! A transactional numeric counter.

use rtf::{Tx, VBox};

/// An `i64` counter in a versioned box with read-modify-write helpers.
///
/// Every update reads and writes the same box, so concurrent updates of one
/// counter conflict by design — use one counter per logical aggregate (the
/// TPC-C districts each carry their own `d_ytd`, for example).
#[derive(Clone)]
pub struct TCounter {
    slot: VBox<i64>,
}

impl TCounter {
    /// Counter starting at `initial`.
    pub fn new(initial: i64) -> Self {
        TCounter { slot: VBox::new(initial) }
    }

    /// Transactional read.
    pub fn get(&self, tx: &mut Tx) -> i64 {
        *tx.read(&self.slot)
    }

    /// Transactional `+= delta`; returns the new value.
    pub fn add(&self, tx: &mut Tx, delta: i64) -> i64 {
        let v = *tx.read(&self.slot) + delta;
        tx.write(&self.slot, v);
        v
    }

    /// Transactional overwrite.
    pub fn set(&self, tx: &mut Tx, value: i64) {
        tx.write(&self.slot, value);
    }

    /// Committed value, outside transactions (reporting).
    pub fn read_committed(&self) -> i64 {
        *self.slot.read_committed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf::Rtf;
    use std::sync::Arc;

    #[test]
    fn add_and_get() {
        let tm = Rtf::builder().workers(1).build();
        let c = TCounter::new(10);
        let out = tm.atomic(|tx| {
            assert_eq!(c.get(tx), 10);
            c.add(tx, 5);
            c.add(tx, -3);
            c.get(tx)
        });
        assert_eq!(out, 12);
        assert_eq!(c.read_committed(), 12);
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let tm = Arc::new(Rtf::builder().workers(2).build());
        let c = TCounter::new(0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tm = Arc::clone(&tm);
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        tm.atomic(|tx| c.add(tx, 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read_committed(), 400);
    }
}
