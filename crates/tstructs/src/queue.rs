//! A transactional FIFO queue.
//!
//! Two boxes — a front stack and a back stack (the classic two-list queue)
//! — so steady-state `push` and `pop` touch *different* boxes: producers
//! and consumers only conflict when the front stack runs empty and a pop
//! must reverse the back stack.

use rtf::{Tx, VBox};

use crate::btree::TVal;

/// A transactional FIFO queue (two-list representation).
pub struct TQueue<T: TVal> {
    front: VBox<Vec<T>>, // popped from the end
    back: VBox<Vec<T>>,  // pushed at the end
}

impl<T: TVal> Clone for TQueue<T> {
    fn clone(&self) -> Self {
        TQueue { front: self.front.clone(), back: self.back.clone() }
    }
}

impl<T: TVal> Default for TQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: TVal> TQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        TQueue { front: VBox::new(Vec::new()), back: VBox::new(Vec::new()) }
    }

    /// Enqueues at the back.
    pub fn push(&self, tx: &mut Tx, value: T) {
        let mut b = (*tx.read(&self.back)).clone();
        b.push(value);
        tx.write(&self.back, b);
    }

    /// Dequeues from the front; `None` when empty.
    pub fn pop(&self, tx: &mut Tx) -> Option<T> {
        let f = tx.read(&self.front);
        if let Some(last) = f.last() {
            let out = last.clone();
            let mut f = (*f).clone();
            f.pop();
            tx.write(&self.front, f);
            return Some(out);
        }
        // Front empty: reverse the back stack into the front.
        let b = tx.read(&self.back);
        if b.is_empty() {
            return None;
        }
        let mut moved: Vec<T> = b.iter().cloned().collect();
        moved.reverse();
        let out = moved.pop().expect("non-empty");
        tx.write(&self.back, Vec::new());
        tx.write(&self.front, moved);
        Some(out)
    }

    /// Next element without removing it.
    pub fn peek(&self, tx: &mut Tx) -> Option<T> {
        let f = tx.read(&self.front);
        if let Some(last) = f.last() {
            return Some(last.clone());
        }
        tx.read(&self.back).first().cloned()
    }

    /// Number of queued elements.
    pub fn len(&self, tx: &mut Tx) -> usize {
        tx.read(&self.front).len() + tx.read(&self.back).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, tx: &mut Tx) -> bool {
        self.len(tx) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf::Rtf;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let tm = Rtf::builder().workers(1).build();
        let q: TQueue<u32> = TQueue::new();
        tm.atomic(|tx| {
            assert!(q.is_empty(tx));
            assert_eq!(q.pop(tx), None);
            for i in 0..10 {
                q.push(tx, i);
            }
            assert_eq!(q.len(tx), 10);
            assert_eq!(q.peek(tx), Some(0));
            for i in 0..10 {
                assert_eq!(q.pop(tx), Some(i));
            }
            assert_eq!(q.pop(tx), None);
        });
    }

    #[test]
    fn interleaved_push_pop_across_transactions() {
        let tm = Rtf::builder().workers(1).build();
        let q: TQueue<u32> = TQueue::new();
        tm.atomic(|tx| {
            q.push(tx, 1);
            q.push(tx, 2);
        });
        assert_eq!(tm.atomic(|tx| q.pop(tx)), Some(1));
        tm.atomic(|tx| q.push(tx, 3));
        assert_eq!(tm.atomic(|tx| q.pop(tx)), Some(2));
        assert_eq!(tm.atomic(|tx| q.pop(tx)), Some(3));
        assert_eq!(tm.atomic(|tx| q.pop(tx)), None);
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let tm = Arc::new(Rtf::builder().workers(2).build());
        let q: TQueue<u64> = TQueue::new();
        let produced = 4 * 50u64;
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let (tm, q) = (Arc::clone(&tm), q.clone());
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        tm.atomic(|tx| q.push(tx, p * 1000 + i));
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Some(v) = tm.atomic(|tx| q.pop(tx)) {
            got.push(v);
        }
        assert_eq!(got.len() as u64, produced);
        // Per-producer FIFO order is preserved.
        for p in 0..4u64 {
            let mine: Vec<u64> = got.iter().copied().filter(|v| v / 1000 == p).collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]), "producer {p} out of order");
        }
    }
}
