//! Transactional data structures over `rtf` versioned boxes.
//!
//! The JTF programming model tracks accesses through `VBox` containers;
//! realistic workloads (the paper evaluates STAMP Vacation and TPC-C) need
//! maps and arrays built from them. This crate provides:
//!
//! * [`TArray`] — a fixed-size array of boxes (the 1M-element array of the
//!   synthetic benchmark, §V);
//! * [`TBTreeMap`] — an ordered map as a copy-on-write B-tree whose nodes
//!   live in individual boxes (the role STAMP's red-black tree plays for
//!   Vacation; supports the price-range scans the paper parallelizes);
//! * [`THashMap`] — an unordered map with per-bucket boxes (TPC-C point
//!   lookups);
//! * [`TCounter`] — a numeric box with read-modify-write helpers;
//! * [`TQueue`] — a FIFO queue (two-list representation: producers and
//!   consumers touch different boxes in steady state);
//! * [`TSet`] — an ordered set over the B-tree.
//!
//! All operations take the transaction handle (`&mut Tx`) and are safe to
//! run inside transactional futures: conflicts are detected and resolved by
//! the TM exactly as for raw box accesses.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod array;
pub mod btree;
pub mod counter;
pub mod hashmap;
pub mod queue;
pub mod set;

pub use array::TArray;
pub use btree::TBTreeMap;
pub use counter::TCounter;
pub use hashmap::THashMap;
pub use queue::TQueue;
pub use set::TSet;
