//! A transactional ordered set (thin wrapper over [`crate::TBTreeMap`]).

use rtf::Tx;

use crate::btree::{TBTreeMap, TKey};

/// A transactional ordered set.
pub struct TSet<K: TKey> {
    map: TBTreeMap<K, ()>,
}

impl<K: TKey> Clone for TSet<K> {
    fn clone(&self) -> Self {
        TSet { map: self.map.clone() }
    }
}

impl<K: TKey> Default for TSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: TKey> TSet<K> {
    /// Empty set.
    pub fn new() -> Self {
        TSet { map: TBTreeMap::new() }
    }

    /// Inserts `key`; returns whether it was newly added.
    pub fn insert(&self, tx: &mut Tx, key: K) -> bool {
        self.map.insert(tx, key, ()).is_none()
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&self, tx: &mut Tx, key: &K) -> bool {
        self.map.remove(tx, key).is_some()
    }

    /// Membership test.
    pub fn contains(&self, tx: &mut Tx, key: &K) -> bool {
        self.map.contains_key(tx, key)
    }

    /// Members in `[lo, hi)`, in order.
    pub fn range(&self, tx: &mut Tx, lo: &K, hi: &K) -> Vec<K> {
        self.map.range(tx, lo, hi).into_iter().map(|(k, ())| k).collect()
    }

    /// Visits every member in order.
    pub fn for_each(&self, tx: &mut Tx, f: &mut impl FnMut(&K)) {
        self.map.for_each(tx, &mut |k, ()| f(k));
    }

    /// Number of members (full scan).
    pub fn count(&self, tx: &mut Tx) -> usize {
        self.map.count(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf::Rtf;

    #[test]
    fn basic_set_ops() {
        let tm = Rtf::builder().workers(1).build();
        let s: TSet<u32> = TSet::new();
        tm.atomic(|tx| {
            assert!(s.insert(tx, 5));
            assert!(!s.insert(tx, 5));
            assert!(s.contains(tx, &5));
            assert!(!s.contains(tx, &6));
            assert!(s.insert(tx, 9));
            assert!(s.insert(tx, 1));
            assert_eq!(s.range(tx, &0, &10), vec![1, 5, 9]);
            assert_eq!(s.count(tx), 3);
            assert!(s.remove(tx, &5));
            assert!(!s.remove(tx, &5));
            let mut seen = Vec::new();
            s.for_each(tx, &mut |k| seen.push(*k));
            assert_eq!(seen, vec![1, 9]);
        });
    }
}
