//! A fixed-size transactional array.

use rtf::{Tx, TxData, VBox};
use std::sync::Arc;

/// A fixed-size array of versioned boxes.
///
/// This is the data structure of the paper's synthetic benchmark (§V): an
/// array of 1M elements accessed at random indices, with each element
/// individually tracked so disjoint accesses never conflict.
pub struct TArray<T: TxData> {
    slots: Arc<[VBox<T>]>,
}

impl<T: TxData> Clone for TArray<T> {
    fn clone(&self) -> Self {
        TArray { slots: Arc::clone(&self.slots) }
    }
}

impl<T: TxData> TArray<T> {
    /// Builds an array of `len` elements, each initialized by `init(i)`.
    pub fn new(len: usize, mut init: impl FnMut(usize) -> T) -> Self {
        let slots: Vec<VBox<T>> = (0..len).map(|i| VBox::new(init(i))).collect();
        TArray { slots: slots.into() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Transactional read of element `i`.
    pub fn get(&self, tx: &mut Tx, i: usize) -> Arc<T> {
        tx.read(&self.slots[i])
    }

    /// Transactional write of element `i`.
    pub fn set(&self, tx: &mut Tx, i: usize, value: T) {
        tx.write(&self.slots[i], value);
    }

    /// Direct access to the underlying box (advanced uses: sharing an
    /// element with another structure, non-transactional post-run reads).
    pub fn slot(&self, i: usize) -> &VBox<T> {
        &self.slots[i]
    }
}

impl<T: TxData + Clone> TArray<T> {
    /// Transactional read returning an owned value.
    pub fn get_owned(&self, tx: &mut Tx, i: usize) -> T {
        (*self.get(tx, i)).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf::Rtf;

    #[test]
    fn init_and_rw() {
        let tm = Rtf::builder().workers(1).build();
        let a: TArray<u64> = TArray::new(100, |i| i as u64);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        let v = tm.atomic(|tx| {
            let before = *a.get(tx, 7);
            a.set(tx, 7, 70);
            (before, a.get_owned(tx, 7))
        });
        assert_eq!(v, (7, 70));
        assert_eq!(*a.slot(7).read_committed(), 70);
    }

    #[test]
    fn disjoint_futures_do_not_conflict() {
        let tm = Rtf::builder().workers(2).build();
        let a: TArray<u64> = TArray::new(64, |_| 0);
        tm.atomic(|tx| {
            let futs: Vec<_> = (0..4)
                .map(|chunk| {
                    let a = a.clone();
                    tx.submit(move |tx| {
                        for i in (chunk * 16)..((chunk + 1) * 16) {
                            a.set(tx, i, i as u64 + 1);
                        }
                        0u8
                    })
                })
                .collect();
            for f in &futs {
                let _ = tx.eval(f);
            }
        });
        let s = tm.stats();
        assert_eq!(s.sub_validation_aborts, 0, "disjoint writes must not abort: {s:?}");
        for i in 0..64 {
            assert_eq!(*a.slot(i).read_committed(), i as u64 + 1);
        }
    }
}
