//! A transactional unordered map with per-bucket boxes.
//!
//! A fixed array of buckets, each bucket a box holding a small sorted
//! vector. Point operations touch exactly one bucket, so transactions
//! conflict only on hash collisions — the cheap point-lookup structure the
//! TPC-C tables use for customer/stock access paths.

use rtf::{Tx, VBox};
use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::sync::Arc;

use rtf_txbase::fxmap::FxHasher;

use crate::btree::{TKey, TVal};

/// Key bound: hashing on top of the B-tree key bounds.
pub trait HKey: TKey + Hash {}
impl<T: TKey + Hash> HKey for T {}

/// One bucket: a small vector of entries in a box.
type Bucket<K, V> = VBox<Vec<(K, V)>>;

/// A transactional hash map with a fixed bucket count.
pub struct THashMap<K: HKey, V: TVal> {
    buckets: Arc<[Bucket<K, V>]>,
    hasher: BuildHasherDefault<FxHasher>,
}

impl<K: HKey, V: TVal> Clone for THashMap<K, V> {
    fn clone(&self) -> Self {
        THashMap { buckets: Arc::clone(&self.buckets), hasher: Default::default() }
    }
}

impl<K: HKey, V: TVal> THashMap<K, V> {
    /// Map with `buckets` buckets (rounded up to a power of two). Size the
    /// bucket count near the expected population: the map does not resize
    /// (resizing would touch every bucket and serialize all writers).
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(8);
        let slots: Vec<Bucket<K, V>> = (0..n).map(|_| VBox::new(Vec::new())).collect();
        THashMap { buckets: slots.into(), hasher: Default::default() }
    }

    fn bucket(&self, key: &K) -> &Bucket<K, V> {
        let h = self.hasher.hash_one(key) as usize;
        &self.buckets[h & (self.buckets.len() - 1)]
    }

    /// Transactional lookup.
    pub fn get(&self, tx: &mut Tx, key: &K) -> Option<V> {
        let b = tx.read(self.bucket(key));
        b.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, tx: &mut Tx, key: &K) -> bool {
        self.get(tx, key).is_some()
    }

    /// Transactional insert; returns the previous value, if any.
    pub fn insert(&self, tx: &mut Tx, key: K, value: V) -> Option<V> {
        let bbox = self.bucket(&key).clone();
        let mut b = (*tx.read(&bbox)).clone();
        let old = match b.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                b.push((key, value));
                None
            }
        };
        tx.write(&bbox, b);
        old
    }

    /// Transactional removal; returns the removed value, if any.
    pub fn remove(&self, tx: &mut Tx, key: &K) -> Option<V> {
        let bbox = self.bucket(key).clone();
        let b = tx.read(&bbox);
        let pos = b.iter().position(|(k, _)| k == key)?;
        let mut b = (*b).clone();
        let (_, v) = b.swap_remove(pos);
        tx.write(&bbox, b);
        Some(v)
    }

    /// Applies `f` to the value under `key`, writing back the result.
    /// Returns whether the key was present.
    pub fn update(&self, tx: &mut Tx, key: &K, f: impl FnOnce(&mut V)) -> bool {
        let bbox = self.bucket(key).clone();
        let b = tx.read(&bbox);
        let Some(pos) = b.iter().position(|(k, _)| k == key) else { return false };
        let mut b = (*b).clone();
        f(&mut b[pos].1);
        tx.write(&bbox, b);
        true
    }

    /// Visits every entry (bucket order, unspecified within/across buckets).
    pub fn for_each(&self, tx: &mut Tx, f: &mut impl FnMut(&K, &V)) {
        for bucket in self.buckets.iter() {
            let b = tx.read(bucket);
            for (k, v) in b.iter() {
                f(k, v);
            }
        }
    }

    /// Entry count (full scan).
    pub fn count(&self, tx: &mut Tx) -> usize {
        let mut n = 0;
        self.for_each(tx, &mut |_, _| n += 1);
        n
    }

    /// Number of buckets (for sizing diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf::Rtf;
    use std::collections::HashMap;

    #[test]
    fn basic_ops() {
        let tm = Rtf::builder().workers(1).build();
        let m: THashMap<u64, String> = THashMap::with_buckets(16);
        tm.atomic(|tx| {
            assert_eq!(m.insert(tx, 1, "a".into()), None);
            assert_eq!(m.insert(tx, 1, "b".into()), Some("a".into()));
            assert_eq!(m.get(tx, &1), Some("b".into()));
            assert!(m.contains_key(tx, &1));
            assert!(!m.contains_key(tx, &2));
            assert!(m.update(tx, &1, |v| v.push('!')));
            assert_eq!(m.get(tx, &1), Some("b!".into()));
            assert!(!m.update(tx, &2, |_| ()));
            assert_eq!(m.remove(tx, &1), Some("b!".into()));
            assert_eq!(m.remove(tx, &1), None);
            assert_eq!(m.count(tx), 0);
        });
    }

    #[test]
    fn bucket_count_rounds_up() {
        let m: THashMap<u64, u64> = THashMap::with_buckets(100);
        assert_eq!(m.bucket_count(), 128);
        let m: THashMap<u64, u64> = THashMap::with_buckets(0);
        assert_eq!(m.bucket_count(), 8);
    }

    #[test]
    fn collisions_within_buckets_are_handled() {
        let tm = Rtf::builder().workers(1).build();
        // 8 buckets, 200 keys: plenty of collisions.
        let m: THashMap<u64, u64> = THashMap::with_buckets(8);
        tm.atomic(|tx| {
            for i in 0..200u64 {
                m.insert(tx, i, i * 2);
            }
            assert_eq!(m.count(tx), 200);
            for i in 0..200u64 {
                assert_eq!(m.get(tx, &i), Some(i * 2));
            }
            for i in (0..200u64).step_by(3) {
                assert_eq!(m.remove(tx, &i), Some(i * 2));
            }
            assert_eq!(m.count(tx), 200 - 67);
        });
    }

    /// Seeded random operation sequences replayed against
    /// `std::collections::HashMap` (48 deterministic cases).
    #[test]
    fn matches_std_hashmap() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..48u64 {
            let mut rng = StdRng::seed_from_u64(0x4A5D_0000 + seed);
            let ops: Vec<(u8, u16, u64)> = (0..rng.gen_range(1..200usize))
                .map(|_| {
                    (rng.gen_range(0u8..3), rng.gen_range(0u16..128), rng.gen_range(0u64..100))
                })
                .collect();
            let tm = Rtf::builder().workers(0).build();
            let m: THashMap<u16, u64> = THashMap::with_buckets(16);
            tm.atomic(|tx| {
                let mut model: HashMap<u16, u64> = HashMap::new();
                for (op, k, v) in &ops {
                    match op {
                        0 => assert_eq!(m.insert(tx, *k, *v), model.insert(*k, *v)),
                        1 => assert_eq!(m.remove(tx, k), model.remove(k)),
                        _ => assert_eq!(m.get(tx, k), model.get(k).copied()),
                    }
                }
                assert_eq!(m.count(tx), model.len(), "count diverged (seed {seed})");
            });
        }
    }
}
