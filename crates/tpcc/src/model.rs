//! TPC-C row types and composite-key packing.
//!
//! Money is `i64` cents; taxes and discounts are basis points (`1/10000`)
//! so all arithmetic stays exact.

/// Districts per warehouse (fixed by the TPC-C specification).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;

/// A warehouse row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warehouse {
    /// Display name.
    pub name: String,
    /// Sales tax in basis points.
    pub tax_bp: i64,
    /// Year-to-date payments, cents.
    pub ytd: i64,
}

/// A district row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct District {
    /// Sales tax in basis points.
    pub tax_bp: i64,
    /// Year-to-date payments, cents.
    pub ytd: i64,
    /// Next order number to assign.
    pub next_o_id: u32,
}

/// A customer row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Customer {
    /// Last name (generated per the TPC-C syllable table).
    pub last_name: String,
    /// Discount in basis points.
    pub discount_bp: i64,
    /// Balance, cents (starts at -1000 per spec).
    pub balance: i64,
    /// Year-to-date payment total, cents.
    pub ytd_payment: i64,
    /// Number of payments.
    pub payment_cnt: u32,
    /// Number of deliveries.
    pub delivery_cnt: u32,
}

/// A catalog item (immutable after load).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Item {
    /// Unit price, cents.
    pub price: i64,
    /// Display name.
    pub name: String,
}

/// A stock row (one per warehouse × item).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stock {
    /// Units on hand.
    pub quantity: i32,
    /// Units sold year-to-date.
    pub ytd: i64,
    /// Orders that touched this stock.
    pub order_cnt: u32,
    /// Orders supplied to other warehouses.
    pub remote_cnt: u32,
}

/// An order header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Order {
    /// Ordering customer.
    pub c_id: u64,
    /// Entry timestamp (logical).
    pub entry_d: u64,
    /// Carrier, set at delivery.
    pub carrier_id: Option<u8>,
    /// Number of lines.
    pub ol_cnt: u8,
}

/// One order line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderLine {
    /// Ordered item.
    pub i_id: u64,
    /// Supplying warehouse.
    pub supply_w: u64,
    /// Quantity.
    pub quantity: u32,
    /// Line amount, cents.
    pub amount: i64,
    /// Delivery timestamp, set by the Delivery transaction.
    pub delivery_d: Option<u64>,
}

// ---- composite-key packing -------------------------------------------

/// Key of a district: `(w, d)`.
#[inline]
pub fn district_key(w: u64, d: u64) -> u64 {
    w * DISTRICTS_PER_WAREHOUSE + d
}

/// Key of a customer: `(w, d, c)`.
#[inline]
pub fn customer_key(w: u64, d: u64, c: u64) -> u64 {
    (district_key(w, d) << 24) | c
}

/// Key of a stock row: `(w, i)`.
#[inline]
pub fn stock_key(w: u64, i: u64) -> u64 {
    (w << 24) | i
}

/// Key of an order: `(w, d, o)`; ordered scans per district work because
/// the district occupies the high bits.
#[inline]
pub fn order_key(w: u64, d: u64, o: u64) -> u64 {
    (district_key(w, d) << 32) | o
}

/// Key of an order line: `(w, d, o, ol)`.
#[inline]
pub fn order_line_key(w: u64, d: u64, o: u64, ol: u64) -> u64 {
    (district_key(w, d) << 40) | (o << 8) | ol
}

/// The TPC-C last-name syllables (spec clause 4.3.2.3).
pub fn last_name(num: u64) -> String {
    const SYL: [&str; 10] =
        ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];
    let n = num % 1000;
    format!(
        "{}{}{}",
        SYL[(n / 100) as usize],
        SYL[((n / 10) % 10) as usize],
        SYL[(n % 10) as usize]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_injective_within_bounds() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for w in 0..3 {
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                assert!(seen.insert(district_key(w, d)));
            }
        }
        let mut seen = HashSet::new();
        for w in 0..2 {
            for d in 0..10 {
                for c in 0..100 {
                    assert!(seen.insert(customer_key(w, d, c)));
                }
            }
        }
        let mut seen = HashSet::new();
        for o in 0..100 {
            for ol in 0..15 {
                assert!(seen.insert(order_line_key(1, 3, o, ol)));
            }
        }
    }

    #[test]
    fn order_keys_sort_by_district_then_order() {
        assert!(order_key(0, 1, 5) < order_key(0, 1, 6));
        assert!(order_key(0, 1, u32::MAX as u64) < order_key(0, 2, 0));
        assert!(order_key(0, 9, 100) < order_key(1, 0, 0));
    }

    #[test]
    fn last_names_follow_syllable_table() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
        assert_eq!(last_name(1999), "EINGEINGEING");
    }
}
