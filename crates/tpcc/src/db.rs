//! TPC-C tables and the scale-factor loader.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtf::{Rtf, Tx};
use rtf_tstructs::{TBTreeMap, THashMap};
use std::sync::Arc;

use crate::model::*;

/// Key of the by-last-name index: `(w, d, name number)`.
#[inline]
pub fn name_key(w: u64, d: u64, name_num: u64) -> u64 {
    (district_key(w, d) << 16) | (name_num % 1000)
}

/// Scale factors (shrunk defaults so laptop-scale runs finish; ratios
/// follow the spec: 10 districts/warehouse, customers per district, stock
/// row per warehouse × item).
#[derive(Clone, Copy, Debug)]
pub struct TpccScale {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u64,
    /// Catalog size (spec: 100_000).
    pub items: u64,
    /// RNG seed for initial data.
    pub seed: u64,
}

impl Default for TpccScale {
    fn default() -> Self {
        TpccScale { warehouses: 2, customers_per_district: 120, items: 1024, seed: 0x79cc }
    }
}

/// The TPC-C database over transactional structures.
pub struct TpccDb {
    /// Scale it was loaded at.
    pub scale: TpccScale,
    /// Warehouse table.
    pub warehouses: THashMap<u64, Warehouse>,
    /// District table.
    pub districts: THashMap<u64, District>,
    /// Customer table.
    pub customers: THashMap<u64, Customer>,
    /// Stock table.
    pub stock: THashMap<u64, Stock>,
    /// Immutable item catalog (read-only data needs no boxes).
    pub items: Arc<[Item]>,
    /// Order headers, ordered by `(w, d, o)`.
    pub orders: TBTreeMap<u64, Order>,
    /// Order lines, ordered by `(w, d, o, ol)`.
    pub order_lines: TBTreeMap<u64, OrderLine>,
    /// New-order queue (pending deliveries), ordered by `(w, d, o)`.
    pub new_orders: TBTreeMap<u64, ()>,
    /// Per-customer most recent order id (OrderStatus access path).
    pub last_order_of: THashMap<u64, u64>,
    /// Secondary index: `(w, d, last-name number)` → customer ids with that
    /// last name, sorted (spec 2.5.2.2: by-name selection picks the middle
    /// customer). Populated at load; customer names never change.
    pub customers_by_name: THashMap<u64, Vec<u64>>,
}

impl Clone for TpccDb {
    fn clone(&self) -> Self {
        TpccDb {
            scale: self.scale,
            warehouses: self.warehouses.clone(),
            districts: self.districts.clone(),
            customers: self.customers.clone(),
            stock: self.stock.clone(),
            items: Arc::clone(&self.items),
            orders: self.orders.clone(),
            order_lines: self.order_lines.clone(),
            new_orders: self.new_orders.clone(),
            last_order_of: self.last_order_of.clone(),
            customers_by_name: self.customers_by_name.clone(),
        }
    }
}

impl TpccDb {
    /// Loads initial data per the spec's population rules (scaled).
    pub fn load(tm: &Rtf, scale: TpccScale) -> TpccDb {
        let mut rng = StdRng::seed_from_u64(scale.seed);
        let n_cust = scale.warehouses * DISTRICTS_PER_WAREHOUSE * scale.customers_per_district;
        let db = TpccDb {
            scale,
            warehouses: THashMap::with_buckets(scale.warehouses as usize * 2),
            districts: THashMap::with_buckets(
                (scale.warehouses * DISTRICTS_PER_WAREHOUSE) as usize * 2,
            ),
            customers: THashMap::with_buckets(n_cust as usize),
            stock: THashMap::with_buckets((scale.warehouses * scale.items) as usize),
            items: (0..scale.items)
                .map(|i| Item { price: rng.gen_range(100..10000), name: format!("item-{i}") })
                .collect::<Vec<_>>()
                .into(),
            orders: TBTreeMap::new(),
            order_lines: TBTreeMap::new(),
            new_orders: TBTreeMap::new(),
            last_order_of: THashMap::with_buckets(n_cust as usize),
            customers_by_name: THashMap::with_buckets(n_cust as usize),
        };

        for w in 0..scale.warehouses {
            let w_tax = rng.gen_range(0..=2000);
            let db2 = db.clone();
            tm.atomic(move |tx| {
                db2.warehouses.insert(
                    tx,
                    w,
                    Warehouse { name: format!("warehouse-{w}"), tax_bp: w_tax, ytd: 30_000_000 },
                );
            });
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                let d_tax = rng.gen_range(0..=2000);
                let db2 = db.clone();
                tm.atomic(move |tx| {
                    db2.districts.insert(
                        tx,
                        district_key(w, d),
                        District { tax_bp: d_tax, ytd: 3_000_000, next_o_id: 1 },
                    );
                });
                // Customers in batches.
                let discounts: Vec<i64> =
                    (0..scale.customers_per_district).map(|_| rng.gen_range(0..=5000)).collect();
                let db2 = db.clone();
                tm.atomic(move |tx| {
                    for (c, disc) in discounts.iter().enumerate() {
                        let c = c as u64;
                        db2.customers.insert(
                            tx,
                            customer_key(w, d, c),
                            Customer {
                                last_name: last_name(c),
                                discount_bp: *disc,
                                balance: -1000,
                                ytd_payment: 1000,
                                payment_cnt: 1,
                                delivery_cnt: 0,
                            },
                        );
                        let nk = name_key(w, d, c % 1000);
                        let mut ids = db2.customers_by_name.get(tx, &nk).unwrap_or_default();
                        ids.push(c);
                        db2.customers_by_name.insert(tx, nk, ids);
                    }
                });
            }
            // Stock rows in batches.
            for chunk_start in (0..scale.items).step_by(512) {
                let hi = (chunk_start + 512).min(scale.items);
                let quantities: Vec<i32> =
                    (chunk_start..hi).map(|_| rng.gen_range(10..=100)).collect();
                let db2 = db.clone();
                tm.atomic(move |tx| {
                    for (off, q) in quantities.iter().enumerate() {
                        db2.stock.insert(
                            tx,
                            stock_key(w, chunk_start + off as u64),
                            Stock { quantity: *q, ytd: 0, order_cnt: 0, remote_cnt: 0 },
                        );
                    }
                });
            }
        }
        db
    }

    /// Resolves a by-last-name selection to a customer id: the middle
    /// customer (index `ceil(n/2) - 1 == n/2` for the spec's 1-based
    /// `ceil(n/2)`) among same-named customers of the district
    /// (spec 2.5.2.2). `None` when no customer carries the name.
    pub fn customer_by_name(&self, tx: &mut rtf::Tx, w: u64, d: u64, name_num: u64) -> Option<u64> {
        let ids = self.customers_by_name.get(tx, &name_key(w, d, name_num % 1000))?;
        if ids.is_empty() {
            return None;
        }
        Some(ids[ids.len() / 2])
    }

    /// TPC-C consistency condition 2: for every warehouse,
    /// `W_YTD == sum(D_YTD)` — payments update both.
    pub fn check_ytd_consistency(&self, tx: &mut Tx) -> bool {
        for w in 0..self.scale.warehouses {
            let w_ytd = self.warehouses.get(tx, &w).expect("warehouse exists").ytd;
            let mut d_sum = 0i64;
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                d_sum += self.districts.get(tx, &district_key(w, d)).expect("district").ytd;
            }
            // Initial load: W_YTD = 30_000_000, sum(D_YTD) = 10 × 3_000_000.
            if w_ytd != d_sum {
                return false;
            }
        }
        true
    }

    /// TPC-C consistency condition 1 (adapted): for every district,
    /// `D_NEXT_O_ID - 1` equals the highest order id present.
    pub fn check_order_id_consistency(&self, tx: &mut Tx) -> bool {
        for w in 0..self.scale.warehouses {
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                let next =
                    self.districts.get(tx, &district_key(w, d)).expect("district").next_o_id as u64;
                let max_order = self
                    .orders
                    .range(tx, &order_key(w, d, 0), &order_key(w, d, u32::MAX as u64))
                    .last()
                    .map(|(k, _)| k & 0xffff_ffff)
                    .unwrap_or(0);
                if next != max_order + 1 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_populates_all_tables() {
        let tm = Rtf::builder().workers(1).build();
        let scale = TpccScale { warehouses: 1, customers_per_district: 10, items: 64, seed: 1 };
        let db = TpccDb::load(&tm, scale);
        tm.atomic(|tx| {
            assert_eq!(db.warehouses.count(tx), 1);
            assert_eq!(db.districts.count(tx), 10);
            assert_eq!(db.customers.count(tx), 100);
            assert_eq!(db.stock.count(tx), 64);
            assert!(db.check_ytd_consistency(tx));
            assert!(db.check_order_id_consistency(tx));
        });
        assert_eq!(db.items.len(), 64);
    }
}
