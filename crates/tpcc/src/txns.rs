//! The TPC-C transactions, with sequential and future-parallel variants.
//!
//! The parallel variants follow the paper's adaptation pattern (§V):
//! a long loop that "reads a number of domain objects and computes various
//! functions" is split across transactional futures, while the
//! serialization-order-sensitive writes stay in the continuation. Strong
//! ordering guarantees the parallel variants produce exactly the sequential
//! results (asserted by tests).

use rtf::{Rtf, Tx, TxFuture};

use crate::db::TpccDb;
use crate::model::*;

/// Executes TPC-C transactions against a database.
pub struct TpccExecutor {
    tm: Rtf,
    db: TpccDb,
    /// Futures per long transaction (0 = fully sequential).
    pub futures: usize,
}

/// Result of pricing one order line: `(item, amount, quantity, supply_w)`.
type PricedLine = (u64, i64, u32, u64);

/// Input of one NewOrder line.
#[derive(Clone, Copy, Debug)]
pub struct OrderLineInput {
    /// Item ordered.
    pub i_id: u64,
    /// Supplying warehouse.
    pub supply_w: u64,
    /// Quantity (1..=10).
    pub quantity: u32,
}

impl TpccExecutor {
    /// New executor; `futures` transactional futures parallelize each long
    /// transaction (plus the continuation doing its share).
    pub fn new(tm: Rtf, db: TpccDb, futures: usize) -> Self {
        TpccExecutor { tm, db, futures }
    }

    /// The database.
    pub fn db(&self) -> &TpccDb {
        &self.db
    }

    /// **NewOrder** (spec 2.4): allocate the order id, price every line,
    /// update stock, insert order + lines + new-order queue entry. Returns
    /// the order total in cents, or `-1` when the order rolled back because
    /// a line names an unused (invalid) item — the spec's deliberate 1%
    /// rollback (clause 2.4.1.5), implemented with [`rtf::Tx::cancel`]:
    /// every buffered effect, including the district's order-id bump, is
    /// discarded atomically.
    ///
    /// The per-line item/stock work is the long cycle: with `futures > 0`
    /// the lines are processed by transactional futures (stock rows are
    /// disjoint per line, so the futures never conflict with one another),
    /// and the continuation inserts the order structures.
    pub fn new_order(&self, w: u64, d: u64, c: u64, lines: &[OrderLineInput]) -> i64 {
        let db = self.db.clone();
        let futures = self.futures;
        let lines = lines.to_vec();
        self.tm
            .try_atomic(move |tx| {
                let warehouse = db.warehouses.get(tx, &w).expect("warehouse exists");
                let dk = district_key(w, d);
                let mut district = db.districts.get(tx, &dk).expect("district exists");
                let o_id = district.next_o_id as u64;
                district.next_o_id += 1;
                db.districts.insert(tx, dk, district.clone());
                let customer = db.customers.get(tx, &customer_key(w, d, c)).expect("customer");

                // ---- the long per-line cycle --------------------------------
                let line_results: Vec<PricedLine> = if futures == 0 || lines.len() < futures + 1 {
                    lines.iter().map(|l| process_line(tx, &db, w, l)).collect()
                } else {
                    let chunk = lines.len().div_ceil(futures + 1);
                    let mut handles: Vec<TxFuture<Vec<PricedLine>>> = Vec::new();
                    for part in lines[chunk..].chunks(chunk) {
                        let db = db.clone();
                        let part = part.to_vec();
                        handles.push(tx.submit(move |tx| {
                            part.iter().map(|l| process_line(tx, &db, w, l)).collect()
                        }));
                    }
                    let mut all: Vec<PricedLine> =
                        lines[..chunk].iter().map(|l| process_line(tx, &db, w, l)).collect();
                    for h in &handles {
                        all.extend(tx.eval(h).iter().cloned());
                    }
                    all
                };

                // ---- order construction (continuation) ---------------------
                let mut total = 0i64;
                for (ol, (i_id, amount, quantity, supply_w)) in line_results.iter().enumerate() {
                    total += amount;
                    db.order_lines.insert(
                        tx,
                        order_line_key(w, d, o_id, ol as u64),
                        OrderLine {
                            i_id: *i_id,
                            supply_w: *supply_w,
                            quantity: *quantity,
                            amount: *amount,
                            delivery_d: None,
                        },
                    );
                }
                let ok = order_key(w, d, o_id);
                db.orders.insert(
                    tx,
                    ok,
                    Order {
                        c_id: c,
                        entry_d: o_id, // logical timestamp
                        carrier_id: None,
                        ol_cnt: line_results.len() as u8,
                    },
                );
                db.new_orders.insert(tx, ok, ());
                db.last_order_of.insert(tx, customer_key(w, d, c), o_id);

                // total * (1 - c_discount) * (1 + w_tax + d_tax), basis points.
                total * (10_000 - customer.discount_bp) / 10_000
                    * (10_000 + warehouse.tax_bp + district.tax_bp)
                    / 10_000
            })
            .unwrap_or(-1)
    }

    /// **Payment** (spec 2.5): add `amount` to warehouse and district YTD,
    /// debit the customer. Returns the customer's new balance.
    pub fn payment(&self, w: u64, d: u64, c: u64, amount: i64) -> i64 {
        let db = self.db.clone();
        self.tm.atomic(move |tx| {
            db.warehouses.update(tx, &w, |wh| wh.ytd += amount);
            db.districts.update(tx, &district_key(w, d), |dist| dist.ytd += amount);
            let ck = customer_key(w, d, c);
            let mut balance = 0;
            db.customers.update(tx, &ck, |cust| {
                cust.balance -= amount;
                cust.ytd_payment += amount;
                cust.payment_cnt += 1;
                balance = cust.balance;
            });
            balance
        })
    }

    /// **Payment** selecting the customer by last name (spec 2.5.2.2:
    /// 60% of payments). Resolves the middle same-named customer, then
    /// proceeds as [`TpccExecutor::payment`]. Returns the new balance, or 0
    /// when no customer carries the name.
    pub fn payment_by_name(&self, w: u64, d: u64, name_num: u64, amount: i64) -> i64 {
        let db = self.db.clone();
        self.tm.atomic(move |tx| {
            let Some(c) = db.customer_by_name(tx, w, d, name_num) else { return 0 };
            db.warehouses.update(tx, &w, |wh| wh.ytd += amount);
            db.districts.update(tx, &district_key(w, d), |dist| dist.ytd += amount);
            let mut balance = 0;
            db.customers.update(tx, &customer_key(w, d, c), |cust| {
                cust.balance -= amount;
                cust.ytd_payment += amount;
                cust.payment_cnt += 1;
                balance = cust.balance;
            });
            balance
        })
    }

    /// **OrderStatus** selecting the customer by last name (spec 2.6.1.2).
    pub fn order_status_by_name(&self, w: u64, d: u64, name_num: u64) -> (i64, usize) {
        let db = self.db.clone();
        self.tm.atomic_ro(move |tx| {
            let Some(c) = db.customer_by_name(tx, w, d, name_num) else { return (0, 0) };
            let ck = customer_key(w, d, c);
            let balance = db.customers.get(tx, &ck).map(|cu| cu.balance).unwrap_or(0);
            let Some(o_id) = db.last_order_of.get(tx, &ck) else { return (balance, 0) };
            let lines = db.order_lines.range(
                tx,
                &order_line_key(w, d, o_id, 0),
                &order_line_key(w, d, o_id + 1, 0),
            );
            (balance, lines.len())
        })
    }

    /// **OrderStatus** (spec 2.6): the customer's balance plus their most
    /// recent order's lines. Read-only.
    pub fn order_status(&self, w: u64, d: u64, c: u64) -> (i64, usize) {
        let db = self.db.clone();
        self.tm.atomic_ro(move |tx| {
            let ck = customer_key(w, d, c);
            let balance = db.customers.get(tx, &ck).map(|cu| cu.balance).unwrap_or(0);
            let Some(o_id) = db.last_order_of.get(tx, &ck) else { return (balance, 0) };
            let lines = db.order_lines.range(
                tx,
                &order_line_key(w, d, o_id, 0),
                &order_line_key(w, d, o_id + 1, 0),
            );
            (balance, lines.len())
        })
    }

    /// **Delivery** (spec 2.7): for every district of warehouse `w`,
    /// deliver the oldest undelivered order: pop it from the new-order
    /// queue, stamp the carrier, stamp each line, and credit the customer.
    /// Returns the number of orders delivered.
    ///
    /// The per-district work is disjoint, so with `futures > 0` districts
    /// are processed by transactional futures.
    pub fn delivery(&self, w: u64, carrier: u8) -> u64 {
        let db = self.db.clone();
        let futures = self.futures;
        self.tm.atomic(move |tx| {
            if futures == 0 {
                (0..DISTRICTS_PER_WAREHOUSE)
                    .map(|d| deliver_district(tx, &db, w, d, carrier) as u64)
                    .sum()
            } else {
                let per = DISTRICTS_PER_WAREHOUSE.div_ceil(futures as u64 + 1);
                let mut handles = Vec::new();
                for start in (per..DISTRICTS_PER_WAREHOUSE).step_by(per as usize) {
                    let db = db.clone();
                    let hi = (start + per).min(DISTRICTS_PER_WAREHOUSE);
                    handles.push(tx.submit(move |tx| {
                        (start..hi)
                            .map(|d| deliver_district(tx, &db, w, d, carrier) as u64)
                            .sum::<u64>()
                    }));
                }
                let mut total: u64 = (0..per.min(DISTRICTS_PER_WAREHOUSE))
                    .map(|d| deliver_district(tx, &db, w, d, carrier) as u64)
                    .sum();
                for h in &handles {
                    total += *tx.eval(h);
                }
                total
            }
        })
    }

    /// **StockLevel** (spec 2.8): count items in the district's last 20
    /// orders whose stock is below `threshold`. Read-only; the order-line
    /// scan is the long cycle and is split across futures.
    pub fn stock_level(&self, w: u64, d: u64, threshold: i32) -> u64 {
        let db = self.db.clone();
        let futures = self.futures;
        self.tm.atomic_ro(move |tx| {
            let district = db.districts.get(tx, &district_key(w, d)).expect("district");
            let next = district.next_o_id as u64;
            let lo_order = next.saturating_sub(20).max(1);
            if futures == 0 || next <= lo_order {
                low_stock_items(tx, &db, w, d, lo_order, next, threshold).len() as u64
            } else {
                // Distinctness is global across the scanned orders: futures
                // return their low-stock item ids and the continuation
                // merges + dedupes.
                let span = next - lo_order;
                let per = span.div_ceil(futures as u64 + 1);
                let mut handles = Vec::new();
                for start in ((lo_order + per)..next).step_by(per as usize) {
                    let db = db.clone();
                    let hi = (start + per).min(next);
                    handles.push(
                        tx.submit(move |tx| low_stock_items(tx, &db, w, d, start, hi, threshold)),
                    );
                }
                let mut all =
                    low_stock_items(tx, &db, w, d, lo_order, (lo_order + per).min(next), threshold);
                for h in &handles {
                    all.extend(tx.eval(h).iter().copied());
                }
                all.sort_unstable();
                all.dedup();
                all.len() as u64
            }
        })
    }

    /// **WarehouseAudit** — the paper's long analytics transaction:
    /// "compute the total amount of money raised by the warehouse".
    /// Sums district YTDs and every customer's `ytd_payment`, scanning
    /// districts in parallel across futures. Read-only.
    pub fn warehouse_audit(&self, w: u64) -> i64 {
        let db = self.db.clone();
        let futures = self.futures;
        self.tm.atomic_ro(move |tx| {
            if futures == 0 {
                (0..DISTRICTS_PER_WAREHOUSE).map(|d| audit_district(tx, &db, w, d)).sum()
            } else {
                let per = DISTRICTS_PER_WAREHOUSE.div_ceil(futures as u64 + 1);
                let mut handles = Vec::new();
                for start in (per..DISTRICTS_PER_WAREHOUSE).step_by(per as usize) {
                    let db = db.clone();
                    let hi = (start + per).min(DISTRICTS_PER_WAREHOUSE);
                    handles.push(tx.submit(move |tx| {
                        (start..hi).map(|d| audit_district(tx, &db, w, d)).sum::<i64>()
                    }));
                }
                let mut total: i64 = (0..per.min(DISTRICTS_PER_WAREHOUSE))
                    .map(|d| audit_district(tx, &db, w, d))
                    .sum();
                for h in &handles {
                    total += *tx.eval(h);
                }
                total
            }
        })
    }
}

/// One district's share of the warehouse audit: district YTD plus its
/// customers' year-to-date payments.
fn audit_district(tx: &mut Tx, db: &TpccDb, w: u64, d: u64) -> i64 {
    let mut sum = db.districts.get(tx, &district_key(w, d)).expect("district").ytd;
    for c in 0..db.scale.customers_per_district {
        if let Some(cust) = db.customers.get(tx, &customer_key(w, d, c)) {
            sum += cust.ytd_payment;
        }
    }
    sum
}

/// Prices one order line and updates its stock row (spec 2.4.2.2).
/// An invalid item id rolls the whole NewOrder back (spec 2.4.1.5; 1% of
/// generated orders).
fn process_line(tx: &mut Tx, db: &TpccDb, home_w: u64, l: &OrderLineInput) -> PricedLine {
    if l.i_id >= db.items.len() as u64 {
        tx.cancel();
    }
    let price = db.items[l.i_id as usize].price;
    let sk = stock_key(l.supply_w, l.i_id);
    db.stock.update(tx, &sk, |s| {
        if s.quantity >= l.quantity as i32 + 10 {
            s.quantity -= l.quantity as i32;
        } else {
            s.quantity = s.quantity - l.quantity as i32 + 91;
        }
        s.ytd += l.quantity as i64;
        s.order_cnt += 1;
        if l.supply_w != home_w {
            s.remote_cnt += 1;
        }
    });
    (l.i_id, price * l.quantity as i64, l.quantity, l.supply_w)
}

/// Delivers the oldest undelivered order of one district; returns whether
/// an order was pending.
fn deliver_district(tx: &mut Tx, db: &TpccDb, w: u64, d: u64, carrier: u8) -> bool {
    let lo = order_key(w, d, 0);
    let hi = order_key(w, d, u32::MAX as u64);
    let pending = db.new_orders.range(tx, &lo, &hi);
    let Some((ok, ())) = pending.first().cloned() else { return false };
    db.new_orders.remove(tx, &ok);
    let o_id = ok & 0xffff_ffff;

    let mut order = db.orders.get(tx, &ok).expect("queued order exists");
    order.carrier_id = Some(carrier);
    let c_id = order.c_id;
    let ol_cnt = order.ol_cnt as u64;
    db.orders.insert(tx, ok, order);

    let mut amount_sum = 0i64;
    for ol in 0..ol_cnt {
        let olk = order_line_key(w, d, o_id, ol);
        if let Some(mut line) = db.order_lines.get(tx, &olk) {
            line.delivery_d = Some(o_id);
            amount_sum += line.amount;
            db.order_lines.insert(tx, olk, line);
        }
    }
    db.customers.update(tx, &customer_key(w, d, c_id), |cu| {
        cu.balance += amount_sum;
        cu.delivery_cnt += 1;
    });
    true
}

/// Distinct items with low stock among the order lines of orders
/// `[lo_order, hi_order)` of district `(w, d)`, sorted.
fn low_stock_items(
    tx: &mut Tx,
    db: &TpccDb,
    w: u64,
    d: u64,
    lo_order: u64,
    hi_order: u64,
    threshold: i32,
) -> Vec<u64> {
    if lo_order >= hi_order {
        return Vec::new();
    }
    let lines = db.order_lines.range(
        tx,
        &order_line_key(w, d, lo_order, 0),
        &order_line_key(w, d, hi_order, 0),
    );
    let mut items: Vec<u64> = lines.iter().map(|(_, l)| l.i_id).collect();
    items.sort_unstable();
    items.dedup();
    items.retain(|i| {
        db.stock.get(tx, &stock_key(w, *i)).map(|s| s.quantity < threshold).unwrap_or(false)
    });
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TpccScale;
    use rtf::Rtf;

    fn small_db(tm: &Rtf) -> TpccDb {
        TpccDb::load(
            tm,
            TpccScale { warehouses: 1, customers_per_district: 20, items: 128, seed: 7 },
        )
    }

    fn lines(n: u64) -> Vec<OrderLineInput> {
        (0..n)
            .map(|i| OrderLineInput {
                i_id: (i * 17) % 128,
                supply_w: 0,
                quantity: 1 + (i % 5) as u32,
            })
            .collect()
    }

    #[test]
    fn new_order_updates_everything() {
        let tm = Rtf::builder().workers(2).build();
        let db = small_db(&tm);
        let ex = TpccExecutor::new(tm.clone(), db.clone(), 0);
        let total = ex.new_order(0, 3, 5, &lines(8));
        assert!(total > 0);
        tm.atomic(|tx| {
            assert_eq!(db.districts.get(tx, &district_key(0, 3)).unwrap().next_o_id, 2);
            assert!(db.orders.get(tx, &order_key(0, 3, 1)).is_some());
            assert!(db.new_orders.get(tx, &order_key(0, 3, 1)).is_some());
            assert_eq!(
                db.order_lines
                    .range(tx, &order_line_key(0, 3, 1, 0), &order_line_key(0, 3, 2, 0))
                    .len(),
                8
            );
            assert!(db.check_order_id_consistency(tx));
        });
    }

    #[test]
    fn parallel_new_order_equals_sequential() {
        let tm_a = Rtf::builder().workers(2).build();
        let tm_b = Rtf::builder().workers(2).build();
        let db_a = small_db(&tm_a);
        let db_b = small_db(&tm_b);
        let ls = lines(12);
        let ta = TpccExecutor::new(tm_a, db_a, 0).new_order(0, 1, 2, &ls);
        let tb = TpccExecutor::new(tm_b, db_b, 3).new_order(0, 1, 2, &ls);
        assert_eq!(ta, tb, "strong ordering: parallel == sequential");
    }

    #[test]
    fn payment_preserves_ytd_consistency() {
        let tm = Rtf::builder().workers(1).build();
        let db = small_db(&tm);
        let ex = TpccExecutor::new(tm.clone(), db.clone(), 0);
        let b1 = ex.payment(0, 2, 7, 1234);
        let b2 = ex.payment(0, 2, 7, 1000);
        assert_eq!(b2, b1 - 1000);
        assert!(tm.atomic(|tx| db.check_ytd_consistency(tx)));
    }

    #[test]
    fn delivery_clears_queue_and_credits_customers() {
        let tm = Rtf::builder().workers(2).build();
        let db = small_db(&tm);
        let ex = TpccExecutor::new(tm.clone(), db.clone(), 0);
        for d in 0..3 {
            ex.new_order(0, d, 1, &lines(4));
        }
        let delivered = ex.delivery(0, 9);
        assert_eq!(delivered, 3);
        assert_eq!(ex.delivery(0, 9), 0, "queue now empty");
        tm.atomic(|tx| {
            let order = db.orders.get(tx, &order_key(0, 0, 1)).unwrap();
            assert_eq!(order.carrier_id, Some(9));
            let cust = db.customers.get(tx, &customer_key(0, 0, 1)).unwrap();
            assert_eq!(cust.delivery_cnt, 1);
            assert!(cust.balance > -1000, "credited by delivery");
        });
    }

    #[test]
    fn parallel_delivery_equals_sequential() {
        let mk = |futures: usize| {
            let tm = Rtf::builder().workers(2).build();
            let db = small_db(&tm);
            let ex = TpccExecutor::new(tm.clone(), db.clone(), futures);
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                ex.new_order(0, d, d % 20, &lines(3));
            }
            let delivered = ex.delivery(0, 5);
            let audit = ex.warehouse_audit(0);
            (delivered, audit)
        };
        assert_eq!(mk(0), mk(4));
    }

    #[test]
    fn order_status_sees_latest_order() {
        let tm = Rtf::builder().workers(1).build();
        let db = small_db(&tm);
        let ex = TpccExecutor::new(tm.clone(), db, 0);
        let (_, zero_lines) = ex.order_status(0, 4, 3);
        assert_eq!(zero_lines, 0);
        ex.new_order(0, 4, 3, &lines(6));
        ex.new_order(0, 4, 3, &lines(9));
        let (balance, n) = ex.order_status(0, 4, 3);
        assert_eq!(n, 9);
        assert_eq!(balance, -1000);
    }

    #[test]
    fn stock_level_counts_low_items() {
        let tm = Rtf::builder().workers(2).build();
        let db = small_db(&tm);
        let ex = TpccExecutor::new(tm.clone(), db, 2);
        for _ in 0..5 {
            ex.new_order(0, 0, 2, &lines(10));
        }
        let all = ex.stock_level(0, 0, i32::MAX);
        let none = ex.stock_level(0, 0, i32::MIN);
        assert!(all > 0);
        assert_eq!(none, 0);
        // Parallel and sequential agree.
        let seq = TpccExecutor::new(tm.clone(), ex.db().clone(), 0).stock_level(0, 0, 50);
        let par = ex.stock_level(0, 0, 50);
        assert_eq!(seq, par);
    }

    #[test]
    fn by_name_selection_matches_spec_midpoint() {
        let tm = Rtf::builder().workers(1).build();
        let db = small_db(&tm);
        // 20 customers per district, names are last_name(c): each name
        // number < 20 maps to exactly one customer here, so by-name payment
        // must hit exactly that customer.
        let ex = TpccExecutor::new(tm.clone(), db.clone(), 0);
        let before = tm.atomic(|tx| db.customers.get(tx, &customer_key(0, 1, 7)).unwrap().balance);
        let bal = ex.payment_by_name(0, 1, 7, 500);
        assert_eq!(bal, before - 500);
        // Unknown name: no-op returning 0.
        assert_eq!(ex.payment_by_name(0, 1, 999, 500), 0);
        assert!(tm.atomic(|tx| db.check_ytd_consistency(tx)));

        // OrderStatus by name follows the same resolution.
        ex.new_order(0, 1, 7, &lines(4));
        let (b, n) = ex.order_status_by_name(0, 1, 7);
        assert_eq!(n, 4);
        assert_eq!(b, before - 500);
        assert_eq!(ex.order_status_by_name(0, 1, 999), (0, 0));
    }

    #[test]
    fn audit_reflects_payments() {
        let tm = Rtf::builder().workers(2).build();
        let db = small_db(&tm);
        let ex = TpccExecutor::new(tm.clone(), db, 3);
        let before = ex.warehouse_audit(0);
        ex.payment(0, 1, 1, 5000);
        let after = ex.warehouse_audit(0);
        assert_eq!(after, before + 10_000, "district ytd + customer ytd_payment both grow");
    }
}
