//! In-memory **TPC-C** ported to `rtf` transactional futures.
//!
//! TPC-C models a wholesale supplier: warehouses with 10 districts each,
//! customers per district, an item catalog, per-warehouse stock, and the
//! order pipeline (orders, order lines, new-order queue). The paper (§V)
//! runs TPC-C directly on the TM (not a database) and adapts it by
//! parallelizing long transactions with transactional futures, e.g.
//! "compute the total amount of money raised by the warehouse".
//!
//! Modules:
//! * [`model`] — row types and composite-key packing;
//! * [`db`] — the tables and the scale-factor loader;
//! * [`txns`] — the five standard transactions (NewOrder, Payment,
//!   OrderStatus, Delivery, StockLevel) plus the warehouse-audit analytics
//!   transaction, each with sequential and future-parallel variants;
//! * [`workload`] — the deterministic operation mix.
//!
//! Simplifications vs. the full TPC-C specification (documented here and in
//! DESIGN.md): customer selection is by id (no by-last-name path), the 1%
//! deliberately-aborting NewOrder is omitted (the TM's aborts come from
//! real conflicts), and History rows are folded into counters. These do not
//! affect the contention structure the paper's evaluation measures.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod db;
pub mod model;
pub mod txns;
pub mod workload;

pub use db::{TpccDb, TpccScale};
pub use txns::TpccExecutor;
pub use workload::{TpccConfig, TpccOp, TpccWorkload};
