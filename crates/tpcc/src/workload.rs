//! Deterministic TPC-C operation mix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtf::Rtf;

use crate::db::{TpccDb, TpccScale};
use crate::model::DISTRICTS_PER_WAREHOUSE;
use crate::txns::{OrderLineInput, TpccExecutor};

/// Mix percentages and sizing for a TPC-C run.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Database scale.
    pub scale: TpccScale,
    /// % NewOrder (spec: 45).
    pub new_order_pct: u32,
    /// % Payment (spec: 43).
    pub payment_pct: u32,
    /// % OrderStatus (spec: 4).
    pub order_status_pct: u32,
    /// % Delivery (spec: 4).
    pub delivery_pct: u32,
    /// % StockLevel (spec: 4).
    pub stock_level_pct: u32,
    /// % WarehouseAudit (the paper's long analytics transaction; taken from
    /// the Payment share when raised).
    pub audit_pct: u32,
    /// Order lines per NewOrder (spec: 5–15; the long-cycle length).
    pub max_lines: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            scale: TpccScale::default(),
            new_order_pct: 45,
            payment_pct: 38,
            order_status_pct: 4,
            delivery_pct: 4,
            stock_level_pct: 4,
            audit_pct: 5,
            max_lines: 15,
            seed: 0xC0FFEE,
        }
    }
}

/// One pre-generated operation.
#[derive(Clone, Debug)]
pub enum TpccOp {
    /// NewOrder with its line inputs.
    NewOrder {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Customer.
        c: u64,
        /// Lines.
        lines: Vec<OrderLineInput>,
    },
    /// Payment (by customer id — 40% of payments per spec).
    Payment {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Customer.
        c: u64,
        /// Amount in cents.
        amount: i64,
    },
    /// Payment selecting the customer by last name (60% per spec 2.5.2.2).
    PaymentByName {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Last-name number (spec syllable table).
        name: u64,
        /// Amount in cents.
        amount: i64,
    },
    /// OrderStatus (by customer id).
    OrderStatus {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Customer.
        c: u64,
    },
    /// OrderStatus selecting the customer by last name (60% per spec).
    OrderStatusByName {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Last-name number.
        name: u64,
    },
    /// Delivery.
    Delivery {
        /// Warehouse.
        w: u64,
        /// Carrier id.
        carrier: u8,
    },
    /// StockLevel.
    StockLevel {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Low-stock threshold.
        threshold: i32,
    },
    /// WarehouseAudit (long read-only analytics).
    Audit {
        /// Warehouse.
        w: u64,
    },
}

/// A loaded database plus a pre-generated operation list.
pub struct TpccWorkload {
    /// The tables.
    pub db: TpccDb,
    /// Operations in issue order.
    pub ops: Vec<TpccOp>,
}

impl TpccConfig {
    /// Loads the database and generates `num_ops` operations.
    pub fn build(&self, tm: &Rtf, num_ops: usize) -> TpccWorkload {
        let db = TpccDb::load(tm, self.scale);
        let ops = self.generate_ops(num_ops);
        TpccWorkload { db, ops }
    }

    /// Generates the operation list only (reusing a loaded database).
    pub fn generate_ops(&self, num_ops: usize) -> Vec<TpccOp> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let s = &self.scale;
        (0..num_ops)
            .map(|_| {
                let w = rng.gen_range(0..s.warehouses);
                let d = rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
                let c = rng.gen_range(0..s.customers_per_district);
                let dice = rng.gen_range(0..100u32);
                let mut edge = self.new_order_pct;
                if dice < edge {
                    let n = rng.gen_range(5..=self.max_lines.max(5));
                    let mut lines: Vec<OrderLineInput> = (0..n)
                        .map(|_| OrderLineInput {
                            i_id: nurand_item(&mut rng, s.items),
                            // 1% remote warehouse, as per spec, when possible.
                            supply_w: if s.warehouses > 1 && rng.gen_ratio(1, 100) {
                                (w + 1) % s.warehouses
                            } else {
                                w
                            },
                            quantity: rng.gen_range(1..=10),
                        })
                        .collect();
                    // Spec 2.4.1.5: 1% of NewOrders carry an unused item id
                    // on their last line and must roll back.
                    if rng.gen_ratio(1, 100) {
                        lines.last_mut().expect("n >= 5").i_id = u64::MAX;
                    }
                    return TpccOp::NewOrder { w, d, c, lines };
                }
                edge += self.payment_pct;
                if dice < edge {
                    let amount = rng.gen_range(100..500_000);
                    // Spec 2.5.2.2: 60% select the customer by last name.
                    return if rng.gen_ratio(60, 100) {
                        TpccOp::PaymentByName {
                            w,
                            d,
                            name: nurand_name(&mut rng, s.customers_per_district),
                            amount,
                        }
                    } else {
                        TpccOp::Payment { w, d, c, amount }
                    };
                }
                edge += self.order_status_pct;
                if dice < edge {
                    return if rng.gen_ratio(60, 100) {
                        TpccOp::OrderStatusByName {
                            w,
                            d,
                            name: nurand_name(&mut rng, s.customers_per_district),
                        }
                    } else {
                        TpccOp::OrderStatus { w, d, c }
                    };
                }
                edge += self.delivery_pct;
                if dice < edge {
                    return TpccOp::Delivery { w, carrier: rng.gen_range(1..=10) };
                }
                edge += self.stock_level_pct;
                if dice < edge {
                    return TpccOp::StockLevel { w, d, threshold: rng.gen_range(10..=20) };
                }
                TpccOp::Audit { w }
            })
            .collect()
    }
}

/// TPC-C's non-uniform item distribution (NURand(8191, ..) over the scaled
/// catalog).
fn nurand_item(rng: &mut StdRng, items: u64) -> u64 {
    let a = 8191u64;
    let x = rng.gen_range(0..=a);
    let y = rng.gen_range(0..items);
    let z = rng.gen_range(0..items);
    ((x & y) + z) % items
}

/// NURand(255, ..) over last-name numbers, bounded by the scaled customer
/// population so generated names actually exist.
fn nurand_name(rng: &mut StdRng, customers: u64) -> u64 {
    let span = customers.min(1000);
    let x = rng.gen_range(0..=255u64);
    let y = rng.gen_range(0..span);
    let z = rng.gen_range(0..span);
    ((x & y) + z) % span
}

/// Runs one operation through the executor; returns a result checksum.
pub fn run_op(ex: &TpccExecutor, op: &TpccOp) -> i64 {
    match op {
        TpccOp::NewOrder { w, d, c, lines } => ex.new_order(*w, *d, *c, lines),
        TpccOp::Payment { w, d, c, amount } => ex.payment(*w, *d, *c, *amount),
        TpccOp::PaymentByName { w, d, name, amount } => ex.payment_by_name(*w, *d, *name, *amount),
        TpccOp::OrderStatusByName { w, d, name } => {
            let (bal, n) = ex.order_status_by_name(*w, *d, *name);
            bal + n as i64
        }
        TpccOp::OrderStatus { w, d, c } => {
            let (bal, n) = ex.order_status(*w, *d, *c);
            bal + n as i64
        }
        TpccOp::Delivery { w, carrier } => ex.delivery(*w, *carrier) as i64,
        TpccOp::StockLevel { w, d, threshold } => ex.stock_level(*w, *d, *threshold) as i64,
        TpccOp::Audit { w } => ex.warehouse_audit(*w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_complete() {
        let cfg = TpccConfig {
            scale: TpccScale { warehouses: 2, customers_per_district: 10, items: 64, seed: 3 },
            ..Default::default()
        };
        let a = cfg.generate_ops(200);
        let b = cfg.generate_ops(200);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let novs = a.iter().filter(|o| matches!(o, TpccOp::NewOrder { .. })).count();
        assert!((60..=120).contains(&novs), "NewOrder share plausible: {novs}");
        assert!(a.iter().any(|o| matches!(o, TpccOp::Audit { .. })));
    }

    #[test]
    fn full_mix_runs_and_stays_consistent() {
        let tm = Rtf::builder().workers(2).build();
        let cfg = TpccConfig {
            scale: TpccScale { warehouses: 1, customers_per_district: 15, items: 128, seed: 5 },
            ..Default::default()
        };
        let w = cfg.build(&tm, 80);
        let ex = TpccExecutor::new(tm.clone(), w.db.clone(), 2);
        for op in &w.ops {
            run_op(&ex, op);
        }
        tm.atomic(|tx| {
            assert!(w.db.check_ytd_consistency(tx));
            assert!(w.db.check_order_id_consistency(tx));
        });
    }

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(nurand_item(&mut rng, 64) < 64);
        }
    }
}
