//! The Vacation client: STAMP's operation mix, executable sequentially or
//! parallelized with transactional futures (the paper's adaptation, §V).

use rtf::{Rtf, Tx};

use crate::manager::{Manager, ReservationKind, KINDS};

/// One pre-generated client task.
#[derive(Clone, Debug)]
pub enum VacationOp {
    /// STAMP `ACTION_MAKE_RESERVATION`: query a batch of resources, pick
    /// the highest-priced available item of each kind, reserve those for
    /// the customer. The query loop is the "long cycle" the paper
    /// parallelizes.
    MakeReservation {
        /// Customer making the trip.
        customer: u64,
        /// Resources to inspect.
        queries: Vec<(ReservationKind, u64)>,
    },
    /// STAMP `ACTION_DELETE_CUSTOMER`: query the customer's bill and delete
    /// the customer, releasing held units.
    DeleteCustomer {
        /// Customer to delete.
        customer: u64,
    },
    /// STAMP `ACTION_UPDATE_TABLES`: grow/shrink random relation rows.
    UpdateTables {
        /// `(kind, id, add?, price)` updates.
        updates: Vec<(ReservationKind, u64, bool, u32)>,
    },
    /// The paper's long read-only analytics transaction: identify travels
    /// (car+flight+room triples by id) whose combined price lies in a
    /// range, scanning `[0, relations)`.
    PriceRangeQuery {
        /// Lowest total price of interest.
        price_lo: u32,
        /// Highest total price of interest.
        price_hi: u32,
        /// Scan space: ids `[0, relations)`.
        relations: u64,
    },
}

/// Per-kind best (highest-price, available) resource seen in a query batch.
type Best = [Option<(u64, u32)>; 3];

fn merge_best(a: &mut Best, b: &Best) {
    for (slot, cand) in a.iter_mut().zip(b.iter()) {
        match (&slot, cand) {
            (_, None) => {}
            (None, Some(c)) => *slot = Some(*c),
            (Some((_, sp)), Some((cid, cp))) => {
                if cp > sp {
                    *slot = Some((*cid, *cp));
                }
            }
        }
    }
}

fn kind_index(kind: ReservationKind) -> usize {
    KINDS.iter().position(|k| *k == kind).expect("kind in KINDS")
}

/// Executes the operation mix against a [`Manager`].
pub struct Client {
    tm: Rtf,
    mgr: Manager,
    /// Futures per long transaction (0 = sequential STAMP behaviour).
    pub futures: usize,
}

impl Client {
    /// A client issuing transactions through `tm` against `mgr`,
    /// parallelizing long transactions across `futures` transactional
    /// futures (plus the continuation).
    pub fn new(tm: Rtf, mgr: Manager, futures: usize) -> Self {
        Client { tm, mgr, futures }
    }

    /// Runs one operation as a top-level transaction; returns an opaque
    /// result checksum (keeps work from being optimized away and lets tests
    /// compare configurations).
    pub fn execute(&self, op: &VacationOp) -> u64 {
        match op {
            VacationOp::MakeReservation { customer, queries } => {
                self.make_reservation(*customer, queries)
            }
            VacationOp::DeleteCustomer { customer } => {
                let customer = *customer;
                let mgr = self.mgr.clone();
                self.tm.atomic(move |tx| {
                    let bill = mgr.query_bill(tx, customer);
                    if bill.is_some() {
                        mgr.delete_customer(tx, customer);
                    }
                    bill.unwrap_or(0) as u64
                })
            }
            VacationOp::UpdateTables { updates } => {
                let mgr = self.mgr.clone();
                let updates = updates.clone();
                self.tm.atomic(move |tx| {
                    let mut done = 0u64;
                    for (kind, id, add, price) in &updates {
                        if *add {
                            mgr.add_resource(tx, *kind, *id, 100, *price);
                            done += 1;
                        } else if mgr.remove_resource(tx, *kind, *id, 100) {
                            done += 1;
                        }
                    }
                    done
                })
            }
            VacationOp::PriceRangeQuery { price_lo, price_hi, relations } => {
                self.price_range(*price_lo, *price_hi, *relations)
            }
        }
    }

    /// The long reservation transaction: scan the query batch for the best
    /// available resource of each kind, then reserve. With `futures > 0`
    /// the scan is split across transactional futures; the reservation
    /// writes run in the continuation after merging — the exact structure
    /// the paper evaluates.
    fn make_reservation(&self, customer: u64, queries: &[(ReservationKind, u64)]) -> u64 {
        let mgr = self.mgr.clone();
        let futures = self.futures;
        let queries = queries.to_vec();
        self.tm.atomic(move |tx| {
            let best: Best = if futures == 0 || queries.len() < futures + 1 {
                scan_batch(tx, &mgr, &queries)
            } else {
                let chunk = queries.len().div_ceil(futures + 1);
                let mut handles = Vec::new();
                // The continuation keeps the first chunk; each remaining
                // chunk becomes a future.
                for part in queries[chunk..].chunks(chunk) {
                    let mgr = mgr.clone();
                    let part = part.to_vec();
                    handles.push(tx.submit(move |tx| scan_batch(tx, &mgr, &part)));
                }
                let mut best = scan_batch(tx, &mgr, &queries[..chunk]);
                for h in &handles {
                    let b = tx.eval(h);
                    merge_best(&mut best, &b);
                }
                best
            };
            let mut checksum = 0u64;
            mgr.add_customer(tx, customer);
            for slot in best.iter().enumerate() {
                if let (i, Some((id, price))) = slot {
                    if mgr.reserve(tx, customer, KINDS[i], *id) {
                        checksum += *price as u64;
                    }
                }
            }
            checksum
        })
    }

    /// The long read-only analytics transaction: find travels (same-id
    /// car+flight+room triples) whose total price lies in the range,
    /// scanning id space in parallel.
    fn price_range(&self, price_lo: u32, price_hi: u32, relations: u64) -> u64 {
        let mgr = self.mgr.clone();
        let futures = self.futures;
        self.tm.atomic_ro(move |tx| {
            let segments = (futures + 1) as u64;
            let seg_len = relations.div_ceil(segments);
            let mut handles = Vec::new();
            for seg in 1..segments {
                let mgr = mgr.clone();
                let (lo, hi) = (seg * seg_len, ((seg + 1) * seg_len).min(relations));
                handles
                    .push(tx.submit(move |tx| travel_scan(tx, &mgr, lo, hi, price_lo, price_hi)));
            }
            let mut acc = travel_scan(tx, &mgr, 0, seg_len.min(relations), price_lo, price_hi);
            for h in &handles {
                acc += *tx.eval(h);
            }
            acc
        })
    }
}

/// Queries each `(kind, id)` and keeps the best available item per kind —
/// STAMP's inner loop of `client_run`'s make-reservation action.
fn scan_batch(tx: &mut Tx, mgr: &Manager, queries: &[(ReservationKind, u64)]) -> Best {
    let mut best: Best = [None, None, None];
    for (kind, id) in queries {
        if let (Some(price), Some(free)) =
            (mgr.query_price(tx, *kind, *id), mgr.query_free(tx, *kind, *id))
        {
            if free > 0 {
                merge_best(&mut best, &{
                    let mut b: Best = [None, None, None];
                    b[kind_index(*kind)] = Some((*id, price));
                    b
                });
            }
        }
    }
    best
}

/// Counts travels with total price in `[lo_price, hi_price]` over ids
/// `[lo, hi)`, returning `count * 1_000_000 + sum` as a checksum. Both
/// components are additive, so per-segment results from parallel futures
/// sum to exactly the sequential scan's value (strong ordering-friendly
/// aggregation).
fn travel_scan(tx: &mut Tx, mgr: &Manager, lo: u64, hi: u64, price_lo: u32, price_hi: u32) -> u64 {
    if lo >= hi {
        return 0;
    }
    let cars = mgr.scan_price_range(tx, ReservationKind::Car, lo, hi, 0, u32::MAX);
    let mut count = 0u64;
    let mut sum = 0u64;
    for (id, car_price) in cars {
        let fp = mgr.query_price(tx, ReservationKind::Flight, id);
        let rp = mgr.query_price(tx, ReservationKind::Room, id);
        if let (Some(fp), Some(rp)) = (fp, rp) {
            let total = car_price + fp + rp;
            if total >= price_lo && total <= price_hi {
                count += 1;
                sum += total as u64;
            }
        }
    }
    count * 1_000_000 + sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::KINDS;
    use rtf::Rtf;

    fn populated(tm: &Rtf) -> Manager {
        let mgr = Manager::new();
        tm.atomic(|tx| {
            for id in 0..64u64 {
                for kind in KINDS {
                    mgr.add_resource(tx, kind, id, 10, 50 + ((id * 13) % 50) as u32 * 10);
                }
            }
            for c in 0..32u64 {
                mgr.add_customer(tx, c);
            }
        });
        mgr
    }

    #[test]
    fn sequential_and_parallel_reservation_agree() {
        let tm0 = Rtf::builder().workers(2).build();
        let tm1 = Rtf::builder().workers(2).build();
        let m0 = populated(&tm0);
        let m1 = populated(&tm1);
        let queries: Vec<_> = (0..24u64).map(|i| (KINDS[(i % 3) as usize], i % 64)).collect();
        let op = VacationOp::MakeReservation { customer: 5, queries };
        let seq = Client::new(tm0, m0, 0).execute(&op);
        let par = Client::new(tm1, m1, 3).execute(&op);
        assert_eq!(seq, par, "strong ordering: parallel result equals sequential");
    }

    #[test]
    fn mixed_ops_keep_consistency() {
        let tm = Rtf::builder().workers(2).build();
        let mgr = populated(&tm);
        let client = Client::new(tm.clone(), mgr.clone(), 2);
        for i in 0..30u64 {
            let op = match i % 4 {
                0 | 1 => VacationOp::MakeReservation {
                    customer: i % 32,
                    queries: (0..12).map(|j| (KINDS[(j % 3) as usize], (i * 7 + j) % 64)).collect(),
                },
                2 => VacationOp::UpdateTables {
                    updates: vec![(KINDS[(i % 3) as usize], i % 64, i % 2 == 0, 90)],
                },
                _ => VacationOp::DeleteCustomer { customer: i % 32 },
            };
            client.execute(&op);
        }
        assert!(tm.atomic(|tx| mgr.check_consistency(tx)));
    }

    #[test]
    fn price_range_query_is_read_only_and_stable() {
        let tm = Rtf::builder().workers(2).build();
        let mgr = populated(&tm);
        let client = Client::new(tm.clone(), mgr, 3);
        let op = VacationOp::PriceRangeQuery { price_lo: 0, price_hi: 5000, relations: 64 };
        let a = client.execute(&op);
        let b = client.execute(&op);
        assert_eq!(a, b);
        assert!(a >= 1000, "some travels should match");
        assert!(tm.stats().top_ro_commits >= 2);
    }
}
