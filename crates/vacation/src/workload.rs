//! Deterministic Vacation workload generation (STAMP's CLI parameters).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtf::Rtf;

use crate::client::VacationOp;
use crate::manager::{Manager, KINDS};

/// STAMP-style workload parameters (`vacation -n -q -u -r -t`).
#[derive(Clone, Debug)]
pub struct VacationConfig {
    /// `-r`: rows per relation.
    pub relations: u64,
    /// `-n`: queries per reservation transaction (the long cycle's length).
    pub queries_per_tx: usize,
    /// `-q`: % of relations touched by queries (locality / contention dial;
    /// lower = hotter).
    pub query_range_pct: u32,
    /// `-u`: % of operations that are make-reservation (the rest split
    /// between delete-customer and update-tables as in STAMP).
    pub user_pct: u32,
    /// Additional share (%) of the paper's long read-only price-range
    /// analytics transactions, taken out of the non-user share.
    pub audit_pct: u32,
    /// RNG seed (workloads replay identically across configurations).
    pub seed: u64,
}

impl Default for VacationConfig {
    fn default() -> Self {
        // STAMP "vacation-low" flavour, scaled to fit CI-sized runs.
        VacationConfig {
            relations: 4096,
            queries_per_tx: 64,
            query_range_pct: 90,
            user_pct: 80,
            audit_pct: 5,
            seed: 0x7AC5_EED0,
        }
    }
}

/// A populated manager plus a pre-generated task list.
pub struct VacationWorkload {
    /// The tables.
    pub manager: Manager,
    /// Tasks, in issue order.
    pub ops: Vec<VacationOp>,
}

impl VacationConfig {
    /// Populates tables (STAMP: `total` 100–500, price 50–550 in steps of
    /// 50) and pre-generates `num_ops` tasks.
    pub fn build(&self, tm: &Rtf, num_ops: usize) -> VacationWorkload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let manager = Manager::new();
        let num_customers = self.relations;
        // Populate in moderately sized transactions to keep version lists
        // and commit records small.
        for chunk_start in (0..self.relations).step_by(512) {
            let hi = (chunk_start + 512).min(self.relations);
            let rows: Vec<(u64, [u32; 6])> = (chunk_start..hi)
                .map(|id| {
                    let mut row = [0u32; 6];
                    for k in 0..3 {
                        row[k * 2] = rng.gen_range(1..=5u32) * 100; // total
                        row[k * 2 + 1] = (rng.gen_range(1..=11u32)) * 50; // price
                    }
                    (id, row)
                })
                .collect();
            let manager = manager.clone();
            tm.atomic(move |tx| {
                for (id, row) in &rows {
                    for (k, kind) in KINDS.iter().enumerate() {
                        manager.add_resource(tx, *kind, *id, row[k * 2], row[k * 2 + 1]);
                    }
                    if *id < num_customers {
                        manager.add_customer(tx, *id);
                    }
                }
            });
        }

        let query_range = ((self.relations as f64) * (self.query_range_pct as f64) / 100.0)
            .ceil()
            .max(1.0) as u64;
        let ops = (0..num_ops)
            .map(|_| {
                let dice = rng.gen_range(0..100u32);
                if dice < self.user_pct {
                    let customer = rng.gen_range(0..num_customers);
                    let queries = (0..self.queries_per_tx)
                        .map(|_| (KINDS[rng.gen_range(0..3usize)], rng.gen_range(0..query_range)))
                        .collect();
                    VacationOp::MakeReservation { customer, queries }
                } else if dice < self.user_pct + self.audit_pct {
                    VacationOp::PriceRangeQuery {
                        price_lo: rng.gen_range(100..400),
                        price_hi: rng.gen_range(800..1650),
                        relations: self.relations,
                    }
                } else if dice % 2 == 0 {
                    VacationOp::DeleteCustomer { customer: rng.gen_range(0..num_customers) }
                } else {
                    let updates = (0..self.queries_per_tx / 8)
                        .map(|_| {
                            (
                                KINDS[rng.gen_range(0..3usize)],
                                rng.gen_range(0..query_range),
                                rng.gen_bool(0.5),
                                rng.gen_range(1..=11u32) * 50,
                            )
                        })
                        .collect();
                    VacationOp::UpdateTables { updates }
                }
            })
            .collect();
        VacationWorkload { manager, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn workload_is_deterministic() {
        let cfg = VacationConfig { relations: 128, queries_per_tx: 8, ..Default::default() };
        let tm = Rtf::builder().workers(1).build();
        let w1 = cfg.build(&tm, 50);
        let w2 = cfg.build(&tm, 50);
        assert_eq!(w1.ops.len(), 50);
        let fmt = |ops: &[VacationOp]| format!("{ops:?}");
        assert_eq!(fmt(&w1.ops), fmt(&w2.ops));
    }

    #[test]
    fn generated_workload_runs_clean() {
        let cfg = VacationConfig {
            relations: 256,
            queries_per_tx: 16,
            user_pct: 70,
            audit_pct: 10,
            ..Default::default()
        };
        let tm = Rtf::builder().workers(2).build();
        let w = cfg.build(&tm, 60);
        let client = Client::new(tm.clone(), w.manager.clone(), 2);
        for op in &w.ops {
            client.execute(op);
        }
        assert!(tm.atomic(|tx| w.manager.check_consistency(tx)));
        let stats = tm.stats();
        assert!(stats.commits() >= 60);
    }
}
