//! The Vacation manager: tables and invariant-preserving operations,
//! following STAMP's `manager.c`.

use rtf::Tx;
use rtf_tstructs::TBTreeMap;

/// The three reservable resource kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReservationKind {
    /// Rental cars.
    Car,
    /// Flights.
    Flight,
    /// Hotel rooms.
    Room,
}

/// All kinds, in a fixed order (iteration helper).
pub const KINDS: [ReservationKind; 3] =
    [ReservationKind::Car, ReservationKind::Flight, ReservationKind::Room];

/// One relation row: a reservable resource.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Capacity.
    pub total: u32,
    /// Currently reserved.
    pub used: u32,
    /// Price per unit.
    pub price: u32,
}

impl Reservation {
    /// Remaining capacity.
    pub fn free(&self) -> u32 {
        self.total - self.used
    }
}

/// A customer and the reservations on their bill.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Customer {
    /// `(kind, resource id, price paid)` per held reservation.
    pub reservations: Vec<(ReservationKind, u64, u32)>,
}

/// The travel agency's tables.
pub struct Manager {
    cars: TBTreeMap<u64, Reservation>,
    flights: TBTreeMap<u64, Reservation>,
    rooms: TBTreeMap<u64, Reservation>,
    customers: TBTreeMap<u64, Customer>,
}

impl Clone for Manager {
    fn clone(&self) -> Self {
        Manager {
            cars: self.cars.clone(),
            flights: self.flights.clone(),
            rooms: self.rooms.clone(),
            customers: self.customers.clone(),
        }
    }
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Empty tables.
    pub fn new() -> Self {
        Manager {
            cars: TBTreeMap::new(),
            flights: TBTreeMap::new(),
            rooms: TBTreeMap::new(),
            customers: TBTreeMap::new(),
        }
    }

    fn table(&self, kind: ReservationKind) -> &TBTreeMap<u64, Reservation> {
        match kind {
            ReservationKind::Car => &self.cars,
            ReservationKind::Flight => &self.flights,
            ReservationKind::Room => &self.rooms,
        }
    }

    /// Adds `num` units of resource `id` at `price` (creating the row if
    /// absent) — STAMP `manager_add*`. `num == 0` with a new price updates
    /// the price only.
    pub fn add_resource(&self, tx: &mut Tx, kind: ReservationKind, id: u64, num: u32, price: u32) {
        let t = self.table(kind);
        let row = match t.get(tx, &id) {
            Some(mut r) => {
                r.total += num;
                r.price = price;
                r
            }
            None => Reservation { total: num, used: 0, price },
        };
        t.insert(tx, id, row);
    }

    /// Removes up to `num` *free* units of resource `id`; returns whether
    /// the row existed with enough free capacity (STAMP `manager_delete*`).
    pub fn remove_resource(&self, tx: &mut Tx, kind: ReservationKind, id: u64, num: u32) -> bool {
        let t = self.table(kind);
        match t.get(tx, &id) {
            Some(mut r) if r.free() >= num => {
                r.total -= num;
                if r.total == 0 && r.used == 0 {
                    t.remove(tx, &id);
                } else {
                    t.insert(tx, id, r);
                }
                true
            }
            _ => false,
        }
    }

    /// Price of resource `id`, if present (STAMP `manager_query*Price`).
    pub fn query_price(&self, tx: &mut Tx, kind: ReservationKind, id: u64) -> Option<u32> {
        self.table(kind).get(tx, &id).map(|r| r.price)
    }

    /// Free units of resource `id`, if present.
    pub fn query_free(&self, tx: &mut Tx, kind: ReservationKind, id: u64) -> Option<u32> {
        self.table(kind).get(tx, &id).map(|r| r.free())
    }

    /// Registers a customer (idempotent); returns whether it was new.
    pub fn add_customer(&self, tx: &mut Tx, id: u64) -> bool {
        if self.customers.contains_key(tx, &id) {
            return false;
        }
        self.customers.insert(tx, id, Customer::default());
        true
    }

    /// Deletes a customer, releasing every reservation on their bill
    /// (STAMP `manager_deleteCustomer`). Returns the released bill total,
    /// or `None` if the customer does not exist.
    pub fn delete_customer(&self, tx: &mut Tx, id: u64) -> Option<u32> {
        let customer = self.customers.remove(tx, &id)?;
        let mut bill = 0;
        for (kind, rid, price) in &customer.reservations {
            bill += price;
            let t = self.table(*kind);
            if let Some(mut r) = t.get(tx, rid) {
                r.used -= 1;
                t.insert(tx, *rid, r);
            }
        }
        Some(bill)
    }

    /// Reserves one unit of resource `id` for `customer` (STAMP
    /// `manager_reserve*`). Returns whether the reservation succeeded.
    pub fn reserve(&self, tx: &mut Tx, customer: u64, kind: ReservationKind, id: u64) -> bool {
        let Some(mut cust) = self.customers.get(tx, &customer) else { return false };
        let t = self.table(kind);
        let Some(mut row) = t.get(tx, &id) else { return false };
        if row.free() == 0 {
            return false;
        }
        row.used += 1;
        let price = row.price;
        t.insert(tx, id, row);
        cust.reservations.push((kind, id, price));
        self.customers.insert(tx, customer, cust);
        true
    }

    /// Total bill of a customer, if present (STAMP `manager_queryCustomerBill`).
    pub fn query_bill(&self, tx: &mut Tx, customer: u64) -> Option<u32> {
        self.customers.get(tx, &customer).map(|c| c.reservations.iter().map(|(_, _, p)| *p).sum())
    }

    /// All resources of `kind` with id in `[lo, hi)` whose price lies in
    /// `[price_lo, price_hi]` — the row scan behind the paper's
    /// "identify travels within a given price range" long transactions.
    pub fn scan_price_range(
        &self,
        tx: &mut Tx,
        kind: ReservationKind,
        lo: u64,
        hi: u64,
        price_lo: u32,
        price_hi: u32,
    ) -> Vec<(u64, u32)> {
        self.table(kind)
            .range(tx, &lo, &hi)
            .into_iter()
            .filter(|(_, r)| r.price >= price_lo && r.price <= price_hi)
            .map(|(id, r)| (id, r.price))
            .collect()
    }

    /// Global accounting check used by tests: units used across tables must
    /// equal reservations held by customers.
    pub fn check_consistency(&self, tx: &mut Tx) -> bool {
        let mut used_total = 0u64;
        for kind in KINDS {
            self.table(kind).for_each(tx, &mut |_, r| used_total += r.used as u64);
        }
        let mut held = 0u64;
        self.customers.for_each(tx, &mut |_, c| held += c.reservations.len() as u64);
        used_total == held
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf::Rtf;

    fn setup() -> (Rtf, Manager) {
        let tm = Rtf::builder().workers(1).build();
        let mgr = Manager::new();
        tm.atomic(|tx| {
            for id in 0..20 {
                for kind in KINDS {
                    mgr.add_resource(tx, kind, id, 5, 100 + (id as u32) * 10);
                }
            }
            for c in 0..10 {
                mgr.add_customer(tx, c);
            }
        });
        (tm, mgr)
    }

    #[test]
    fn reserve_and_bill() {
        let (tm, mgr) = setup();
        tm.atomic(|tx| {
            assert!(mgr.reserve(tx, 1, ReservationKind::Car, 3));
            assert!(mgr.reserve(tx, 1, ReservationKind::Room, 4));
            assert_eq!(mgr.query_bill(tx, 1), Some(130 + 140));
            assert_eq!(mgr.query_free(tx, ReservationKind::Car, 3), Some(4));
            assert!(mgr.check_consistency(tx));
        });
    }

    #[test]
    fn reserve_fails_without_capacity_or_customer() {
        let (tm, mgr) = setup();
        tm.atomic(|tx| {
            assert!(!mgr.reserve(tx, 99, ReservationKind::Car, 3), "unknown customer");
            assert!(!mgr.reserve(tx, 1, ReservationKind::Car, 999), "unknown resource");
            for _ in 0..5 {
                assert!(mgr.reserve(tx, 1, ReservationKind::Flight, 0));
            }
            assert!(!mgr.reserve(tx, 1, ReservationKind::Flight, 0), "sold out");
            assert!(mgr.check_consistency(tx));
        });
    }

    #[test]
    fn delete_customer_releases_units() {
        let (tm, mgr) = setup();
        tm.atomic(|tx| {
            assert!(mgr.reserve(tx, 2, ReservationKind::Car, 1));
            assert!(mgr.reserve(tx, 2, ReservationKind::Car, 2));
            assert_eq!(mgr.query_free(tx, ReservationKind::Car, 1), Some(4));
            let bill = mgr.delete_customer(tx, 2).unwrap();
            assert_eq!(bill, 110 + 120);
            assert_eq!(mgr.query_free(tx, ReservationKind::Car, 1), Some(5));
            assert_eq!(mgr.delete_customer(tx, 2), None);
            assert!(mgr.check_consistency(tx));
        });
    }

    #[test]
    fn add_remove_resource() {
        let (tm, mgr) = setup();
        tm.atomic(|tx| {
            mgr.add_resource(tx, ReservationKind::Room, 100, 3, 75);
            assert_eq!(mgr.query_free(tx, ReservationKind::Room, 100), Some(3));
            assert!(mgr.remove_resource(tx, ReservationKind::Room, 100, 3));
            assert_eq!(mgr.query_free(tx, ReservationKind::Room, 100), None, "row dropped");
            assert!(!mgr.remove_resource(tx, ReservationKind::Room, 100, 1));
            // Can't remove units that are in use.
            assert!(mgr.reserve(tx, 0, ReservationKind::Car, 0));
            assert!(!mgr.remove_resource(tx, ReservationKind::Car, 0, 5));
            assert!(mgr.remove_resource(tx, ReservationKind::Car, 0, 4));
        });
    }

    #[test]
    fn price_range_scan() {
        let (tm, mgr) = setup();
        let hits =
            tm.atomic(|tx| mgr.scan_price_range(tx, ReservationKind::Flight, 0, 20, 150, 200));
        // prices are 100 + id*10: ids 5..=10 fall in [150, 200].
        assert_eq!(hits.len(), 6);
        assert!(hits.iter().all(|(id, p)| *p == 100 + (*id as u32) * 10));
    }
}
