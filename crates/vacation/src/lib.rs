//! STAMP **Vacation** ported to `rtf` transactional futures.
//!
//! Vacation emulates a travel reservation system: a manager owns four
//! tables — cars, flights, rooms (each a relation of `Reservation` rows)
//! and customers — and clients issue three kinds of transactions
//! (make-reservation, delete-customer, update-tables), mirroring the STAMP
//! C implementation's operation mix. The paper (§V) adapts the benchmark by
//! parallelizing, with transactional futures, the long transactions that
//! "read a number of domain objects and compute various functions, e.g.,
//! identify travels within a given price range".
//!
//! * [`Manager`] — the four tables and their invariant-preserving
//!   operations;
//! * [`client`] — the STAMP operation mix, with both sequential and
//!   future-parallelized make-reservation/query paths;
//! * [`workload`] — deterministic workload generation (pre-generated task
//!   lists so every configuration replays identical work).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod client;
pub mod manager;
pub mod workload;

pub use client::{Client, VacationOp};
pub use manager::{Manager, ReservationKind};
pub use workload::{VacationConfig, VacationWorkload};
