//! Opt-in runtime tracing for debugging coordination issues.
//!
//! Enabled by setting `RTF_TRACE=1` in the environment; zero overhead
//! beyond one branch when disabled.

use std::sync::OnceLock;

static ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether tracing was requested.
pub(crate) fn enabled() -> bool {
    *ENABLED.get_or_init(|| std::env::var_os("RTF_TRACE").is_some_and(|v| v != "0"))
}

macro_rules! rtf_trace {
    ($($arg:tt)*) => {
        if $crate::trace::enabled() {
            eprintln!("[rtf {:?}] {}", std::thread::current().id(), format_args!($($arg)*));
        }
    };
}

pub(crate) use rtf_trace;
