//! Nodes of a transaction tree.
//!
//! Every submit point splits the current transactional context into two
//! sibling sub-transactions — the transactional future and the continuation
//! (paper §II, Fig 3a) — so a top-level transaction unfolds into a binary
//! tree rooted at the top-level (root) node. A [`Node`] represents one
//! *execution attempt* of one tree position: a re-executed sub-transaction
//! gets a brand-new node (fresh id and fresh ownership record), which is how
//! reads distinguish current writes from leftovers of aborted attempts.
//!
//! The node carries the metadata of §III-A:
//!
//! * `nclock` — incremented each time a direct child commits, with a keyed
//!   `WaitQueue` so `waitTurn` waiters block instead of spinning and only
//!   the waiters whose threshold was reached are woken;
//! * `anc_ver` — for every ancestor, that ancestor's `nclock` value when
//!   this node started; the visibility rule compares it against the
//!   `txTreeVer` of ownership records (Fig 4);
//! * the node's [`OrderKey`] path encoding its serialization position, and
//!   `fork_count`, the number of completed submit points, which determines
//!   the order key of the node's own writes.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use rtf_txbase::{new_node_id, FxHashMap, NodeId, OrderKey, Orec, WaitQueue, WriteToken};
use rtf_txengine::VBoxCell;

/// Role of a node within its parent (the paper's future/continuation
/// distinction, extended with the fork index for nodes that fork several
/// times — see `rtf_txbase::order` for why that stays faithful to the
/// strictly binary trees of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The top-level transaction.
    Root,
    /// A transactional future created by its parent's `fork_idx`-th submit.
    Future {
        /// 0-based submit index within the parent.
        fork_idx: u32,
    },
    /// The continuation created by its parent's `fork_idx`-th submit.
    Continuation {
        /// 0-based submit index within the parent.
        fork_idx: u32,
    },
}

/// Contributions a committed child hands to its parent (the paper's
/// "read and write sets of a sub-transaction that commits are consolidated
/// by the parent", §II).
#[derive(Default)]
pub struct Inbox {
    /// Ownership records now owned by this node (its committed descendants'
    /// records, re-owned transitively at each sub-commit — Alg 4 lines
    /// 10–13).
    pub adopted_orecs: Vec<Arc<Orec>>,
    /// Reads served from the *permanent* store by committed descendants;
    /// needed for the top-level (inter-tree) validation at root commit.
    pub perm_reads: Vec<(Arc<VBoxCell>, WriteToken)>,
    /// Cells written by committed descendants (tree-abort cleanup).
    pub written_cells: Vec<Arc<VBoxCell>>,
}

/// One execution attempt of one tree position.
pub struct Node {
    /// Unique id of this attempt.
    pub id: NodeId,
    /// Role within the parent.
    pub kind: NodeKind,
    /// Parent attempt (`None` for the root).
    pub parent: Option<Arc<Node>>,
    /// Serialization-order path of this position.
    pub path: OrderKey,
    /// `ancVer`: ancestor id → that ancestor's `nclock` when this node
    /// started (paper §III-A). Includes *all* ancestors up to the root.
    pub anc_ver: FxHashMap<NodeId, u64>,
    /// Ownership record of this attempt's writes.
    pub orec: Arc<Orec>,
    /// Number of committed direct children.
    nclock: Mutex<u64>,
    /// `waitTurn` waiters, keyed by the threshold they wait for, so a bump
    /// wakes exactly the waiters whose turn arrived (`key <= new nclock`).
    nclock_waiters: WaitQueue,
    /// Number of completed submit points of this node (its next write gets
    /// order key `path.write_key(fork_count)`).
    pub fork_count: AtomicU32,
    /// Contributions from committed children.
    pub inbox: Mutex<Inbox>,
    /// Set when the node's subtree is being torn down; running descendants
    /// poll it at operation boundaries and unwind.
    cancelled: AtomicBool,
}

impl Node {
    /// Creates the root node of a new tree attempt.
    pub fn new_root() -> Arc<Node> {
        let id = new_node_id();
        Arc::new(Node {
            id,
            kind: NodeKind::Root,
            parent: None,
            path: OrderKey::root(),
            anc_ver: FxHashMap::default(),
            orec: Arc::new(Orec::new(id)),
            nclock: Mutex::new(0),
            nclock_waiters: WaitQueue::new(),
            fork_count: AtomicU32::new(0),
            inbox: Mutex::new(Inbox::default()),
            cancelled: AtomicBool::new(false),
        })
    }

    /// Creates a child attempt under `parent`. `anc_ver` is snapshotted
    /// *now*, walking the ancestor chain and reading every ancestor's
    /// current `nclock` (not the parent's possibly stale copy): a child may
    /// observe anything committed-and-propagated before it starts — all of
    /// which precedes it in the serialization order — and a re-created
    /// attempt (after a validation abort) thereby gains visibility of the
    /// writes it previously missed ("transactions that re-execute … read
    /// the writes they missed on their previous execution", §III-A).
    pub fn new_child(parent: &Arc<Node>, kind: NodeKind) -> Arc<Node> {
        let path = match kind {
            NodeKind::Future { fork_idx } => parent.path.child_future(fork_idx),
            NodeKind::Continuation { fork_idx } => parent.path.child_cont(fork_idx),
            NodeKind::Root => unreachable!("roots have no parent"),
        };
        let mut anc_ver = FxHashMap::default();
        let mut anc = Arc::clone(parent);
        loop {
            anc_ver.insert(anc.id, anc.nclock());
            match &anc.parent {
                Some(p) => {
                    let p = Arc::clone(p);
                    anc = p;
                }
                None => break,
            }
        }
        let id = new_node_id();
        Arc::new(Node {
            id,
            kind,
            parent: Some(Arc::clone(parent)),
            path,
            anc_ver,
            orec: Arc::new(Orec::new(id)),
            nclock: Mutex::new(0),
            nclock_waiters: WaitQueue::new(),
            fork_count: AtomicU32::new(0),
            inbox: Mutex::new(Inbox::default()),
            cancelled: AtomicBool::new(false),
        })
    }

    /// Current `nclock` value.
    pub fn nclock(&self) -> u64 {
        *self.nclock.lock()
    }

    /// Registers a child commit: bumps `nclock` and wakes `waitTurn`
    /// waiters. Returns the new value (the `txTreeVer` the child's orecs
    /// are propagated with — Alg 4 lines 7–8).
    pub fn bump_nclock(&self) -> u64 {
        let mut g = self.nclock.lock();
        *g += 1;
        let v = *g;
        drop(g);
        // Successor-only wake: only waiters whose threshold is now met.
        self.nclock_waiters.notify_where(|threshold| threshold <= v);
        v
    }

    /// Waits until `nclock >= threshold`, interleaving calls to `help`
    /// (pool helping) and checking `poisoned` (tree teardown). Returns
    /// `false` when the wait was interrupted by poisoning.
    pub fn wait_nclock_at_least(
        &self,
        threshold: u64,
        mut help: impl FnMut() -> bool,
        poisoned: impl Fn() -> bool,
    ) -> bool {
        loop {
            // Token before predicate: a bump landing after the check bumps
            // the epoch, so the park below returns Raced instead of
            // sleeping through its own wakeup.
            let token = self.nclock_waiters.epoch();
            if *self.nclock.lock() >= threshold {
                return true;
            }
            if poisoned() {
                return false;
            }
            // Help with no locks held; only park when idle.
            if !help() {
                let _ = self.nclock_waiters.park(
                    token,
                    threshold,
                    std::time::Duration::from_micros(200),
                );
            }
        }
    }

    /// Marks this subtree cancelled (tree teardown).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
        // Wake every waitTurn waiter parked on this node, whatever its
        // threshold: they must observe the poison flag and give up.
        self.nclock_waiters.notify_all();
    }

    /// Whether this node (or, transitively via checks at each level, an
    /// ancestor) was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The root of this node's tree.
    pub fn root(self: &Arc<Node>) -> Arc<Node> {
        let mut cur = Arc::clone(self);
        while let Some(p) = &cur.parent {
            let p = Arc::clone(p);
            cur = p;
        }
        cur
    }

    /// `waitTurn` target (Alg 3, generalized to multi-fork nodes): the
    /// `(node, threshold)` whose `nclock` reaching `threshold` certifies
    /// that every sub-transaction serialized before this node's subtree has
    /// committed. `None` means no wait (first in the serialization order).
    ///
    /// * continuation of fork `i`: parent's `nclock >= 2i+1` (its sibling
    ///   future's subtree committed);
    /// * future of fork `i > 0`: parent's `nclock >= 2i` (both children of
    ///   every earlier fork committed);
    /// * future of fork `0`: recurse on the parent — the paper's upward
    ///   traversal of `ancVer` to the first continuation ancestor;
    /// * root: no wait.
    pub fn wait_turn_target(self: &Arc<Node>) -> Option<(Arc<Node>, u64)> {
        let mut cur = Arc::clone(self);
        loop {
            match cur.kind {
                NodeKind::Root => return None,
                NodeKind::Continuation { fork_idx } => {
                    let parent = Arc::clone(cur.parent.as_ref().expect("non-root has parent"));
                    return Some((parent, 2 * fork_idx as u64 + 1));
                }
                NodeKind::Future { fork_idx } => {
                    let parent = Arc::clone(cur.parent.as_ref().expect("non-root has parent"));
                    if fork_idx > 0 {
                        return Some((parent, 2 * fork_idx as u64));
                    }
                    cur = parent;
                }
            }
        }
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Node({:?}, {:?}, {:?})", self.id, self.kind, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_paths_follow_order_scheme() {
        let root = Node::new_root();
        let f = Node::new_child(&root, NodeKind::Future { fork_idx: 0 });
        let c = Node::new_child(&root, NodeKind::Continuation { fork_idx: 0 });
        assert!(f.path < c.path);
        assert!(root.path.is_ancestor_of(&f.path));
        assert_eq!(f.anc_ver.get(&root.id), Some(&0));
    }

    #[test]
    fn anc_ver_snapshots_parent_nclock() {
        let root = Node::new_root();
        root.bump_nclock();
        let c = Node::new_child(&root, NodeKind::Continuation { fork_idx: 0 });
        assert_eq!(c.anc_ver.get(&root.id), Some(&1));
        let gc = Node::new_child(&c, NodeKind::Future { fork_idx: 0 });
        assert_eq!(gc.anc_ver.get(&root.id), Some(&1));
        assert_eq!(gc.anc_ver.get(&c.id), Some(&0));
        assert_eq!(gc.anc_ver.len(), 2);
    }

    #[test]
    fn wait_turn_targets_match_alg3() {
        let root = Node::new_root();
        // Fig 3a: TF1 = future(0) of root — first in order, no wait.
        let tf1 = Node::new_child(&root, NodeKind::Future { fork_idx: 0 });
        assert!(tf1.wait_turn_target().is_none());
        // TF2 = future(0) of TF1 — still leftmost: no wait.
        let tf2 = Node::new_child(&tf1, NodeKind::Future { fork_idx: 0 });
        assert!(tf2.wait_turn_target().is_none());
        // TC3 = continuation(0) of TF1: waits TF1.nclock >= 1.
        let tc3 = Node::new_child(&tf1, NodeKind::Continuation { fork_idx: 0 });
        let (n, th) = tc3.wait_turn_target().unwrap();
        assert_eq!(n.id, tf1.id);
        assert_eq!(th, 1);
        // TC4 = continuation(0) of root: waits root.nclock >= 1.
        let tc4 = Node::new_child(&root, NodeKind::Continuation { fork_idx: 0 });
        let (n, th) = tc4.wait_turn_target().unwrap();
        assert_eq!(n.id, root.id);
        assert_eq!(th, 1);
        // TF5 = future(0) of TC4: recurse to TC4's rule — root.nclock >= 1.
        let tf5 = Node::new_child(&tc4, NodeKind::Future { fork_idx: 0 });
        let (n, th) = tf5.wait_turn_target().unwrap();
        assert_eq!(n.id, root.id);
        assert_eq!(th, 1);
        // A second fork of the root: its future waits root.nclock >= 2.
        let f2 = Node::new_child(&root, NodeKind::Future { fork_idx: 1 });
        let (n, th) = f2.wait_turn_target().unwrap();
        assert_eq!(n.id, root.id);
        assert_eq!(th, 2);
        // ... and its continuation waits root.nclock >= 3.
        let c2 = Node::new_child(&root, NodeKind::Continuation { fork_idx: 1 });
        let (n, th) = c2.wait_turn_target().unwrap();
        assert_eq!(n.id, root.id);
        assert_eq!(th, 3);
    }

    #[test]
    fn wait_nclock_blocks_until_bumped() {
        let root = Node::new_root();
        let r2 = Arc::clone(&root);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(15));
            r2.bump_nclock();
        });
        let ok = root.wait_nclock_at_least(1, || false, || false);
        assert!(ok);
        h.join().unwrap();
    }

    #[test]
    fn wait_nclock_interrupted_by_poison() {
        let root = Node::new_root();
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(15));
            f2.store(true, Ordering::Release);
        });
        let ok = root.wait_nclock_at_least(5, || false, || flag.load(Ordering::Acquire));
        assert!(!ok);
        h.join().unwrap();
    }

    #[test]
    fn root_discovery() {
        let root = Node::new_root();
        let a = Node::new_child(&root, NodeKind::Future { fork_idx: 0 });
        let b = Node::new_child(&a, NodeKind::Continuation { fork_idx: 0 });
        assert_eq!(b.root().id, root.id);
        assert_eq!(root.root().id, root.id);
    }

    #[test]
    fn cancel_flag_visible() {
        let root = Node::new_root();
        assert!(!root.is_cancelled());
        root.cancel();
        assert!(root.is_cancelled());
    }
}
