//! Per-tree (top-level transaction attempt) shared context.
//!
//! Everything the concurrently running sub-transactions of one transaction
//! tree share: the snapshot version, the root's private write-set (the
//! paper's top-level write-set, consulted by sub-transaction reads — Alg 2
//! lines 21–22), the set of boxes with tentative entries (for commit-time
//! write-back and abort-time cleanup), the read-write sub-commit counter
//! backing the read-only future optimization (§IV-E), the in-flight task
//! counter (quiescence on whole-tree teardown) and the poison latch that
//! broadcasts teardown to running sub-transactions.

use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use rtf_txbase::{new_tree_id, FxHashSet, TreeId, Version, WaitQueue, WriteToken};
use rtf_txengine::{CellId, VBoxCell, Val, WriteEntry, WriteSet};

use crate::node::Node;

/// Intra-transaction serialization discipline for a tree's
/// sub-transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TreeSemantics {
    /// The paper's strong ordering: a future is serialized at its
    /// submission point; results equal a sequential execution.
    #[default]
    StrongOrdering,
    /// Unordered parallel nesting in the style of JVSTM (paper §VI): a
    /// sub-transaction is serialized when it *commits*; no `waitTurn`, no
    /// sequential-equivalence guarantee. A continuation may serialize
    /// before its own future; reads are still validated, so the intra-tree
    /// history stays serializable (ablation A4: the cost of strong
    /// ordering).
    ParallelNesting,
}

/// Why a tree attempt is being torn down.
pub enum PoisonKind {
    /// A sub-transaction hit a tentative list owned by another active tree
    /// (write-write conflict between top-level transactions, Alg 1 line 21).
    InterTree,
    /// An implicit (cursor-style) continuation failed validation; without
    /// first-class continuations the whole top-level transaction restarts
    /// (DESIGN.md D1).
    ContinuationRestart,
    /// User code panicked inside a sub-transaction; the payload is resumed
    /// on the thread that called `atomic`.
    UserPanic(Box<dyn Any + Send + 'static>),
    /// A future task died without settling its handle (its panic was
    /// contained at the pool layer, or the task closure was dropped unrun).
    /// Unlike [`PoisonKind::UserPanic`] there is no payload to resume; the
    /// runtime surfaces [`crate::TxError::FuturePanicked`] instead.
    FuturePanicked {
        /// Human-readable description of what died (best effort).
        message: String,
    },
    /// The starvation watchdog converted a wait stalled past
    /// `RTF_STALL_ABORT_MS` into a teardown
    /// ([`crate::TxError::StallAborted`]).
    Stalled {
        /// Which wait stalled (`wait_turn`, `quiescence`, `future_wait`).
        kind: &'static str,
        /// How long the waiter had been blocked, milliseconds.
        waited_ms: u64,
    },
}

impl std::fmt::Debug for PoisonKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoisonKind::InterTree => write!(f, "InterTree"),
            PoisonKind::ContinuationRestart => write!(f, "ContinuationRestart"),
            PoisonKind::UserPanic(_) => write!(f, "UserPanic(..)"),
            PoisonKind::FuturePanicked { message } => write!(f, "FuturePanicked({message})"),
            PoisonKind::Stalled { kind, waited_ms } => {
                write!(f, "Stalled({kind}, {waited_ms}ms)")
            }
        }
    }
}

/// Shared state of one execution attempt of a top-level transaction.
pub struct TreeCtx {
    /// Tree identity (distinguishes tentative entries of different trees).
    pub tree_id: TreeId,
    /// Snapshot version of the whole tree (children inherit it, §III-A).
    pub start_version: Version,
    /// The root node of this attempt.
    pub root: Arc<Node>,
    /// The top-level private write-set (`rootWriteSet` in the paper):
    /// writes the root performed before its first submit (and all writes in
    /// sequential-fallback mode). An engine [`WriteSet`] — overwrites keep
    /// the write's token, so a slot has one identity for the whole attempt.
    root_ws: RwLock<WriteSet>,
    /// Boxes carrying tentative entries of this tree.
    touched: Mutex<TouchedSet>,
    /// Count of committed read-write sub-transactions (§IV-E: backs the
    /// read-only future validation skip).
    pub rw_commit_clock: AtomicU64,
    /// Sequential fallback mode: futures run inline, writes go to `root_ws`.
    pub fallback: bool,
    /// Intra-tree serialization discipline.
    pub semantics: TreeSemantics,
    /// Tree-global write sequence (order keys in `ParallelNesting` mode).
    write_seq: AtomicU32,
    poison_flag: AtomicBool,
    poison: Mutex<Option<PoisonKind>>,
    tasks: Mutex<usize>,
    /// Quiescence waiters (teardown), woken when `tasks` reaches zero.
    tasks_waiters: WaitQueue,
}

#[derive(Default)]
struct TouchedSet {
    seen: FxHashSet<CellId>,
    cells: Vec<Arc<VBoxCell>>,
}

impl TreeCtx {
    /// Fresh attempt context.
    pub fn new(start_version: Version, fallback: bool) -> Arc<TreeCtx> {
        Self::with_semantics(start_version, fallback, TreeSemantics::StrongOrdering)
    }

    /// Fresh attempt context with an explicit serialization discipline.
    pub fn with_semantics(
        start_version: Version,
        fallback: bool,
        semantics: TreeSemantics,
    ) -> Arc<TreeCtx> {
        Arc::new(TreeCtx {
            tree_id: new_tree_id(),
            start_version,
            root: Node::new_root(),
            root_ws: RwLock::new(WriteSet::new()),
            touched: Mutex::new(TouchedSet::default()),
            rw_commit_clock: AtomicU64::new(0),
            fallback,
            semantics,
            write_seq: AtomicU32::new(0),
            poison_flag: AtomicBool::new(false),
            poison: Mutex::new(None),
            tasks: Mutex::new(0),
            tasks_waiters: WaitQueue::new(),
        })
    }

    /// Next write sequence number (`ParallelNesting` order keys).
    pub fn next_write_seq(&self) -> u32 {
        self.write_seq.fetch_add(1, Ordering::Relaxed)
    }

    // ---- root write-set ----------------------------------------------

    /// Value previously written by the top-level context, if any.
    pub fn root_ws_get(&self, id: CellId) -> Option<(Val, WriteToken)> {
        self.root_ws.read().get(id)
    }

    /// Buffers a top-level private write.
    pub fn root_ws_put(&self, cell: &Arc<VBoxCell>, value: Val) {
        self.root_ws.write().put(cell, value);
    }

    /// Whether the top-level write-set is empty (read-only fast path).
    pub fn root_ws_is_empty(&self) -> bool {
        self.root_ws.read().is_empty()
    }

    /// Drains the top-level write-set for commit.
    pub fn root_ws_drain(&self) -> Vec<WriteEntry> {
        self.root_ws.write().drain().collect()
    }

    // ---- tentative bookkeeping ----------------------------------------

    /// Records that `cell` now carries a tentative entry of this tree.
    pub fn touch(&self, cell: &Arc<VBoxCell>) {
        let mut t = self.touched.lock();
        if t.seen.insert(cell.id()) {
            t.cells.push(Arc::clone(cell));
        }
    }

    /// All boxes carrying (or having carried) tentative entries of this
    /// tree.
    pub fn touched_cells(&self) -> Vec<Arc<VBoxCell>> {
        self.touched.lock().cells.clone()
    }

    /// Removes every tentative entry of this tree from the boxes it
    /// touched; called after root commit (entries were written back) and on
    /// whole-tree abort.
    pub fn scrub_tentative(&self) {
        let cells = self.touched_cells();
        for cell in cells {
            let mut list = cell.tentative_lock();
            list.retain(|e| e.tree != self.tree_id);
        }
    }

    // ---- poison -------------------------------------------------------

    /// Whether this attempt is being torn down.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poison_flag.load(Ordering::Acquire)
    }

    /// Latches a teardown reason (first reason wins) and returns whether
    /// this call was the one that latched it.
    pub fn poison(&self, kind: PoisonKind) -> bool {
        let mut p = self.poison.lock();
        let latched = if p.is_none() {
            *p = Some(kind);
            true
        } else {
            false
        };
        self.poison_flag.store(true, Ordering::Release);
        latched
    }

    /// Takes the teardown reason (root thread, after quiescence).
    pub fn take_poison(&self) -> Option<PoisonKind> {
        self.poison.lock().take()
    }

    // ---- in-flight task tracking ---------------------------------------

    /// A future task is about to run.
    pub fn task_started(&self) {
        *self.tasks.lock() += 1;
    }

    /// A future task finished (committed or unwound).
    pub fn task_finished(&self) {
        let mut g = self.tasks.lock();
        debug_assert!(*g > 0, "task_finished without task_started");
        *g -= 1;
        if *g == 0 {
            drop(g);
            self.tasks_waiters.notify_all();
        }
    }

    /// Future tasks of this tree currently in flight (instantaneous; used
    /// by the wait-graph inspector to label quiescence waits).
    pub fn tasks_in_flight(&self) -> usize {
        *self.tasks.lock()
    }

    /// Blocks until no task of this tree is in flight, running `help`
    /// while waiting (queued tasks of this very tree may need a thread).
    pub fn wait_quiescent(&self, mut help: impl FnMut() -> bool) {
        loop {
            // Token before predicate (see `rtf_txbase::wait`): a final
            // task_finished landing after the check cannot be slept through.
            let token = self.tasks_waiters.epoch();
            if *self.tasks.lock() == 0 {
                return;
            }
            if !help() {
                let _ = self.tasks_waiters.park(token, 0, std::time::Duration::from_micros(200));
            }
        }
    }
}

impl std::fmt::Debug for TreeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TreeCtx({:?}, start=v{}, fallback={}, poisoned={})",
            self.tree_id,
            self.start_version,
            self.fallback,
            self.is_poisoned()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_txengine::{downcast, erase, VBox};

    #[test]
    fn root_ws_roundtrip_and_drain() {
        let tree = TreeCtx::new(0, false);
        let b = VBox::new(1u32);
        assert!(tree.root_ws_get(b.id()).is_none());
        tree.root_ws_put(b.cell(), erase(2u32));
        let (v, t1) = tree.root_ws_get(b.id()).unwrap();
        assert_eq!(*downcast::<u32>(v), 2);
        // Overwrite keeps the token (same logical write slot).
        tree.root_ws_put(b.cell(), erase(3u32));
        let (v, t2) = tree.root_ws_get(b.id()).unwrap();
        assert_eq!(*downcast::<u32>(v), 3);
        assert_eq!(t1, t2);
        let drained = tree.root_ws_drain();
        assert_eq!(drained.len(), 1);
        assert!(tree.root_ws_is_empty());
    }

    #[test]
    fn touch_dedupes() {
        let tree = TreeCtx::new(0, false);
        let b = VBox::new(1u32);
        tree.touch(b.cell());
        tree.touch(b.cell());
        assert_eq!(tree.touched_cells().len(), 1);
    }

    #[test]
    fn poison_latches_first_reason() {
        let tree = TreeCtx::new(0, false);
        assert!(!tree.is_poisoned());
        assert!(tree.poison(PoisonKind::InterTree));
        assert!(!tree.poison(PoisonKind::ContinuationRestart));
        assert!(tree.is_poisoned());
        match tree.take_poison() {
            Some(PoisonKind::InterTree) => {}
            other => panic!("unexpected poison {other:?}"),
        }
    }

    #[test]
    fn quiescence_waits_for_tasks() {
        let tree = TreeCtx::new(0, false);
        tree.task_started();
        tree.task_started();
        let t2 = Arc::clone(&tree);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            t2.task_finished();
            std::thread::sleep(std::time::Duration::from_millis(10));
            t2.task_finished();
        });
        tree.wait_quiescent(|| false);
        h.join().unwrap();
    }

    #[test]
    fn scrub_removes_only_own_entries() {
        use rtf_txbase::{new_node_id, new_write_token, OrderKey, Orec};
        use rtf_txengine::{tentative_insert, TentativeEntry};

        let tree = TreeCtx::new(0, false);
        let other_tree = new_tree_id();
        let b = VBox::new(0u32);
        {
            let mut list = b.cell().tentative_lock();
            tentative_insert(
                &mut list,
                TentativeEntry {
                    key: OrderKey::root().write_key(0),
                    token: new_write_token(),
                    value: erase(1u32),
                    orec: Arc::new(Orec::new(new_node_id())),
                    tree: tree.tree_id,
                },
            );
            tentative_insert(
                &mut list,
                TentativeEntry {
                    key: OrderKey::root().child_future(0).write_key(0),
                    token: new_write_token(),
                    value: erase(2u32),
                    orec: Arc::new(Orec::new(new_node_id())),
                    tree: other_tree,
                },
            );
        }
        tree.touch(b.cell());
        tree.scrub_tentative();
        let list = b.cell().tentative_lock();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].tree, other_tree);
    }
}
