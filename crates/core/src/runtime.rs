//! The `Rtf` runtime: top-level transaction execution, the root commit, and
//! whole-tree abort/retry handling.
//!
//! [`Rtf::atomic`] drives one top-level transaction attempt per loop
//! iteration:
//!
//! 1. snapshot the clock, register for GC, create a fresh [`TreeCtx`];
//! 2. run the body (the cursor starts at the root; `submit`/`fork` grow the
//!    tree);
//! 3. commit the implicit continuation chain (paper: every sub-transaction
//!    of the tree commits before control returns to the top level);
//! 4. commit the top level: merge the root write-set with the heads of the
//!    tentative lists (the paper keeps lists sorted exactly so the head is
//!    the write-back value), validate the consolidated read-set against
//!    other top-level transactions, and install through the mvstm commit
//!    chain.
//!
//! Teardown paths re-enter the loop: top-level validation conflicts,
//! implicit-continuation restarts (D1), and inter-tree conflicts — the
//! latter switching to the sequential fallback mode (`rootWriteSet`, D3)
//! after `fallback_threshold` consecutive occurrences.

// Audited `clippy::panic` exemption: this module's panics are the
// runtime's typed unwind channels (`PoisonSignal` / `CancelSignal` /
// structured `TxError` payloads) plus documented API-contract panics;
// every one is caught or surfaced at the `Rtf` boundary, never a bug trap.
#![allow(clippy::panic)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use rtf_mvstm::{CommitStrategy, MvStm, TurnGate, TxData};
use rtf_taskpool::{Pool, PoolRunner};
use rtf_txbase::{OrecStatus, StatSnapshot, TicketDispenser, TmStats};
use rtf_txengine::{
    obs_now_ns, Event, EventSink, ReadRecord, ReadSet, RetryBudget, RetryDriver, Source, SpanKind,
    SpanRec, StallKind, TraceSink, WaitSiteGuard, WriteEntry, WriteSet,
};
use rtf_txobs::{LiveConfig, LiveExporter, ObsConfig, TxObs};

use crate::error::{panic_message, TxError};
use crate::future::TxFuture;
use crate::ordered::OrderedTicket;
use crate::stall::{StallAction, StallThresholds, StallWatch};
use crate::tree::{PoisonKind, TreeCtx, TreeSemantics};
use crate::tx::{install_quiet_poison_hook, CancelSignal, PoisonSignal, Tx, TxEnv};

/// The transaction was deliberately cancelled via [`Tx::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

/// Internal outcome of [`Rtf::run_top_level`]: either a deliberate
/// cancellation or a structured fault. The panicking entry points
/// (`atomic`) convert faults into panics; [`Rtf::run`] returns them.
enum RunStop {
    Cancelled,
    Fault(TxError),
}

/// Internal outcome of [`Rtf::root_commit`].
enum RootCommit {
    /// The top level committed (and, in ordered mode, at its ticket's
    /// turn).
    Committed,
    /// Commit-time validation failed: re-execute.
    Conflict,
    /// The ordered-lane turn wait hit the armed stall-abort threshold.
    Stalled {
        /// How long the commit waited for its turn, in milliseconds.
        waited_ms: u64,
    },
}

/// Configuration of an [`Rtf`] instance.
#[derive(Clone)]
pub struct RtfConfig {
    /// Worker threads executing transactional futures. With `0`, futures
    /// run lazily on whichever thread first waits for them (helping).
    pub workers: usize,
    /// Enable the §IV-E read-only future validation skip (ablation A2).
    pub ro_opt: bool,
    /// Top-level commit strategy (ablation A1).
    pub commit_strategy: CommitStrategy,
    /// Consecutive inter-tree aborts of one `atomic` call after which the
    /// re-execution runs in sequential fallback mode. The paper falls back
    /// on the first conflict; raise this to keep retrying in parallel mode.
    pub fallback_threshold: u32,
    /// Intra-transaction serialization discipline (ablation A4 compares
    /// the paper's strong ordering with unordered parallel nesting).
    pub semantics: TreeSemantics,
    /// Explicit observability layer attached to this runtime's event
    /// stream. Independent of the env-driven observer (`RTF_METRICS` /
    /// `RTF_CHROME_TRACE`), which attaches automatically.
    pub observer: Option<Arc<TxObs>>,
    /// Maximum failed top-level attempts before [`Rtf::run`] gives up with
    /// [`TxError::RetryExhausted`] (`None` = retry forever, the paper's
    /// behaviour and the default).
    pub max_retries: Option<u32>,
    /// Wall-clock budget per top-level transaction; exceeded ⇒
    /// [`TxError::RetryExhausted`] (`None` = unbounded, the default).
    pub retry_deadline: Option<Duration>,
    /// Stall-watchdog warn threshold override (else `RTF_STALL_WARN_MS`,
    /// else 200ms).
    pub stall_warn: Option<Duration>,
    /// Stall-watchdog abort threshold override (else `RTF_STALL_ABORT_MS`,
    /// else disabled): a wait stalled this long is torn down as
    /// [`TxError::StallAborted`].
    pub stall_abort: Option<Duration>,
    /// Ordered-execution lane: `Some(shards)` makes every top-level
    /// transaction draw a commit ticket from a dispenser with `shards`
    /// lanes and commit in strict per-lane ticket order (`Some(1)` = one
    /// global total order). `None` (the default) is the ordinary
    /// first-validated-first-committed race.
    pub ordered: Option<usize>,
    /// Additional event sinks composed into the runtime's sink tee (e.g. a
    /// commit-order recorder). Independent of `observer` and the env-driven
    /// sinks.
    pub extra_sinks: Vec<Arc<dyn EventSink>>,
    /// Live telemetry: `Some` runs a background sampler streaming snapshots
    /// of this runtime's observer for the lifetime of the runtime (stopped —
    /// with one final reconciling tick — before the on-drop export).
    pub live: Option<LiveConfig>,
}

impl Default for RtfConfig {
    fn default() -> Self {
        RtfConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            ro_opt: true,
            commit_strategy: CommitStrategy::LockFreeHelping,
            fallback_threshold: 1,
            semantics: TreeSemantics::StrongOrdering,
            observer: None,
            max_retries: None,
            retry_deadline: None,
            stall_warn: None,
            stall_abort: None,
            ordered: None,
            extra_sinks: Vec::new(),
            live: None,
        }
    }
}

// Manual impl: `extra_sinks` holds trait objects with no `Debug` bound;
// report only their count.
impl std::fmt::Debug for RtfConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtfConfig")
            .field("workers", &self.workers)
            .field("ro_opt", &self.ro_opt)
            .field("commit_strategy", &self.commit_strategy)
            .field("fallback_threshold", &self.fallback_threshold)
            .field("semantics", &self.semantics)
            .field("observer", &self.observer.is_some())
            .field("max_retries", &self.max_retries)
            .field("retry_deadline", &self.retry_deadline)
            .field("stall_warn", &self.stall_warn)
            .field("stall_abort", &self.stall_abort)
            .field("ordered", &self.ordered)
            .field("extra_sinks", &self.extra_sinks.len())
            .field("live", &self.live)
            .finish()
    }
}

/// Builder for [`Rtf`].
#[derive(Default, Clone, Debug)]
pub struct RtfBuilder {
    config: RtfConfig,
}

impl RtfBuilder {
    /// Sets the number of future-executing worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Enables/disables the read-only future validation skip (§IV-E).
    pub fn read_only_optimization(mut self, on: bool) -> Self {
        self.config.ro_opt = on;
        self
    }

    /// Chooses the top-level commit strategy.
    pub fn commit_strategy(mut self, s: CommitStrategy) -> Self {
        self.config.commit_strategy = s;
        self
    }

    /// Sets the inter-tree abort count that triggers sequential fallback.
    pub fn fallback_threshold(mut self, n: u32) -> Self {
        self.config.fallback_threshold = n.max(1);
        self
    }

    /// Chooses the intra-transaction serialization discipline (default:
    /// the paper's strong ordering).
    pub fn semantics(mut self, s: TreeSemantics) -> Self {
        self.config.semantics = s;
        self
    }

    /// Attaches an observability layer ([`TxObs`]): latency histograms,
    /// abort attribution and — when its config enables spans — the
    /// transaction-tree trace. The observer also aggregates across every
    /// runtime it is attached to.
    pub fn observer(mut self, obs: Arc<TxObs>) -> Self {
        self.config.observer = Some(obs);
        self
    }

    /// Bounds the retry loop: after `n` failed attempts, [`Rtf::run`]
    /// returns [`TxError::RetryExhausted`] instead of retrying forever.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.max_retries = Some(n);
        self
    }

    /// Bounds the retry loop by wall-clock time per top-level transaction.
    pub fn retry_deadline(mut self, d: Duration) -> Self {
        self.config.retry_deadline = Some(d);
        self
    }

    /// Stall-watchdog warn threshold: waits blocked this long emit
    /// `StallDetected` through the event stream (default 200ms, or
    /// `RTF_STALL_WARN_MS`).
    pub fn stall_warn(mut self, d: Duration) -> Self {
        self.config.stall_warn = Some(d);
        self
    }

    /// Arms the stall-watchdog abort: a wait blocked this long is torn down
    /// and surfaced as [`TxError::StallAborted`] (default off, or
    /// `RTF_STALL_ABORT_MS`).
    pub fn stall_abort(mut self, d: Duration) -> Self {
        self.config.stall_abort = Some(d);
        self
    }

    /// Enables the ordered-execution lane: every top-level transaction
    /// draws a commit ticket and commits in strict per-lane ticket order.
    /// `shards == 1` gives one global total commit order (the
    /// record/replay configuration); more shards trade order granularity
    /// for dispatch scalability.
    pub fn ordered(mut self, shards: usize) -> Self {
        self.config.ordered = Some(shards.max(1));
        self
    }

    /// Composes an additional [`EventSink`] into the runtime's event
    /// stream (e.g. `rtf_txobs::CommitLog` for commit-order recording).
    pub fn event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.config.extra_sinks.push(sink);
        self
    }

    /// Streams live metrics snapshots while the runtime runs: a background
    /// sampler ticks the configured sinks (JSONL stream, Prometheus text
    /// file, optional scrape endpoint) every `config.interval`, plus a final
    /// tick at teardown so the last streamed line reconciles exactly with
    /// the on-drop export. Attaches a default observer if none was
    /// configured. Harnesses that sweep several runtimes over one shared
    /// observer should instead run one [`LiveExporter`] themselves.
    pub fn live_metrics(mut self, config: LiveConfig) -> Self {
        self.config.live = Some(config);
        self
    }

    /// Builds the runtime (spawns the worker pool).
    pub fn build(self) -> Rtf {
        Rtf::with_config(self.config)
    }
}

/// The transactional-futures runtime (the paper's JTF system, in Rust).
///
/// Cloning is cheap and shares the instance.
///
/// ```
/// use rtf::{Rtf, VBox};
///
/// let tm = Rtf::builder().workers(2).build();
/// let x = VBox::new(1u64);
/// let y = VBox::new(2u64);
/// let sum = tm.atomic(|tx| {
///     let fx = tx.submit({
///         let x = x.clone();
///         move |tx| *tx.read(&x) * 10
///     });
///     let b = *tx.read(&y);
///     *tx.eval(&fx) + b
/// });
/// assert_eq!(sum, 12);
/// ```
#[derive(Clone)]
pub struct Rtf {
    inner: Arc<RtfInner>,
}

struct RtfInner {
    mvstm: MvStm,
    env: Arc<TxEnv>,
    config: RtfConfig,
    /// Observers attached to this runtime (explicit and/or env-driven);
    /// exports run when the runtime is dropped.
    observers: Vec<Arc<TxObs>>,
    /// Ticket dispenser of the ordered-execution lane (`Some` iff the
    /// runtime was built with [`RtfBuilder::ordered`]).
    dispenser: Option<Arc<TicketDispenser>>,
    /// Background live-metrics sampler ([`RtfBuilder::live_metrics`]).
    live: Option<LiveExporter>,
    _pool_runner: PoolRunner,
}

impl Drop for RtfInner {
    fn drop(&mut self) {
        // Stop the live sampler first: its stop() emits one final tick, and
        // running it before the exports below is what makes the last
        // streamed line reconcile exactly with the on-drop export.
        if let Some(mut live) = self.live.take() {
            live.stop();
        }
        // Export whatever the environment (or an explicit `ExportPaths`)
        // asked for. The env-driven observer is a process-wide singleton,
        // so each runtime teardown overwrites the files with the cumulative
        // totals — the last drop wins with the complete picture.
        for obs in &self.observers {
            obs.export_or_warn();
        }
    }
}

impl Rtf {
    /// Runtime with default configuration.
    pub fn new() -> Rtf {
        RtfBuilder::default().build()
    }

    /// Starts configuring a runtime.
    pub fn builder() -> RtfBuilder {
        RtfBuilder::default()
    }

    /// Runtime with an explicit configuration.
    pub fn with_config(config: RtfConfig) -> Rtf {
        install_quiet_poison_hook();
        // One sink for the whole runtime: statistics always, plus the
        // stderr trace stream when `RTF_TRACE` requests it, plus any
        // observability layer (explicit via the builder, or env-driven via
        // `RTF_METRICS` / `RTF_METRICS_TEXT` / `RTF_CHROME_TRACE`).
        let mut extras: Vec<Arc<dyn EventSink>> = Vec::new();
        let mut observers: Vec<Arc<TxObs>> = Vec::new();
        if TraceSink::env_enabled() {
            extras.push(Arc::new(TraceSink::from_env()));
        }
        if let Some(obs) = TxObs::global_from_env() {
            observers.push(obs);
        }
        if let Some(obs) = &config.observer {
            // Explicit observer; don't double-attach if it IS the global.
            if !observers.iter().any(|o| Arc::ptr_eq(o, obs)) {
                observers.push(Arc::clone(obs));
            }
        }
        if config.live.is_some() && observers.is_empty() {
            // Live metrics need something to sample.
            observers.push(TxObs::new(ObsConfig::default()));
        }
        extras.extend(observers.iter().map(TxObs::sink));
        extras.extend(config.extra_sinks.iter().cloned());
        let mvstm = MvStm::with_strategy_and_extras(config.commit_strategy, extras);
        let sink = Arc::clone(mvstm.sink());
        let pool_runner = Pool::start_with_sink(config.workers, Arc::clone(&sink));
        let stall = StallThresholds::resolve(config.stall_warn, config.stall_abort);
        let dispenser = config.ordered.map(|shards| Arc::new(TicketDispenser::new(shards)));
        let env = Arc::new(TxEnv { pool: pool_runner.pool(), sink, ro_opt: config.ro_opt, stall });
        // Structural depth gauges, sampled into every snapshot. The gauge
        // registry replaces by name, so a sweep of runtimes over one shared
        // observer always reports the newest instance.
        for obs in &observers {
            let pool = env.pool.clone();
            obs.register_gauge("pool_queue_depth", move || pool.pending() as u64);
            if let Some(d) = &dispenser {
                let d = Arc::clone(d);
                obs.register_gauge("ordered_lane_depth", move || {
                    (0..d.shards() as u32)
                        .map(|i| {
                            let lane = d.lane(i);
                            lane.issued().saturating_sub(lane.turn())
                        })
                        .sum()
                });
            }
        }
        let live = config.live.clone().and_then(|lc| {
            let obs = Arc::clone(observers.first().expect("live metrics attach an observer"));
            match LiveExporter::start(obs, lc) {
                Ok(exporter) => Some(exporter),
                Err(e) => {
                    eprintln!("rtf: live metrics exporter failed to start: {e}");
                    None
                }
            }
        });
        Rtf {
            inner: Arc::new(RtfInner {
                mvstm,
                env,
                config,
                observers,
                dispenser,
                live,
                _pool_runner: pool_runner,
            }),
        }
    }

    /// Runs `body` as a top-level transaction, retrying until it commits.
    ///
    /// Inside, [`Tx::submit`] / [`Tx::fork`] spawn transactional futures.
    /// `body` may execute several times (aborts, re-executions); keep
    /// non-transactional side effects idempotent.
    pub fn atomic<R>(&self, body: impl Fn(&mut Tx) -> R) -> R {
        match self.run_top_level(body, false, false, None) {
            Ok(r) => r,
            Err(RunStop::Cancelled) => panic!(
                "Tx::cancel inside Rtf::atomic — use Rtf::try_atomic for cancellable transactions"
            ),
            // Only reachable when the caller armed a retry budget or the
            // stall-abort watchdog on a panicking entry point; the payload
            // is the structured error (catchable, quiet-hook-suppressed).
            Err(RunStop::Fault(e)) => std::panic::panic_any(e),
        }
    }

    /// Like [`Rtf::atomic`], but returns the runtime's structured failures
    /// instead of panicking: [`Tx::cancel`] ⇒ [`TxError::Cancelled`], a
    /// panicked future ⇒ [`TxError::FuturePanicked`], an exhausted retry
    /// budget ⇒ [`TxError::RetryExhausted`], an armed stall watchdog ⇒
    /// [`TxError::StallAborted`]. No effects escape on `Err`.
    ///
    /// A panic on the *calling* thread (in the body itself, outside any
    /// future) still unwinds to the caller — that is the caller's own
    /// panic, not a runtime fault.
    pub fn run<R>(&self, body: impl Fn(&mut Tx) -> R) -> Result<R, TxError> {
        self.run_top_level(body, false, true, None).map_err(|stop| match stop {
            RunStop::Cancelled => TxError::Cancelled,
            RunStop::Fault(e) => e,
        })
    }

    /// Whether this runtime commits through the ordered-execution lane.
    pub fn is_ordered(&self) -> bool {
        self.inner.dispenser.is_some()
    }

    /// Draws a commit ticket *now*, before the transaction body exists —
    /// pinning the transaction's position in the predefined commit order to
    /// this call (submission order), independent of when worker threads get
    /// to run it. Pass the ticket to [`Rtf::run_ticketed`].
    ///
    /// # Panics
    ///
    /// If the runtime was not built with [`RtfBuilder::ordered`].
    pub fn ticket(&self) -> OrderedTicket {
        let dispenser = self
            .inner
            .dispenser
            .as_ref()
            .expect("Rtf::ticket requires ordered mode (RtfBuilder::ordered)");
        OrderedTicket::acquire(Arc::clone(dispenser), Arc::clone(&self.inner.env.sink))
    }

    /// Like [`Rtf::run`], but committing at the position of a ticket drawn
    /// earlier with [`Rtf::ticket`]. On error the ticket is abandoned and
    /// the lane skips over it.
    pub fn run_ticketed<R>(
        &self,
        ticket: OrderedTicket,
        body: impl Fn(&mut Tx) -> R,
    ) -> Result<R, TxError> {
        self.run_top_level(body, false, true, Some(ticket)).map_err(|stop| match stop {
            RunStop::Cancelled => TxError::Cancelled,
            RunStop::Fault(e) => e,
        })
    }

    /// Like [`Rtf::atomic`], but [`Tx::cancel`] aborts the transaction and
    /// returns `Err(Cancelled)` instead of committing (no effects escape).
    pub fn try_atomic<R>(&self, body: impl Fn(&mut Tx) -> R) -> Result<R, Cancelled> {
        match self.run_top_level(body, false, false, None) {
            Ok(r) => Ok(r),
            Err(RunStop::Cancelled) => Err(Cancelled),
            Err(RunStop::Fault(e)) => std::panic::panic_any(e),
        }
    }

    /// Runs `body` as a read-only top-level transaction: reads skip
    /// bookkeeping, validation is skipped (multi-version snapshots are
    /// always consistent), writes panic. Futures may still be submitted to
    /// parallelize long read-only work.
    pub fn atomic_ro<R>(&self, body: impl Fn(&mut Tx) -> R) -> R {
        match self.run_top_level(body, true, false, None) {
            Ok(r) => r,
            Err(RunStop::Cancelled) => panic!(
                "Tx::cancel inside Rtf::atomic_ro — use Rtf::try_atomic for cancellable transactions"
            ),
            Err(RunStop::Fault(e)) => std::panic::panic_any(e),
        }
    }

    /// Submits `body` as a transactional future outside any transaction
    /// (paper footnote 1: an empty enclosing top-level transaction). The
    /// returned handle is already committed.
    pub fn spawn_future<A, F>(&self, body: F) -> TxFuture<A>
    where
        A: TxData,
        F: Fn(&mut Tx) -> A + Send + Clone + 'static,
    {
        self.atomic(move |tx| {
            let f = tx.submit(body.clone());
            let _ = tx.eval(&f);
            f
        })
    }

    /// The shared retry loop behind every entry point. `structured`
    /// controls how a *user* panic inside a future surfaces: `true`
    /// ([`Rtf::run`]) converts it into [`TxError::FuturePanicked`]; `false`
    /// (`atomic` family) resumes the original payload on this thread.
    /// Runtime-originated faults (retry budget, stall abort, payload-less
    /// future deaths) are always returned as [`RunStop::Fault`].
    fn run_top_level<R>(
        &self,
        body: impl Fn(&mut Tx) -> R,
        ro_mode: bool,
        structured: bool,
        ticket: Option<OrderedTicket>,
    ) -> Result<R, RunStop> {
        let inner = &self.inner;
        let sink = &inner.env.sink;
        // Ordered mode: every top-level transaction holds a ticket for its
        // whole lifetime — drawn here unless the caller pinned one earlier
        // (`run_ticketed`), kept across retries (a re-execution commits at
        // the *same* position), and released exactly once: completed on
        // commit, abandoned (RAII) on every other exit path including
        // unwinds.
        let mut ticket = ticket.or_else(|| {
            inner
                .dispenser
                .as_ref()
                .map(|d| OrderedTicket::acquire(Arc::clone(d), Arc::clone(sink)))
        });
        let budget = RetryBudget {
            max_attempts: inner.config.max_retries,
            deadline: inner.config.retry_deadline.map(|d| Instant::now() + d),
        };
        let mut retry = RetryDriver::new().with_budget(budget);
        let mut consecutive_inter_tree = 0u32;
        loop {
            let fallback = consecutive_inter_tree >= inner.config.fallback_threshold;
            if fallback {
                sink.event(Event::FallbackRun);
            }
            // Register before snapshotting (GC watermark soundness; see
            // `rtf_mvstm::txn::TopTxn::new`).
            let _reg = inner.mvstm.registry().register(inner.mvstm.clock().now());
            let start = inner.mvstm.clock().now();
            let tree = TreeCtx::with_semantics(start, fallback, inner.config.semantics);
            // One TopLevel span per attempt: aborted attempts close with
            // ok=false, so the trace shows the retry structure.
            let span_start = if sink.spans_enabled() { Some(obs_now_ns()) } else { None };
            let top_span = |ok: bool| {
                if let Some(start_ns) = span_start {
                    sink.span(SpanRec {
                        kind: SpanKind::TopLevel,
                        tree: tree.tree_id.0,
                        node: tree.root.id.raw(),
                        parent: 0,
                        start_ns,
                        end_ns: obs_now_ns(),
                        ok,
                    });
                }
            };
            let mut tx = Tx::new_for_root(Arc::clone(&inner.env), Arc::clone(&tree), ro_mode);

            // One epoch pin per attempt: every version-list read and
            // write-back on this thread (body, helping, validation, root
            // commit) pins reentrantly — a thread-local depth bump instead
            // of the era-advertisement fence per read.
            let _pin = rtf_txengine::read_pin();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let r = body(&mut tx);
                // Commit the implicit continuation chain down to the root,
                // then stage the root's own reads for top-level validation.
                tx.commit_frames_down_to(1).map(|()| {
                    tx.merge_entry_frame_reads();
                    r
                })
            }));

            match outcome {
                Ok(Ok(r)) => {
                    // Strong ordering guarantees every future committed
                    // before the implicit chain did (waitTurn); unordered
                    // nesting must wait for stragglers explicitly.
                    if inner.config.semantics == TreeSemantics::ParallelNesting {
                        let pool = inner.env.pool.clone();
                        let mut watch = StallWatch::warn_only(
                            StallKind::Quiescence,
                            tree.tree_id.0,
                            tree.root.id.raw(),
                            Arc::clone(sink),
                            inner.env.stall,
                        );
                        let _wait = (tree.tasks_in_flight() > 0).then(|| {
                            WaitSiteGuard::enter(
                                sink.as_ref(),
                                StallKind::Quiescence,
                                tree.tree_id.0,
                                tree.tasks_in_flight() as u64,
                                0,
                            )
                        });
                        tree.wait_quiescent(|| {
                            let _ = watch.tick();
                            pool.help_one(None)
                        });
                    }
                    match self.root_commit(&tree, ticket.as_ref()) {
                        RootCommit::Committed => {
                            if let Some(t) = ticket.take() {
                                t.complete(tree.tree_id.0);
                            }
                            top_span(true);
                            return Ok(r);
                        }
                        // Top-level validation conflict (counted inside);
                        // the ticket (if any) is kept: the re-execution
                        // commits at the same position.
                        RootCommit::Conflict => top_span(false),
                        RootCommit::Stalled { waited_ms } => {
                            // The armed stall watchdog gave up on the turn
                            // wait; dropping `ticket` on return abandons the
                            // position so successors skip over it.
                            top_span(false);
                            return Err(RunStop::Fault(TxError::StallAborted {
                                kind: StallKind::TicketWait.name(),
                                waited_ms,
                            }));
                        }
                    }
                }
                Ok(Err(_sub_conflict)) => {
                    // An implicit continuation missed a write: without FCC
                    // the whole top-level transaction restarts (D1).
                    self.teardown(&tree);
                    sink.event(Event::ContinuationRestart);
                    top_span(false);
                }
                Err(payload) => {
                    top_span(false);
                    if payload.is::<CancelSignal>() {
                        // Deliberate rollback: tear the tree down, discard
                        // everything, and report the cancellation.
                        self.teardown(&tree);
                        return Err(RunStop::Cancelled);
                    }
                    if payload.is::<PoisonSignal>() {
                        self.teardown(&tree);
                        match tree.take_poison() {
                            Some(PoisonKind::InterTree) => {
                                sink.event(Event::InterTreeAbort);
                                consecutive_inter_tree += 1;
                            }
                            Some(PoisonKind::ContinuationRestart) => {
                                sink.event(Event::ContinuationRestart);
                            }
                            Some(PoisonKind::UserPanic(p)) => {
                                if p.is::<CancelSignal>() {
                                    // Tx::cancel called inside a future.
                                    return Err(RunStop::Cancelled);
                                }
                                if structured {
                                    return Err(RunStop::Fault(TxError::FuturePanicked {
                                        message: panic_message(&*p),
                                    }));
                                }
                                std::panic::resume_unwind(p);
                            }
                            Some(PoisonKind::FuturePanicked { message }) => {
                                // The payload died with the task (contained
                                // at the pool layer): only the structured
                                // error is left to surface.
                                return Err(RunStop::Fault(TxError::FuturePanicked { message }));
                            }
                            Some(PoisonKind::Stalled { kind, waited_ms }) => {
                                return Err(RunStop::Fault(TxError::StallAborted {
                                    kind,
                                    waited_ms,
                                }));
                            }
                            None => unreachable!("PoisonSignal without a latched reason"),
                        }
                    } else {
                        // User panic on the root thread: tear down the tree
                        // (futures may be in flight), then propagate.
                        tree.poison(PoisonKind::ContinuationRestart);
                        self.teardown(&tree);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            if let Err(e) = retry.try_backoff() {
                sink.event(Event::RetryExhausted);
                return Err(RunStop::Fault(TxError::RetryExhausted { attempts: e.attempts() }));
            }
        }
    }

    /// Whole-tree teardown: make sure every in-flight future task of the
    /// tree converged (they observe the poison latch), then remove the
    /// tree's tentative entries.
    fn teardown(&self, tree: &TreeCtx) {
        tree.poison(PoisonKind::ContinuationRestart); // ensure latched
        let pool = self.inner.env.pool.clone();
        // Quiescence must run to completion whatever happens (aborting the
        // teardown would leak the tree); the watchdog only reports.
        let mut watch = StallWatch::warn_only(
            StallKind::Quiescence,
            tree.tree_id.0,
            tree.root.id.raw(),
            Arc::clone(&self.inner.env.sink),
            self.inner.env.stall,
        );
        // Only publish a wait-graph edge when there genuinely is something
        // to wait for — teardown runs on every abort and usually finds the
        // tree already quiescent.
        let _wait = (tree.tasks_in_flight() > 0).then(|| {
            WaitSiteGuard::enter(
                self.inner.env.sink.as_ref(),
                StallKind::Quiescence,
                tree.tree_id.0,
                tree.tasks_in_flight() as u64,
                0,
            )
        });
        tree.wait_quiescent(|| {
            let _ = watch.tick();
            pool.help_one(None)
        });
        // The scrub equally must complete even with a fault injected
        // mid-teardown: a leaked tentative entry would wedge every later
        // writer of that box behind a dead tree.
        loop {
            let scrubbed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rtf_txfault::fail_point!("core.teardown.scrub");
                tree.scrub_tentative();
            }));
            if scrubbed.is_ok() {
                break;
            }
        }
    }

    /// Blocks until `ticket`'s turn (the ordered lane's cross-transaction
    /// waitTurn). While waiting the thread *helps* through the task pool —
    /// the predecessor may be blocked on futures this thread can run — and
    /// the stall watchdog bounds the wait when an abort threshold is armed.
    /// Returns `Err(waited_ms)` when the watchdog gave up.
    fn wait_ticket_turn(&self, tree: &TreeCtx, ticket: &OrderedTicket) -> Result<(), u64> {
        let seq = ticket.ticket().seq;
        let lane = ticket.lane();
        if lane.turn() >= seq {
            return Ok(());
        }
        let inner = &self.inner;
        let sink = &inner.env.sink;
        let pool = inner.env.pool.clone();
        let t0 = obs_now_ns();
        // Publish the blocked-on edge for the live wait-graph inspector:
        // "this thread waits for lane/seq" (dropped when the wait resolves).
        let _wait = WaitSiteGuard::enter(
            sink.as_ref(),
            StallKind::TicketWait,
            tree.tree_id.0,
            u64::from(ticket.ticket().lane),
            seq,
        );
        let mut watch = StallWatch::new(
            StallKind::TicketWait,
            tree.tree_id.0,
            tree.root.id.raw(),
            Arc::clone(sink),
            inner.env.stall,
        );
        let mut stalled = None;
        let wait = lane.wait_turn_counted(
            seq,
            || pool.help_one(None),
            || match watch.tick() {
                StallAction::Continue => true,
                StallAction::Abort { waited_ms } => {
                    stalled = Some(waited_ms);
                    false
                }
            },
        );
        sink.event(Event::TicketWaitNs(obs_now_ns().saturating_sub(t0)));
        if wait.spurious_wakes > 0 {
            // Flushed per wait, not per wakeup: spurious wakeups only exist
            // under contention, exactly when per-event sink traffic hurts.
            sink.event(Event::TicketSpuriousWakes(wait.spurious_wakes));
        }
        if wait.arrived {
            Ok(())
        } else {
            Err(stalled.unwrap_or(0))
        }
    }

    /// Top-level commit (§III-A + §IV): consolidate, validate, write back.
    /// In ordered mode (`ticket` present) the commit additionally waits for
    /// its ticket's turn first, so per-lane ticket order extends into chain
    /// version order.
    fn root_commit(&self, tree: &TreeCtx, ticket: Option<&OrderedTicket>) -> RootCommit {
        let inner = &self.inner;
        let sink = &inner.env.sink;
        let t0 = obs_now_ns();
        let commit_span = |ok: bool| {
            if sink.spans_enabled() {
                sink.span(SpanRec {
                    kind: SpanKind::TopCommit,
                    tree: tree.tree_id.0,
                    node: tree.root.id.raw(),
                    parent: tree.root.id.raw(),
                    start_ns: t0,
                    end_ns: obs_now_ns(),
                    ok,
                });
            }
        };

        // Consolidated write-set: the root's private writes, overridden by
        // the head (latest in serialization order) of each touched
        // tentative list. `WriteSet::insert` keeps the tentative entry's
        // own token, so the write retains one identity through write-back.
        let mut writes = WriteSet::new();
        for entry in tree.root_ws_drain() {
            writes.insert(entry);
        }
        for cell in tree.touched_cells() {
            let list = cell.tentative_lock();
            if let Some(e) = list
                .iter()
                .find(|e| e.tree == tree.tree_id && e.orec.status() != OrecStatus::Aborted)
            {
                debug_assert_eq!(
                    e.orec.owner(),
                    tree.root.id,
                    "all committed sub-transaction writes must be root-owned at top commit"
                );
                writes.insert(WriteEntry {
                    cell: Arc::clone(&cell),
                    value: e.value.clone(),
                    token: e.token,
                });
            }
        }

        if writes.is_empty() {
            // Read-only fast path (§IV-E). Ordered mode still waits for the
            // turn — the commit-order log must include read-only commits at
            // their ticket positions for replay to be well-defined — and
            // then re-validates the reads: the transaction publishes
            // nothing, but its *result* must be as of its ticket position
            // (the sequential spec), not its snapshot. A displaced read
            // aborts and re-executes at the same position.
            if let Some(t) = ticket {
                if let Err(waited_ms) = self.wait_ticket_turn(tree, t) {
                    tree.scrub_tentative();
                    commit_span(false);
                    return RootCommit::Stalled { waited_ms };
                }
                let inbox = std::mem::take(&mut *tree.root.inbox.lock());
                let mut reads = ReadSet::new();
                for (cell, token) in inbox.perm_reads {
                    reads.record(ReadRecord { cell, token, source: Source::Permanent, epoch: 0 });
                }
                if inner.mvstm.chain().validate_ro(&reads, sink.as_ref()).is_err() {
                    sink.event(Event::TopValidationAbort);
                    tree.scrub_tentative();
                    commit_span(false);
                    return RootCommit::Conflict;
                }
            }
            sink.event(Event::TopRoCommit);
            tree.scrub_tentative();
            commit_span(true);
            return RootCommit::Committed;
        }

        // Consolidated read-set: the root's own permanent reads were merged
        // into its inbox by the implicit-chain commit; sub-transactions
        // merged theirs on their commits. First read of a cell wins, which
        // `ReadSet::record` guarantees.
        let inbox = std::mem::take(&mut *tree.root.inbox.lock());
        let mut reads = ReadSet::new();
        for (cell, token) in inbox.perm_reads {
            reads.record(ReadRecord { cell, token, source: Source::Permanent, epoch: 0 });
        }

        let mut stalled: Option<u64> = None;
        let result = {
            let mut wait = || match ticket {
                Some(t) => match self.wait_ticket_turn(tree, t) {
                    Ok(()) => true,
                    Err(waited_ms) => {
                        stalled = Some(waited_ms);
                        false
                    }
                },
                None => true,
            };
            inner.mvstm.chain().try_commit_gated(
                ticket.map(|_| TurnGate { wait: &mut wait }),
                &reads,
                writes.into_writes(),
                inner.mvstm.clock(),
                inner.mvstm.registry(),
                sink.as_ref(),
            )
        };
        tree.scrub_tentative();
        let committed = result.is_ok();
        if committed {
            sink.event(Event::TopCommitNs(obs_now_ns().saturating_sub(t0)));
            sink.event(Event::TopCommit);
        } else if let Some(waited_ms) = stalled {
            // A stall-abandoned turn wait is not a validation conflict:
            // report it as the structured stall it is.
            commit_span(false);
            return RootCommit::Stalled { waited_ms };
        } else {
            sink.event(Event::TopValidationAbort);
        }
        commit_span(committed);
        if committed {
            RootCommit::Committed
        } else {
            RootCommit::Conflict
        }
    }

    /// Shared environment handle (pool, sink, stall thresholds) for the
    /// async front-end.
    pub(crate) fn env(&self) -> &Arc<TxEnv> {
        &self.inner.env
    }

    /// Event counters of this runtime.
    pub fn stats(&self) -> StatSnapshot {
        self.inner.mvstm.stats_snapshot()
    }

    /// Shared counter handle (benchmark harnesses diff snapshots).
    pub fn stats_arc(&self) -> Arc<TmStats> {
        Arc::clone(self.inner.mvstm.stats_arc())
    }

    /// The underlying multi-version STM (top-level-only transactions; used
    /// by baselines and tests).
    pub fn mvstm(&self) -> &MvStm {
        &self.inner.mvstm
    }

    /// Current configuration.
    pub fn config(&self) -> &RtfConfig {
        &self.inner.config
    }
}

impl Default for Rtf {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Rtf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rtf(workers={}, v{})", self.inner.config.workers, self.inner.mvstm.now())
    }
}
