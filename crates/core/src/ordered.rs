//! The ordered-execution lane's per-transaction commit ticket.
//!
//! In ordered mode ([`crate::RtfBuilder::ordered`]) every top-level
//! transaction holds an [`OrderedTicket`] for its lifetime: drawn from the
//! runtime's sharded [`TicketDispenser`] before the first attempt, carried
//! across retries (a validation conflict re-executes *at the same position*
//! in the predefined order), and resolved exactly once — either completed
//! at commit (emitting [`Event::TicketCommit`], the commit-order log entry)
//! or abandoned (panic, cancellation, retry exhaustion, stall abort), in
//! which case the lane skips over the hole so successors never wait on a
//! dead predecessor.
//!
//! The RAII shape is the point: *every* exit path of the retry loop —
//! including unwinds — retires the ticket, so a lost ticket can never wedge
//! the lane.

use std::sync::Arc;

use rtf_txbase::{Ticket, TicketDispenser, TicketLane};
use rtf_txengine::{Event, EventSink};

/// A held position in the runtime's predefined commit order.
///
/// Obtained implicitly by every top-level transaction of an ordered-mode
/// runtime, or explicitly via [`crate::Rtf::ticket`] to pin the order to
/// submission order (and passed to [`crate::Rtf::run_ticketed`]).
pub struct OrderedTicket {
    dispenser: Arc<TicketDispenser>,
    sink: Arc<dyn EventSink>,
    ticket: Ticket,
    done: bool,
}

impl OrderedTicket {
    /// Draws the next ticket and reports [`Event::TicketIssued`].
    pub(crate) fn acquire(
        dispenser: Arc<TicketDispenser>,
        sink: Arc<dyn EventSink>,
    ) -> OrderedTicket {
        let ticket = dispenser.acquire();
        sink.event(Event::TicketIssued);
        OrderedTicket { dispenser, sink, ticket, done: false }
    }

    /// The held `(lane, seq)` position.
    pub fn ticket(&self) -> Ticket {
        self.ticket
    }

    /// The lane this ticket commits through.
    pub(crate) fn lane(&self) -> &TicketLane {
        self.dispenser.lane(self.ticket.lane)
    }

    /// Consumes the ticket after a successful commit: emits
    /// [`Event::TicketCommit`] (the commit-order log entry) *while still
    /// holding the turn* — so log entries of one lane are strictly
    /// ascending — then passes the turn to the successor.
    pub(crate) fn complete(mut self, tree: u64) {
        self.sink.event(Event::TicketCommit { lane: self.ticket.lane, seq: self.ticket.seq, tree });
        self.done = true;
        self.dispenser.lane(self.ticket.lane).retire(self.ticket.seq);
    }
}

impl Drop for OrderedTicket {
    fn drop(&mut self) {
        if !self.done {
            // Abandoned before commit (abort path or unwind): record the
            // hole and let the lane skip it.
            self.sink
                .event(Event::TicketAbandoned { lane: self.ticket.lane, seq: self.ticket.seq });
            self.dispenser.lane(self.ticket.lane).retire(self.ticket.seq);
        }
    }
}

impl std::fmt::Debug for OrderedTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OrderedTicket({}/{})", self.ticket.lane, self.ticket.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_txbase::TmStats;
    use rtf_txengine::StatsSink;

    fn fixture() -> (Arc<TicketDispenser>, Arc<TmStats>, Arc<dyn EventSink>) {
        let stats = Arc::new(TmStats::default());
        let sink: Arc<dyn EventSink> = Arc::new(StatsSink::new(Arc::clone(&stats)));
        (Arc::new(TicketDispenser::new(1)), stats, sink)
    }

    #[test]
    fn complete_emits_commit_and_advances_lane() {
        let (d, stats, sink) = fixture();
        let t = OrderedTicket::acquire(Arc::clone(&d), Arc::clone(&sink));
        assert_eq!((t.ticket().lane, t.ticket().seq), (0, 0));
        t.complete(42);
        let s = stats.snapshot();
        assert_eq!(s.tickets_issued, 1);
        assert_eq!(s.ordered_commits, 1);
        assert_eq!(s.tickets_abandoned, 0);
        assert_eq!(d.lane(0).turn(), 1);
    }

    #[test]
    fn drop_abandons_and_unblocks_successor() {
        let (d, stats, sink) = fixture();
        let first = OrderedTicket::acquire(Arc::clone(&d), Arc::clone(&sink));
        let second = OrderedTicket::acquire(Arc::clone(&d), Arc::clone(&sink));
        drop(first);
        assert_eq!(d.lane(0).turn(), 1, "abandonment must pass the turn");
        second.complete(7);
        assert_eq!(d.lane(0).turn(), 2);
        let s = stats.snapshot();
        assert_eq!(s.tickets_issued, 2);
        assert_eq!(s.tickets_abandoned, 1);
        assert_eq!(s.ordered_commits, 1);
    }
}
