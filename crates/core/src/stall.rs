//! Starvation watchdog for the runtime's blocking waits.
//!
//! Every wait in the tree machinery is *supposed* to be bounded by protocol
//! progress: `waitTurn` waits for a predecessor's commit, quiescence waits
//! for in-flight tasks, `eval` waits for a future's resolution. A lost
//! wake-up, a stuck helper, or a fault-injected hang turns any of them into
//! a silent stall. The [`StallWatch`] instruments each wait loop:
//!
//! 1. the loop already escalates on its own (spin → yield/help → short
//!    park);
//! 2. past the *warn* threshold the watch emits
//!    [`Event::StallDetected`] with the node path coordinates and the time
//!    waited, re-emitting at doubling intervals so a persistent stall keeps
//!    showing up in the metrics;
//! 3. past the optional *abort* threshold it reports
//!    [`StallAction::Abort`]; the call site converts that into a structured
//!    teardown ([`crate::TxError::StallAborted`]) instead of parking
//!    forever.
//!
//! Thresholds resolve from the builder
//! ([`crate::RtfBuilder::stall_warn`] / [`crate::RtfBuilder::stall_abort`])
//! or the `RTF_STALL_WARN_MS` / `RTF_STALL_ABORT_MS` environment variables;
//! aborting is off by default, so the watchdog is observe-only unless
//! explicitly armed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rtf_txengine::{Event, EventSink, StallKind};

/// Default warn threshold when neither the builder nor the environment sets
/// one: long enough to never fire on a healthy commit, short enough to
/// catch a stall while the process is still observable.
const DEFAULT_WARN: Duration = Duration::from_millis(200);

/// Resolved watchdog thresholds of one runtime.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StallThresholds {
    /// Emit [`Event::StallDetected`] after this long.
    pub warn: Duration,
    /// Convert the wait into a structured abort after this long
    /// (`None` = never abort, the default).
    pub abort: Option<Duration>,
}

impl StallThresholds {
    /// Builder overrides win; the environment fills the gaps.
    pub fn resolve(warn: Option<Duration>, abort: Option<Duration>) -> StallThresholds {
        let env_ms =
            |name: &str| std::env::var(name).ok().and_then(|v| v.trim().parse::<u64>().ok());
        StallThresholds {
            warn: warn
                .or_else(|| env_ms("RTF_STALL_WARN_MS").map(Duration::from_millis))
                .unwrap_or(DEFAULT_WARN),
            abort: abort.or_else(|| env_ms("RTF_STALL_ABORT_MS").map(Duration::from_millis)),
        }
    }
}

/// What the wait loop should do after a [`StallWatch::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallAction {
    /// Keep waiting.
    Continue,
    /// The abort threshold passed: tear the wait down.
    Abort {
        /// How long the waiter had been blocked, in milliseconds.
        waited_ms: u64,
    },
}

/// Watchdog attached to one blocking wait (one `waitTurn`, one quiescence
/// wait, one `eval`). Cheap to construct; `tick` is called once per wait
/// loop round (i.e. at most a few thousand times per second), never on the
/// fast path.
pub(crate) struct StallWatch {
    kind: StallKind,
    tree: u64,
    node: u64,
    sink: Arc<dyn EventSink>,
    start: Instant,
    next_warn: Duration,
    abort_at: Option<Duration>,
}

impl StallWatch {
    /// Watch with the runtime's thresholds (warn + optional abort).
    pub fn new(
        kind: StallKind,
        tree: u64,
        node: u64,
        sink: Arc<dyn EventSink>,
        thresholds: StallThresholds,
    ) -> StallWatch {
        StallWatch {
            kind,
            tree,
            node,
            sink,
            start: Instant::now(),
            next_warn: thresholds.warn,
            abort_at: thresholds.abort,
        }
    }

    /// Watch that only ever warns — for waits that *must* run to completion
    /// regardless of how long they take (teardown quiescence: aborting the
    /// abort path would leak the tree's tentative entries).
    pub fn warn_only(
        kind: StallKind,
        tree: u64,
        node: u64,
        sink: Arc<dyn EventSink>,
        thresholds: StallThresholds,
    ) -> StallWatch {
        StallWatch::new(kind, tree, node, sink, StallThresholds { abort: None, ..thresholds })
    }

    /// One watchdog round: emits [`Event::StallDetected`] past the warn
    /// threshold (re-armed at doubling intervals) and reports whether the
    /// abort threshold passed.
    pub fn tick(&mut self) -> StallAction {
        let elapsed = self.start.elapsed();
        if elapsed >= self.next_warn {
            self.sink.event(Event::StallDetected {
                kind: self.kind,
                tree: self.tree,
                node: self.node,
                waited_ns: elapsed.as_nanos() as u64,
            });
            // Re-arm at twice the time already waited (not twice the
            // threshold): a tick arriving late must not fire again at once.
            self.next_warn = elapsed.saturating_mul(2).max(Duration::from_millis(1));
        }
        if let Some(abort_at) = self.abort_at {
            if elapsed >= abort_at {
                self.sink.event(Event::StallAbort);
                return StallAction::Abort { waited_ms: elapsed.as_millis() as u64 };
            }
        }
        StallAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_txbase::TmStats;
    use rtf_txengine::StatsSink;

    fn sink() -> (Arc<TmStats>, Arc<dyn EventSink>) {
        let stats = Arc::new(TmStats::default());
        (Arc::clone(&stats), Arc::new(StatsSink::new(stats)))
    }

    #[test]
    fn warns_once_past_threshold_then_rearms_doubled() {
        let (stats, sink) = sink();
        let th = StallThresholds { warn: Duration::from_millis(1), abort: None };
        let mut w = StallWatch::new(StallKind::WaitTurn, 1, 2, sink, th);
        assert_eq!(w.tick(), StallAction::Continue, "below threshold: no event");
        assert_eq!(stats.snapshot().stalls_detected, 0);
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(w.tick(), StallAction::Continue);
        assert_eq!(stats.snapshot().stalls_detected, 1);
        // Re-armed at 2x: an immediate second tick stays quiet.
        assert_eq!(w.tick(), StallAction::Continue);
        assert_eq!(stats.snapshot().stalls_detected, 1);
    }

    #[test]
    fn abort_threshold_reports_abort_and_counts() {
        let (stats, sink) = sink();
        let th = StallThresholds {
            warn: Duration::from_millis(1),
            abort: Some(Duration::from_millis(2)),
        };
        let mut w = StallWatch::new(StallKind::Quiescence, 1, 2, sink, th);
        std::thread::sleep(Duration::from_millis(4));
        match w.tick() {
            StallAction::Abort { waited_ms } => assert!(waited_ms >= 2),
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(stats.snapshot().stall_aborts, 1);
        assert_eq!(stats.snapshot().stalls_detected, 1);
    }

    #[test]
    fn warn_only_never_aborts() {
        let (_, sink) = sink();
        let th = StallThresholds {
            warn: Duration::from_millis(1),
            abort: Some(Duration::from_millis(1)),
        };
        let mut w = StallWatch::warn_only(StallKind::Quiescence, 1, 2, sink, th);
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(w.tick(), StallAction::Continue);
    }

    #[test]
    fn thresholds_resolve_builder_over_env_over_default() {
        let r = StallThresholds::resolve(Some(Duration::from_millis(7)), None);
        assert_eq!(r.warn, Duration::from_millis(7));
        let r = StallThresholds::resolve(None, Some(Duration::from_millis(9)));
        assert_eq!(r.warn, DEFAULT_WARN);
        assert_eq!(r.abort, Some(Duration::from_millis(9)));
    }
}
