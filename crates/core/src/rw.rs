//! Sub-transaction visibility policies — Algorithms 1, 2 and the validation
//! half of Algorithm 4 of the paper, expressed over the shared engine.
//!
//! The actual read-resolution walk and validation loop live in
//! `rtf-txengine` ([`resolve_read`] / [`rtf_txengine::validate_reads`]);
//! this module contributes only the two sub-transaction [`Visibility`]
//! policies plus the tentative-list *write* path (Alg 1), which is specific
//! to transaction trees.
//!
//! # Write (Alg 1)
//! A sub-transaction writing a box appends a tentative version to the box's
//! tentative list, inserted at its serialization-order position. The
//! occupied list acts as a tree-wide lock: if the list holds live entries of
//! a *different* tree, the write reports an inter-tree conflict and the
//! caller tears its tree down (the paper's `ownedByAnotherTree` fallback,
//! DESIGN.md D3). Entries of aborted executions are scrubbed in passing.
//!
//! # Read (Alg 2) — [`SubRead`]
//! A sub-transaction read walks the tentative list most-recent-first and
//! returns the first *visible* entry; failing that it consults the
//! top-level private write-set (Alg 2 lines 21–22) and finally the permanent
//! versions at the tree snapshot. Visibility of a tentative entry with
//! ownership record `(owner o, txTreeVer v)` for reader `T` (Fig 4):
//!
//! * `o == T` — `T`'s own write, or a write adopted from a committed child;
//! * `o` is an ancestor `A` of `T` with `T.ancVer[A] >= v` — the write was
//!   propagated to `A` before `T` started (`v = 0` covers `A`'s own live
//!   writes, which necessarily precede `T`'s spawn).
//!
//! # Validation — [`SubValidation`]
//! At commit (after `waitTurn`, so every predecessor has committed and
//! propagated), each recorded read is *re-resolved* against the final
//! predecessor state: the first non-aborted entry whose order key precedes
//! the read position and whose owner is the reader or one of its ancestors.
//! A token mismatch means the read would return a different value in the
//! serialization order — the sub-transaction missed a write and must
//! re-execute.

use std::sync::Arc;

use rtf_txbase::{
    new_write_token, NodeId, OrderKey, Orec, OrecStatus, TreeId, Version, WriteToken,
};
use rtf_txengine::{
    resolve_read, tentative_insert, CellId, ConflictSite, ReadPath, ReadRecord, Source,
    TentativeEntry, VBoxCell, Val, Visibility,
};

use crate::node::Node;
use crate::tree::{TreeCtx, TreeSemantics};

/// Error: the tentative list is owned by another active transaction tree.
/// Carries the owning tree for abort attribution (hotspot reports name the
/// last tree that displaced a writer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterTreeConflict {
    /// The tree holding live tentative entries on the contested box.
    pub writer_tree: TreeId,
}

// Retries spent in `orec_snapshot` on this thread since the last flush.
// Each `Tx` drains the counter when it drops and reports it as one
// `Event::OrecSnapshotRetries` batch — a per-retry shared counter would
// serialize the lock-free read path it measures.
thread_local! {
    static OREC_SNAPSHOT_RETRIES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Drains this thread's accumulated snapshot-retry count.
pub(crate) fn take_orec_snapshot_retries() -> u64 {
    OREC_SNAPSHOT_RETRIES.with(|c| c.replace(0))
}

/// Consistent snapshot of an orec's `(owner, tx_tree_ver, status)`.
///
/// Propagation stores `tx_tree_ver` before `owner`; re-reading `owner`
/// afterwards detects a propagation racing in between (ownership only ever
/// moves to fresh node ids, so an unchanged owner pins the pair).
///
/// The retry loop is bounded in *behaviour*, not iterations: a conflicting
/// propagation is a handful of stores, so a retry storm means the writer
/// thread was descheduled mid-propagation — after a short pure-spin burst
/// the loop escalates to `yield_now` to hand it the CPU instead of burning
/// it. Retries are counted (see [`take_orec_snapshot_retries`]) so a
/// pathological site shows up in the metrics rather than as mystery CPU.
fn orec_snapshot(orec: &Orec) -> (NodeId, u64, OrecStatus) {
    const SPIN_LIMIT: u32 = 64;
    let mut retries: u32 = 0;
    loop {
        let o1 = orec.owner();
        let ver = orec.tx_tree_ver();
        let status = orec.status();
        if orec.owner() == o1 {
            if retries > 0 {
                OREC_SNAPSHOT_RETRIES.with(|c| c.set(c.get() + u64::from(retries)));
            }
            return (o1, ver, status);
        }
        retries = retries.saturating_add(1);
        if retries < SPIN_LIMIT {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Read-time visibility of a sub-transaction (module docs; Alg 2). The
/// tentative rule is the paper's Fig 4; the local buffer is the top-level
/// private write-set (Alg 2 lines 21–22) and the permanent fallback is
/// bounded by the tree snapshot.
pub struct SubRead<'a> {
    tree: &'a TreeCtx,
    node: &'a Node,
}

impl<'a> SubRead<'a> {
    /// The read policy of `node` within `tree`.
    pub fn new(tree: &'a TreeCtx, node: &'a Node) -> Self {
        SubRead { tree, node }
    }
}

impl Visibility for SubRead<'_> {
    fn tentative(&self, entry: &TentativeEntry) -> Option<Source> {
        if entry.tree != self.tree.tree_id {
            return None;
        }
        let (owner, ver, status) = orec_snapshot(&entry.orec);
        if status == OrecStatus::Aborted {
            return None;
        }
        if owner == self.node.id {
            if Arc::ptr_eq(&entry.orec, &self.node.orec) {
                return Some(Source::OwnWrite);
            }
            return Some(Source::Tentative); // adopted from a committed child
        }
        match self.node.anc_ver.get(&owner) {
            Some(&witnessed) if witnessed >= ver => Some(Source::Tentative),
            _ => None,
        }
    }

    fn local(&self, id: CellId) -> Option<(Val, WriteToken)> {
        self.tree.root_ws_get(id)
    }

    fn snapshot(&self) -> Version {
        self.tree.start_version
    }

    fn tentative_tree(&self) -> Option<TreeId> {
        // The tentative rule filters by `entry.tree` first: entries of other
        // trees are never admitted, so the cell's owner tag can route this
        // reader around the mutex when only foreign entries are present.
        Some(self.tree.tree_id)
    }
}

/// Validation-time visibility (Alg 4 line 3): every predecessor of the
/// validating node has committed and propagated, so a predecessor write is
/// recognized by its owner being the node itself or any ancestor; `anc_ver`
/// *values* are deliberately ignored — that is exactly how a missed write is
/// caught. Under strong ordering, entries at or after the read's own
/// serialization position (`read_pos`) are skipped: they are the reader's
/// own later writes or its children's, all within its subtree.
pub struct SubValidation<'a> {
    tree: &'a TreeCtx,
    node: &'a Node,
    read_pos: Option<OrderKey>,
}

impl<'a> SubValidation<'a> {
    /// The validation policy for one recorded read of `node`. Strong
    /// ordering re-resolves *at the read's serialization position*;
    /// unordered nesting serializes at commit time, so every committed
    /// predecessor write counts regardless of position.
    pub fn for_read(tree: &'a TreeCtx, node: &'a Node, read: &ReadRecord) -> Self {
        let read_pos = match tree.semantics {
            TreeSemantics::StrongOrdering => Some(node.path.write_key(read.epoch)),
            TreeSemantics::ParallelNesting => None,
        };
        SubValidation { tree, node, read_pos }
    }
}

impl Visibility for SubValidation<'_> {
    fn tentative(&self, entry: &TentativeEntry) -> Option<Source> {
        if entry.tree != self.tree.tree_id {
            return None;
        }
        if Arc::ptr_eq(&entry.orec, &self.node.orec) {
            return None; // the validating node's own (program-order later) write
        }
        if let Some(read_pos) = &self.read_pos {
            if entry.key >= *read_pos {
                return None; // serialized after the read
            }
        }
        let (owner, _ver, status) = orec_snapshot(&entry.orec);
        if status == OrecStatus::Aborted {
            return None;
        }
        if owner == self.node.id || self.node.anc_ver.contains_key(&owner) {
            Some(Source::Tentative)
        } else {
            None
        }
    }

    fn local(&self, id: CellId) -> Option<(Val, WriteToken)> {
        self.tree.root_ws_get(id)
    }

    fn snapshot(&self) -> Version {
        self.tree.start_version
    }

    fn tentative_tree(&self) -> Option<TreeId> {
        // Same tree filter as `SubRead` (see there).
        Some(self.tree.tree_id)
    }
}

/// Transactional read by a sub-transaction (Alg 2). Returns the value and
/// the read-set record.
pub fn sub_read(tree: &TreeCtx, node: &Node, cell: &Arc<VBoxCell>) -> (Val, ReadRecord) {
    let (value, record, _) = sub_read_traced(tree, node, cell);
    (value, record)
}

/// [`sub_read`], also reporting which permanent-list path served the read
/// (accumulated into the `read_fast`/`read_slow` stats by the caller).
pub fn sub_read_traced(
    tree: &TreeCtx,
    node: &Node,
    cell: &Arc<VBoxCell>,
) -> (Val, ReadRecord, ReadPath) {
    let epoch = node.fork_count.load(std::sync::atomic::Ordering::Relaxed);
    let r = resolve_read(&SubRead::new(tree, node), cell);
    (
        r.value,
        ReadRecord { cell: Arc::clone(cell), token: r.token, source: r.source, epoch },
        r.path,
    )
}

/// Transactional write by a sub-transaction (Alg 1). On success the new
/// tentative version is in place; `Err` reports an inter-tree conflict
/// (`ownedByAnotherTree`).
pub fn sub_write(
    tree: &TreeCtx,
    node: &Node,
    cell: &Arc<VBoxCell>,
    value: Val,
) -> Result<WriteToken, InterTreeConflict> {
    let key = match tree.semantics {
        TreeSemantics::StrongOrdering => {
            let epoch = node.fork_count.load(std::sync::atomic::Ordering::Relaxed);
            node.path.write_key(epoch)
        }
        // Unordered nesting: serialization position = commit/write order,
        // approximated by a tree-global write sequence.
        TreeSemantics::ParallelNesting => OrderKey::root().write_key(tree.next_write_seq()),
    };
    let mut list = cell.tentative_lock();
    // Inter-tree check (Alg 1 lines 10–23): live entries of another tree
    // mean that tree holds the write lock on this box.
    let mut foreign_live: Option<TreeId> = None;
    list.retain(|e| {
        let aborted = e.orec.status() == OrecStatus::Aborted;
        if e.tree != tree.tree_id && !aborted {
            foreign_live = Some(e.tree);
        }
        !aborted // scrub aborted leftovers of any tree in passing
    });
    if let Some(writer_tree) = foreign_live {
        return Err(InterTreeConflict { writer_tree });
    }
    let token = new_write_token();
    tentative_insert(
        &mut list,
        TentativeEntry { key, token, value, orec: Arc::clone(&node.orec), tree: tree.tree_id },
    );
    drop(list);
    tree.touch(cell);
    Ok(token)
}

/// Validates a sub-transaction's read-set (Alg 4 line 3) through the
/// engine's single validation loop. `true` = commit may proceed; `false` =
/// the sub-transaction missed a preceding write and must re-execute.
pub fn validate_reads<'a, I>(tree: &TreeCtx, node: &Node, reads: I) -> bool
where
    I: IntoIterator<Item = &'a ReadRecord>,
{
    rtf_txengine::validate_reads(reads, |r| SubValidation::for_read(tree, node, r))
}

/// [`validate_reads`], attributing a failure: the [`ConflictSite`] names
/// the first stale cell and the tree owning the displacing write (the own
/// tree, for intra-tree missed writes; another, under unordered nesting).
pub fn validate_reads_detailed<'a, I>(
    tree: &TreeCtx,
    node: &Node,
    reads: I,
) -> Result<(), ConflictSite>
where
    I: IntoIterator<Item = &'a ReadRecord>,
{
    rtf_txengine::validate_reads_detailed(reads, |r| SubValidation::for_read(tree, node, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use rtf_txengine::{downcast, erase, VBox};

    fn tree() -> Arc<TreeCtx> {
        TreeCtx::new(0, false)
    }

    #[test]
    fn read_falls_back_to_permanent() {
        let t = tree();
        let b = VBox::new(5u32);
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        let (v, entry) = sub_read(&t, &f, b.cell());
        assert_eq!(*downcast::<u32>(v), 5);
        assert_eq!(entry.source, Source::Permanent);
    }

    #[test]
    fn read_sees_root_ws() {
        let t = tree();
        let b = VBox::new(5u32);
        t.root_ws_put(b.cell(), erase(6u32));
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        let (v, entry) = sub_read(&t, &f, b.cell());
        assert_eq!(*downcast::<u32>(v), 6);
        assert_eq!(entry.source, Source::Local);
    }

    #[test]
    fn own_write_read_back() {
        let t = tree();
        let b = VBox::new(0u32);
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        sub_write(&t, &f, b.cell(), erase(7u32)).unwrap();
        let (v, entry) = sub_read(&t, &f, b.cell());
        assert_eq!(*downcast::<u32>(v), 7);
        assert_eq!(entry.source, Source::OwnWrite);
        // Overwrite in place: list keeps a single entry.
        sub_write(&t, &f, b.cell(), erase(8u32)).unwrap();
        assert_eq!(b.cell().tentative_lock().len(), 1);
        let (v, _) = sub_read(&t, &f, b.cell());
        assert_eq!(*downcast::<u32>(v), 8);
    }

    #[test]
    fn sibling_writes_invisible_until_committed_and_witnessed() {
        let t = tree();
        let b = VBox::new(0u32);
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        // Continuation starts *before* the future commits: ancVer[root]=0.
        let c = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });
        sub_write(&t, &f, b.cell(), erase(9u32)).unwrap();
        let (v, entry) = sub_read(&t, &c, b.cell());
        assert_eq!(*downcast::<u32>(v), 0, "uncommitted future write must be invisible");
        assert_eq!(entry.source, Source::Permanent);

        // The future commits and propagates to the root (ver = 1).
        f.orec.propagate_to(t.root.id, 1);
        t.root.bump_nclock();

        // c started before the commit: still invisible (Fig 4's TC6 case).
        let (v, _) = sub_read(&t, &c, b.cell());
        assert_eq!(*downcast::<u32>(v), 0);

        // A continuation attempt started *after* the commit sees it (TC4).
        let c2 = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });
        let (v, entry) = sub_read(&t, &c2, b.cell());
        assert_eq!(*downcast::<u32>(v), 9);
        assert_eq!(entry.source, Source::Tentative);
    }

    #[test]
    fn inter_tree_write_conflict_detected() {
        let t1 = tree();
        let t2 = tree();
        let b = VBox::new(0u32);
        let f1 = Node::new_child(&t1.root, NodeKind::Future { fork_idx: 0 });
        let f2 = Node::new_child(&t2.root, NodeKind::Future { fork_idx: 0 });
        sub_write(&t1, &f1, b.cell(), erase(1u32)).unwrap();
        assert_eq!(
            sub_write(&t2, &f2, b.cell(), erase(2u32)),
            Err(InterTreeConflict { writer_tree: t1.tree_id }),
            "the conflict names the owning tree"
        );
        // After t1 aborts, t2 may proceed (aborted entries are scrubbed).
        f1.orec.mark_aborted();
        sub_write(&t2, &f2, b.cell(), erase(2u32)).unwrap();
        let list = b.cell().tentative_lock();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].tree, t2.tree_id);
    }

    #[test]
    fn other_trees_tentative_writes_invisible_to_readers() {
        let t1 = tree();
        let t2 = tree();
        let b = VBox::new(0u32);
        let f1 = Node::new_child(&t1.root, NodeKind::Future { fork_idx: 0 });
        sub_write(&t1, &f1, b.cell(), erase(1u32)).unwrap();
        let f2 = Node::new_child(&t2.root, NodeKind::Future { fork_idx: 0 });
        let (v, entry) = sub_read(&t2, &f2, b.cell());
        assert_eq!(*downcast::<u32>(v), 0);
        assert_eq!(entry.source, Source::Permanent);
    }

    #[test]
    fn validation_catches_missed_future_write() {
        // The continuation reads x from the snapshot while its future
        // concurrently writes x; once the future commits, the continuation's
        // validation must fail (the paper's "misses the write" case).
        let t = tree();
        let b = VBox::new(0u32);
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        let c = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });
        let (_, read) = sub_read(&t, &c, b.cell());
        assert!(validate_reads(&t, &c, &[read]), "nothing committed yet");

        let (_, read) = sub_read(&t, &c, b.cell());
        sub_write(&t, &f, b.cell(), erase(1u32)).unwrap();
        f.orec.propagate_to(t.root.id, 1);
        t.root.bump_nclock();
        assert!(!validate_reads(&t, &c, &[read]), "missed write must fail validation");
    }

    #[test]
    fn validation_ignores_writes_serialized_after_the_read() {
        // A node reads x at epoch 0, forks, and the (committed) future child
        // writes x. The child's write serializes *after* the read: the read
        // stays valid.
        let t = tree();
        let b = VBox::new(0u32);
        let c = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });
        let (_, read) = sub_read(&t, &c, b.cell());
        // Fork: child future of c writes x and commits into c.
        let child = Node::new_child(&c, NodeKind::Future { fork_idx: 0 });
        sub_write(&t, &child, b.cell(), erase(5u32)).unwrap();
        child.orec.propagate_to(c.id, 1);
        c.bump_nclock();
        c.fork_count.store(1, std::sync::atomic::Ordering::Relaxed);
        assert!(validate_reads(&t, &c, &[read]));
        // But a read at epoch 1 (after the join) must see the child's value.
        let (v, entry) = sub_read(&t, &c, b.cell());
        assert_eq!(*downcast::<u32>(v), 5);
        assert_eq!(entry.source, Source::Tentative);
        assert!(validate_reads(&t, &c, &[entry]));
    }

    #[test]
    fn own_write_reads_exempt_from_validation() {
        let t = tree();
        let b = VBox::new(0u32);
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        sub_write(&t, &f, b.cell(), erase(1u32)).unwrap();
        let (_, read) = sub_read(&t, &f, b.cell());
        assert_eq!(read.source, Source::OwnWrite);
        // Overwriting one's own value must not invalidate the earlier read.
        sub_write(&t, &f, b.cell(), erase(2u32)).unwrap();
        assert!(validate_reads(&t, &f, &[read]));
    }

    #[test]
    fn nesting_mode_write_keys_follow_commit_order() {
        use crate::tree::TreeSemantics;
        let t = TreeCtx::with_semantics(0, false, TreeSemantics::ParallelNesting);
        let b = VBox::new(0u32);
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        let c = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });
        // The CONTINUATION writes first: in nesting mode its key must
        // precede the future's later write, regardless of tree position.
        sub_write(&t, &c, b.cell(), erase(1u32)).unwrap();
        sub_write(&t, &f, b.cell(), erase(2u32)).unwrap();
        let list = b.cell().tentative_lock();
        assert_eq!(list.len(), 2);
        // Descending order: the future's (later) write is at the head.
        assert!(Arc::ptr_eq(&list[0].orec, &f.orec));
        assert!(Arc::ptr_eq(&list[1].orec, &c.orec));
    }

    #[test]
    fn nesting_mode_validation_sees_any_committed_predecessor() {
        use crate::tree::TreeSemantics;
        let t = TreeCtx::with_semantics(0, false, TreeSemantics::ParallelNesting);
        let b = VBox::new(0u32);
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        let c = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });
        // The future reads before the continuation's write exists.
        let (_, read) = sub_read(&t, &f, b.cell());
        // The continuation writes and commits (nesting: no waitTurn).
        sub_write(&t, &c, b.cell(), erase(5u32)).unwrap();
        c.orec.propagate_to(t.root.id, 1);
        t.root.bump_nclock();
        // Strong ordering would exempt this read (the write is serialized
        // after the future's position); nesting serializes in commit order,
        // so the future's read is now stale.
        assert!(!validate_reads(&t, &f, &[read]));
    }

    #[test]
    fn own_later_write_never_invalidates_in_nesting_mode() {
        use crate::tree::TreeSemantics;
        let t = TreeCtx::with_semantics(0, false, TreeSemantics::ParallelNesting);
        let b = VBox::new(0u32);
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        let (_, read) = sub_read(&t, &f, b.cell());
        sub_write(&t, &f, b.cell(), erase(9u32)).unwrap();
        assert!(validate_reads(&t, &f, &[read]), "own program-order-later write is exempt");
    }

    #[test]
    fn aborted_attempt_writes_invisible() {
        let t = tree();
        let b = VBox::new(0u32);
        let f1 = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        sub_write(&t, &f1, b.cell(), erase(1u32)).unwrap();
        f1.orec.mark_aborted();
        // Fresh attempt at the same position.
        let f2 = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        let (v, entry) = sub_read(&t, &f2, b.cell());
        assert_eq!(*downcast::<u32>(v), 0);
        assert_eq!(entry.source, Source::Permanent);
    }

    /// Fig 4 visibility, table-driven: each case builds one tentative entry
    /// and asserts what `SubRead::tentative` — the pure policy function —
    /// answers for a given reader. Covers every row of the paper's table
    /// plus the negative cases.
    #[test]
    fn fig4_visibility_table() {
        use rtf_txbase::new_tree_id;

        let t = tree();
        let reader = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });

        // A tentative entry owned by `orec`, tagged for tree `tree_id`.
        let entry = |orec: &Arc<Orec>, tree_id| TentativeEntry {
            key: OrderKey::root().write_key(0),
            token: new_write_token(),
            value: erase(0u32),
            orec: Arc::clone(orec),
            tree: tree_id,
        };

        let policy = SubRead::new(&t, &reader);

        // 1. Own write: same orec as the reader.
        assert_eq!(policy.tentative(&entry(&reader.orec, t.tree_id)), Some(Source::OwnWrite));

        // 2. Adopted child write: owner == reader id, but a different orec
        //    (a committed child's orec propagated to the reader).
        let child = Node::new_child(&reader, NodeKind::Future { fork_idx: 0 });
        child.orec.propagate_to(reader.id, 1);
        assert_eq!(policy.tentative(&entry(&child.orec, t.tree_id)), Some(Source::Tentative));

        // 3. Live ancestor write, made before the reader was spawned:
        //    owner = root, tx_tree_ver = 0, and ancVer[root] >= 0 always.
        assert_eq!(policy.tentative(&entry(&t.root.orec, t.tree_id)), Some(Source::Tentative));

        // 4. Propagated commit the reader witnessed: owner = root with
        //    tx_tree_ver v, reader spawned after nClock reached v.
        t.root.bump_nclock(); // nClock: 1
        let late_reader = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });
        let sibling = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        sibling.orec.propagate_to(t.root.id, 1);
        let late_policy = SubRead::new(&t, &late_reader);
        assert_eq!(
            late_policy.tentative(&entry(&sibling.orec, t.tree_id)),
            Some(Source::Tentative),
            "ancVer[root] = 1 >= v = 1: propagated commit is visible"
        );

        // 5. Negative: propagated commit the reader did NOT witness
        //    (ancVer[root] = 0 < v = 1).
        let sibling2 = Node::new_child(&t.root, NodeKind::Future { fork_idx: 1 });
        sibling2.orec.propagate_to(t.root.id, 2);
        assert_eq!(
            policy.tentative(&entry(&sibling2.orec, t.tree_id)),
            None,
            "reader spawned before the commit: invisible"
        );

        // 6. Negative: non-ancestor owner (a live sibling).
        let live_sibling = Node::new_child(&t.root, NodeKind::Future { fork_idx: 2 });
        assert_eq!(policy.tentative(&entry(&live_sibling.orec, t.tree_id)), None);

        // 7. Negative: aborted entries are never visible, whoever owns them.
        let aborted = Node::new_child(&t.root, NodeKind::Future { fork_idx: 3 });
        aborted.orec.propagate_to(t.root.id, 1);
        aborted.orec.mark_aborted();
        assert_eq!(policy.tentative(&entry(&aborted.orec, t.tree_id)), None);

        // 8. Negative: another tree's entries are filtered before any
        //    ownership reasoning.
        assert_eq!(policy.tentative(&entry(&reader.orec, new_tree_id())), None);
    }

    /// The validation policy as a pure function: own writes and entries at
    /// or after the read position are skipped; committed-predecessor writes
    /// (owner = reader or ancestor) count regardless of `ancVer` values.
    #[test]
    fn fig4_validation_table() {
        let t = tree();
        let reader = Node::new_child(&t.root, NodeKind::Continuation { fork_idx: 0 });
        let read = ReadRecord {
            cell: Arc::clone(VBox::new(0u32).cell()),
            token: new_write_token(),
            source: Source::Permanent,
            epoch: 0,
        };
        let policy = SubValidation::for_read(&t, &reader, &read);
        let read_pos = reader.path.write_key(0);

        let entry = |orec: &Arc<Orec>, key: OrderKey| TentativeEntry {
            key,
            token: new_write_token(),
            value: erase(0u32),
            orec: Arc::clone(orec),
            tree: t.tree_id,
        };
        // The future sibling precedes the continuation in serialization
        // order; once committed (owner moved to an ancestor of the reader)
        // its write must be seen by validation even though the reader's
        // ancVer never witnessed it.
        let f = Node::new_child(&t.root, NodeKind::Future { fork_idx: 0 });
        let f_key = f.path.write_key(0);
        assert!(f_key < read_pos, "future writes precede the continuation");
        assert_eq!(policy.tentative(&entry(&f.orec, f_key.clone())), None, "live: not yet visible");
        f.orec.propagate_to(t.root.id, 1);
        assert_eq!(
            policy.tentative(&entry(&f.orec, f_key)),
            Some(Source::Tentative),
            "committed predecessor counts even with ancVer[root] = 0"
        );
        // The reader's own write is never a validation witness.
        assert_eq!(policy.tentative(&entry(&reader.orec, read_pos)), None);
        // A write serialized at or after the read position is skipped.
        let later = Node::new_child(&reader, NodeKind::Future { fork_idx: 0 });
        later.orec.propagate_to(reader.id, 1);
        assert_eq!(policy.tentative(&entry(&later.orec, reader.path.write_key(1))), None);
    }
}
