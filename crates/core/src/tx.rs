//! The transaction handle: reads, writes, `submit`, `fork`, `eval`, and the
//! sub-transaction commit protocol (Algs 3 & 4).
//!
//! # Execution model
//!
//! A [`Tx`] is a *cursor* over the transaction tree. It starts at the node
//! its closure was entered with (the root for `atomic`, a future node for a
//! pool task, a continuation node for `fork`'s second closure). Each
//! [`Tx::submit`] splits the current node: the future body is scheduled on
//! the pool and the cursor descends into the freshly created continuation
//! child — exactly the paper's model where the parent halts at the submit
//! point and the rest of its code *is* the continuation.
//!
//! When the closure returns, the runtime commits the chain of implicit
//! continuations bottom-up and then the entry node itself; each commit
//! waits its turn (Alg 3), validates (Alg 4), and propagates ownership to
//! the parent. A validation failure re-executes the innermost enclosing
//! *closure* (see DESIGN.md D1 for how this maps to the paper's
//! FCC-based partial rollback):
//!
//! * a future body — re-run by its pool task;
//! * `fork`'s continuation closure — re-run by `fork` (partial rollback);
//! * the `atomic` body itself — the top-level transaction restarts.
//!
//! # Control flow
//!
//! Tree teardown (inter-tree conflict, top-level restart, user panic in a
//! sub-transaction) propagates by unwinding with the private
//! [`PoisonSignal`] payload; every transactional operation polls the tree's
//! poison latch so all participants converge to the `atomic` retry loop.

// Audited `clippy::panic` exemption: this module's panics are the
// runtime's typed unwind channels (`PoisonSignal` / `CancelSignal` /
// structured `TxError` payloads) plus documented API-contract panics;
// every one is caught or surfaced at the `Rtf` boundary, never a bug trap.
#![allow(clippy::panic)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use rtf_taskpool::{OrderTag, Pool};
use rtf_txengine::{
    downcast, erase, obs_now_ns, read_pin, tx_trace, ConflictKind, Event, EventSink, ReadLog,
    ReadPath, Source, SpanKind, SpanRec, StallKind, TxData, VBox, VBoxCell, Val, WaitSiteGuard,
};

use crate::error::TxError;
use crate::future::TxFuture;
use crate::node::{Node, NodeKind};
use crate::rw::{sub_read_traced, sub_write, validate_reads_detailed};
use crate::stall::{StallAction, StallThresholds, StallWatch};
use crate::tree::{PoisonKind, TreeCtx};

/// Unwind payload used for tree teardown; never escapes the crate.
pub(crate) struct PoisonSignal;

/// Silences the default panic hook for unwinds the runtime itself raises
/// and handles: [`PoisonSignal`]/[`CancelSignal`] (internal control flow),
/// structured [`TxError`]/[`crate::FutureError`] payloads (surfaced at the
/// API boundary), and injected [`rtf_txfault::InjectedPanic`] faults
/// (contained by the pool). None of these are errors worth a stderr report;
/// everything else is delegated to the previously installed hook.
pub(crate) fn install_quiet_poison_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<PoisonSignal>()
                || p.is::<CancelSignal>()
                || p.is::<TxError>()
                || p.is::<crate::error::FutureError>()
                || p.is::<rtf_txfault::InjectedPanic>()
            {
                return;
            }
            prev(info);
        }));
    });
}

/// A sub-transaction failed validation and must re-execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SubConflict;

/// Unwind payload of [`Tx::cancel`]: abandon the transaction without
/// retrying. Caught by `Rtf::try_atomic`.
pub(crate) struct CancelSignal;

/// Per-node execution state while the node is the cursor (or suspended
/// beneath it).
pub(crate) struct Frame {
    pub node: Arc<Node>,
    reads: ReadLog,
    written: Vec<Arc<VBoxCell>>,
    wrote: bool,
    /// Tree-wide read-write sub-commit count at frame creation (§IV-E).
    ro_snapshot: u64,
    /// Span start timestamp; `0` when span recording is off.
    born_ns: u64,
}

impl Frame {
    fn new(node: Arc<Node>, tree: &TreeCtx, env: &TxEnv) -> Frame {
        Frame {
            node,
            reads: ReadLog::new(),
            written: Vec::new(),
            wrote: false,
            ro_snapshot: tree.rw_commit_clock.load(Ordering::Acquire),
            born_ns: if env.sink.spans_enabled() { obs_now_ns() } else { 0 },
        }
    }
}

/// Runtime facilities a `Tx` needs (provided by `crate::Rtf`).
pub(crate) struct TxEnv {
    pub pool: Pool,
    /// Instrumentation sink (statistics, and tracing when `RTF_TRACE` is
    /// set); every runtime event of the tree machinery reports here.
    pub sink: Arc<dyn EventSink>,
    /// §IV-E read-only validation skip enabled (ablation A2 turns it off).
    pub ro_opt: bool,
    /// Starvation-watchdog thresholds (builder/env resolved once at build).
    pub stall: StallThresholds,
}

/// Handle to the current transactional context.
///
/// Obtained inside [`crate::Rtf::atomic`]; passed by `&mut` to future and
/// continuation closures. All shared-state access goes through this handle.
pub struct Tx {
    env: Arc<TxEnv>,
    tree: Arc<TreeCtx>,
    frames: Vec<Frame>,
    /// Read-only transaction: skip read-set recording, forbid writes.
    ro_mode: bool,
    /// Read-path counts accumulated locally and flushed as one
    /// [`Event::ReadPathBatch`] when the handle drops (a per-read shared
    /// counter would serialize the lock-free read path it measures).
    reads_fast: u64,
    reads_slow: u64,
}

impl Drop for Tx {
    fn drop(&mut self) {
        if self.reads_fast > 0 || self.reads_slow > 0 {
            self.env
                .sink
                .event(Event::ReadPathBatch { fast: self.reads_fast, slow: self.reads_slow });
        }
        let orec_retries = crate::rw::take_orec_snapshot_retries();
        if orec_retries > 0 {
            self.env.sink.event(Event::OrecSnapshotRetries(orec_retries));
        }
    }
}

impl Tx {
    pub(crate) fn new_for_root(env: Arc<TxEnv>, tree: Arc<TreeCtx>, ro_mode: bool) -> Tx {
        let root = Arc::clone(&tree.root);
        let frame = Frame::new(root, &tree, &env);
        Tx { env, tree, frames: vec![frame], ro_mode, reads_fast: 0, reads_slow: 0 }
    }

    fn new_for_node(env: Arc<TxEnv>, tree: Arc<TreeCtx>, node: Arc<Node>, ro_mode: bool) -> Tx {
        let frame = Frame::new(node, &tree, &env);
        Tx { env, tree, frames: vec![frame], ro_mode, reads_fast: 0, reads_slow: 0 }
    }

    #[inline]
    fn current(&self) -> &Frame {
        self.frames.last().expect("Tx always holds its entry frame")
    }

    #[inline]
    fn check_poison(&self) {
        if self.tree.is_poisoned() {
            std::panic::panic_any(PoisonSignal);
        }
    }

    /// Snapshot version of the enclosing top-level transaction.
    pub fn snapshot(&self) -> rtf_txbase::Version {
        self.tree.start_version
    }

    /// Whether this attempt runs in the sequential fallback mode
    /// (after inter-tree conflicts; futures execute inline).
    pub fn is_fallback(&self) -> bool {
        self.tree.fallback
    }

    /// Aborts the current top-level transaction attempt and re-executes it
    /// from the beginning (all buffered effects are discarded first).
    ///
    /// Useful when a transaction discovers mid-flight that its snapshot is
    /// semantically unusable (e.g. business rules changed under it) and
    /// wants a fresh one.
    pub fn restart(&mut self) -> ! {
        self.tree.poison(PoisonKind::ContinuationRestart);
        std::panic::panic_any(PoisonSignal)
    }

    /// Cancels the transaction: every buffered effect is discarded and
    /// control returns to [`crate::Rtf::try_atomic`] with `Err(Cancelled)`.
    ///
    /// This is the deliberate-rollback primitive database workloads need
    /// (e.g. TPC-C's 1% of NewOrder transactions that must roll back).
    /// Panics the current thread with an internal payload; inside
    /// [`crate::Rtf::atomic`] (which cannot return a cancellation) it is
    /// reported as a user panic.
    pub fn cancel(&mut self) -> ! {
        std::panic::panic_any(CancelSignal)
    }

    // ---------------------------------------------------------------- reads

    /// Reads a box, returning a shared handle to the value snapshot.
    pub fn read<T: TxData>(&mut self, vbox: &VBox<T>) -> Arc<T> {
        downcast(self.read_cell(vbox.cell()))
    }

    /// Reads a `Clone` value out of a box.
    pub fn read_owned<T: TxData + Clone>(&mut self, vbox: &VBox<T>) -> T {
        (*self.read(vbox)).clone()
    }

    /// Untyped read (data-structure crates build on this).
    pub fn read_cell(&mut self, cell: &Arc<VBoxCell>) -> Val {
        self.check_poison();
        let frame = self.frames.last_mut().expect("entry frame");
        let (val, entry, path) = sub_read_traced(&self.tree, &frame.node, cell);
        match path {
            ReadPath::Fast => self.reads_fast += 1,
            ReadPath::Slow => self.reads_slow += 1,
        }
        if !self.ro_mode {
            frame.reads.push(entry);
        }
        val
    }

    // --------------------------------------------------------------- writes

    /// Writes a box (the new value replaces the old at commit).
    pub fn write<T: TxData>(&mut self, vbox: &VBox<T>, value: T) {
        self.write_cell(vbox.cell(), erase(value));
    }

    /// Untyped write.
    pub fn write_cell(&mut self, cell: &Arc<VBoxCell>, value: Val) {
        self.check_poison();
        assert!(!self.ro_mode, "write inside a transaction declared read-only (atomic_ro)");
        let is_prefork_root = {
            let node = &self.current().node;
            node.kind == NodeKind::Root && node.fork_count.load(Ordering::Relaxed) == 0
        };
        if self.tree.fallback || is_prefork_root {
            // Top-level private write-set (paper §III-A); also the
            // `rootWriteSet` of the inter-tree fallback (DESIGN.md D3).
            self.tree.root_ws_put(cell, value);
            return;
        }
        let frame = self.frames.last_mut().expect("entry frame");
        match sub_write(&self.tree, &frame.node, cell, value) {
            Ok(_) => {
                frame.written.push(Arc::clone(cell));
                frame.wrote = true;
            }
            Err(c) => {
                // ownedByAnotherTree: tear the whole tree down; the atomic
                // runner re-executes (eventually in fallback mode).
                self.env.sink.event(Event::Conflict {
                    kind: ConflictKind::InterTree,
                    cell: cell.id(),
                    writer_tree: c.writer_tree,
                });
                self.tree.poison(PoisonKind::InterTree);
                std::panic::panic_any(PoisonSignal);
            }
        }
    }

    // ------------------------------------------------------------- futures

    /// Submits `body` as a transactional future (paper §II).
    ///
    /// The future is serialized *here* — at its submission point — no
    /// matter when or where it is evaluated (strong ordering semantics).
    /// The calling context continues as the continuation sub-transaction.
    ///
    /// `body` must be re-executable (`Fn`): it re-runs if it misses a write
    /// of an earlier-serialized sub-transaction. If the *continuation*
    /// (the code following this call) fails validation, the whole top-level
    /// transaction restarts; use [`Tx::fork`] to get partial rollback of
    /// the continuation as well.
    pub fn submit<A, F>(&mut self, body: F) -> TxFuture<A>
    where
        A: TxData,
        F: Fn(&mut Tx) -> A + Send + 'static,
    {
        self.check_poison();
        self.env.sink.event(Event::FutureSubmitted);
        if self.tree.fallback {
            // Sequential fallback: run inline at the submission point —
            // literally the sequential execution the semantics are defined
            // against.
            let t0 = obs_now_ns();
            let v = body(self);
            self.env.sink.event(Event::FutureLifetimeNs(obs_now_ns().saturating_sub(t0)));
            return TxFuture::ready(Arc::new(v));
        }
        let parent = Arc::clone(&self.current().node);
        let fork_idx = parent.fork_count.load(Ordering::Relaxed);
        let handle = TxFuture::new_pending();
        self.spawn_future_task(&parent, fork_idx, handle.clone(), body);
        parent.fork_count.store(fork_idx + 1, Ordering::Relaxed);
        // The cursor descends into the continuation.
        let cnode = Node::new_child(&parent, NodeKind::Continuation { fork_idx });
        tx_trace!(
            self.env.sink,
            "submit: parent {:?} fork {} cont {:?}",
            parent.id,
            fork_idx,
            cnode.id
        );
        let frame = Frame::new(cnode, &self.tree, &self.env);
        self.frames.push(frame);
        handle
    }

    /// Structured submit: runs `body` as a transactional future in parallel
    /// with `cont` (the continuation), and returns `cont`'s result once the
    /// whole future/continuation pair has committed.
    ///
    /// Unlike [`Tx::submit`], a continuation that misses its future's write
    /// is re-executed from the start of `cont` — the paper's partial
    /// rollback (§III-A), with the closure as the checkpoint boundary
    /// instead of a first-class continuation.
    pub fn fork<A, B, F, C>(&mut self, body: F, cont: C) -> B
    where
        A: TxData,
        F: Fn(&mut Tx) -> A + Send + 'static,
        C: Fn(&mut Tx, &TxFuture<A>) -> B,
    {
        self.check_poison();
        self.env.sink.event(Event::FutureSubmitted);
        if self.tree.fallback {
            let t0 = obs_now_ns();
            let v = body(self);
            self.env.sink.event(Event::FutureLifetimeNs(obs_now_ns().saturating_sub(t0)));
            let handle = TxFuture::ready(Arc::new(v));
            return cont(self, &handle);
        }
        let parent = Arc::clone(&self.current().node);
        let fork_idx = parent.fork_count.load(Ordering::Relaxed);
        let handle = TxFuture::new_pending();
        self.spawn_future_task(&parent, fork_idx, handle.clone(), body);
        parent.fork_count.store(fork_idx + 1, Ordering::Relaxed);

        // Continuation scope with partial rollback.
        let depth = self.frames.len();
        loop {
            self.check_poison();
            let cnode = Node::new_child(&parent, NodeKind::Continuation { fork_idx });
            let frame = Frame::new(cnode, &self.tree, &self.env);
            self.frames.push(frame);
            let out = cont(self, &handle);
            match self.commit_frames_down_to(depth) {
                Ok(()) => return out,
                Err(SubConflict) => {
                    self.abort_frames_down_to(depth);
                    self.env.sink.event(Event::SubValidationAbort);
                }
            }
        }
    }

    /// Maps `items` through `f` using `parallelism` transactional futures
    /// (plus the calling continuation working on the first chunk), and
    /// returns the results in item order.
    ///
    /// A convenience wrapper over [`Tx::submit`]/[`Tx::eval`] for the most
    /// common future-parallelization pattern in the paper's workloads:
    /// splitting a long loop over domain objects across futures.
    ///
    /// ```
    /// use rtf::{Rtf, VBox};
    /// use std::sync::Arc;
    ///
    /// let tm = Rtf::builder().workers(4).build();
    /// let boxes: Arc<Vec<VBox<u64>>> = Arc::new((0..100).map(VBox::new).collect());
    /// let doubled = tm.atomic(|tx| {
    ///     let boxes = Arc::clone(&boxes);
    ///     tx.map_futures(3, (0..100usize).collect(), move |tx, i| *tx.read(&boxes[*i]) * 2)
    /// });
    /// assert_eq!(doubled[7], 14);
    /// ```
    pub fn map_futures<T, R, F>(&mut self, parallelism: usize, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: TxData + Clone,
        F: Fn(&mut Tx, &T) -> R + Send + Sync + 'static,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let f = Arc::new(f);
        let chunk = items.len().div_ceil(parallelism.max(1).min(items.len()));
        // Futures take the leading chunks (serialized at their submission
        // points, i.e. in item order); the continuation — which serializes
        // last — processes the final chunk. This keeps writing closures
        // exactly equivalent to the sequential item-order loop.
        let mut tail = items;
        let mut chunks = Vec::new();
        while tail.len() > chunk {
            let rest = tail.split_off(chunk);
            chunks.push(std::mem::replace(&mut tail, rest));
        }
        let handles: Vec<TxFuture<Vec<R>>> = chunks
            .into_iter()
            .map(|part| {
                let f = Arc::clone(&f);
                self.submit(move |tx| part.iter().map(|it| f(tx, it)).collect::<Vec<R>>())
            })
            .collect();
        let tail_results: Vec<R> = tail.iter().map(|it| f(self, it)).collect();
        let mut out = Vec::new();
        for h in &handles {
            out.extend(self.eval(h).iter().cloned());
        }
        out.extend(tail_results);
        out
    }

    /// Evaluates a transactional future: blocks until its sub-transaction
    /// commits and returns its result. While blocked, the thread helps run
    /// queued futures, so bounded pools cannot deadlock.
    pub fn eval<A: TxData>(&mut self, fut: &TxFuture<A>) -> Arc<A> {
        self.check_poison();
        if rtf_txfault::fail_point!("core.eval.wait").is_abort() {
            // Injected fault: the evaluation "fails" as a restart of the
            // whole attempt (the strongest recoverable outcome at this
            // boundary).
            self.tree.poison(PoisonKind::ContinuationRestart);
            std::panic::panic_any(PoisonSignal);
        }
        tx_trace!(self.env.sink, "eval begin (node {:?})", self.current().node.id);
        let pool = self.env.pool.clone();
        let tree = Arc::clone(&self.tree);
        let mut watch = StallWatch::new(
            StallKind::FutureWait,
            self.tree.tree_id.0,
            self.current().node.id.raw(),
            Arc::clone(&self.env.sink),
            self.env.stall,
        );
        // Helping is fenced at the current node's serialization position:
        // running a *later*-positioned task inline could suspend our
        // uncommitted frames beneath work that transitively waits on them
        // (see the taskpool module docs on the helping inversion).
        let bound = order_tag(&self.tree, &self.current().node.path);
        // Publish the blocked-on edge only when the handle is actually
        // unsettled — the common already-committed eval stays a probe.
        let _wait = (!fut.is_settled()).then(|| {
            WaitSiteGuard::enter(
                self.env.sink.as_ref(),
                StallKind::FutureWait,
                self.tree.tree_id.0,
                self.current().node.id.raw(),
                0,
            )
        });
        match fut.wait_helping(move || {
            if tree.is_poisoned() {
                std::panic::panic_any(PoisonSignal);
            }
            if let StallAction::Abort { waited_ms } = watch.tick() {
                tree.poison(PoisonKind::Stalled { kind: StallKind::FutureWait.name(), waited_ms });
                std::panic::panic_any(PoisonSignal);
            }
            pool.help_one(Some(&bound))
        }) {
            Ok(v) => v,
            Err(reason) => {
                // Failed handle: if it is our own tree being torn down,
                // converge to the retry loop (the runtime surfaces the
                // latched poison reason); otherwise the caller holds a
                // handle from a superseded or crashed execution of some
                // other transaction — surface the reason directly.
                if self.tree.is_poisoned() {
                    std::panic::panic_any(PoisonSignal);
                }
                match reason {
                    crate::error::FutureError::Panicked => {
                        std::panic::panic_any(TxError::FuturePanicked { message: String::new() })
                    }
                    _ => panic!(
                        "evaluated a transactional future whose submitting transaction \
                         execution was aborted and re-executed; re-obtain the handle \
                         from the new execution"
                    ),
                }
            }
        }
    }

    fn spawn_future_task<A, F>(
        &self,
        parent: &Arc<Node>,
        fork_idx: u32,
        handle: TxFuture<A>,
        body: F,
    ) where
        A: TxData,
        F: Fn(&mut Tx) -> A + Send + 'static,
    {
        let stage = FutureStage {
            env: Arc::clone(&self.env),
            tree: Arc::clone(&self.tree),
            parent: Arc::clone(parent),
            fork_idx,
            handle,
            body,
            ro_mode: self.ro_mode,
            pending: None,
            requeues: 0,
            submitted_ns: obs_now_ns(),
        };
        stage.tree.task_started();
        let tag = order_tag(&self.tree, &parent.path.child_future(fork_idx));
        self.env.pool.spawn_ordered(tag, Box::new(move || run_future_task(stage)));
    }

    // ----------------------------------------------- sub-commit machinery

    /// Commits and pops frames until only `depth` remain, blocking in
    /// `waitTurn` as needed (client-thread use only; see [`CommitBlock`]).
    pub(crate) fn commit_frames_down_to(&mut self, depth: usize) -> Result<(), SubConflict> {
        while self.frames.len() > depth {
            let frame = self.frames.last().expect("frames non-empty");
            match commit_frame(&self.env, &self.tree, frame, true) {
                Ok(()) => {
                    self.frames.pop();
                }
                Err(CommitBlock::Conflict) => return Err(SubConflict),
                Err(CommitBlock::WouldBlock) => {
                    unreachable!("blocking commit never reports WouldBlock")
                }
            }
        }
        Ok(())
    }

    /// Non-blocking variant for pool tasks: commits as many frames as are
    /// ready; reports `WouldBlock` when `waitTurn` is not yet satisfied so
    /// the task can re-queue itself instead of occupying a thread.
    pub(crate) fn try_commit_frames_down_to(&mut self, depth: usize) -> Result<(), CommitBlock> {
        while self.frames.len() > depth {
            let frame = self.frames.last().expect("frames non-empty");
            commit_frame(&self.env, &self.tree, frame, false)?;
            self.frames.pop();
        }
        Ok(())
    }

    /// Marks every write of the remaining frames at `depth` and above (and
    /// of their committed descendants) aborted, and drops those frames.
    pub(crate) fn abort_frames_down_to(&mut self, depth: usize) {
        for frame in self.frames.drain(depth..) {
            let inbox = std::mem::take(&mut *frame.node.inbox.lock());
            frame.node.orec.mark_aborted();
            for orec in inbox.adopted_orecs {
                orec.mark_aborted();
            }
            frame.node.cancel();
        }
    }

    /// Merges the entry frame's permanent reads into its node's inbox, so
    /// the root commit validates them against other top-level transactions.
    /// Called once after the implicit chain has committed down to the entry
    /// frame (the root's own reads have no committing parent to merge them).
    pub(crate) fn merge_entry_frame_reads(&mut self) {
        let frame = self.frames.first_mut().expect("entry frame");
        let mut inbox = frame.node.inbox.lock();
        inbox.perm_reads.extend(
            frame
                .reads
                .iter()
                .filter(|r| r.source == Source::Permanent)
                .map(|r| (Arc::clone(&r.cell), r.token)),
        );
    }
}

/// The pool-level serialization tag of position `key` within `tree` (the
/// tree is the ordering realm: positions of different trees never constrain
/// each other).
fn order_tag(tree: &TreeCtx, key: &rtf_txbase::OrderKey) -> OrderTag {
    OrderTag::new(tree.tree_id.0, key.components())
}

/// Outcome of a non-blocking commit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CommitBlock {
    /// Validation failed: the subtree must re-execute.
    Conflict,
    /// `waitTurn` is not yet satisfied; retry later. Only returned in
    /// non-blocking mode (pool tasks re-queue themselves instead of
    /// blocking, which would invert the helping discipline — a helper
    /// could otherwise suspend a task underneath a *later*-serialized one
    /// that then waits for it forever).
    WouldBlock,
}

/// Commits one frame's node into its parent: `waitTurn` (Alg 3), read-set
/// validation with the §IV-E read-only skip, ownership propagation and
/// `nClock` bump (Alg 4).
///
/// `blocking` chooses the `waitTurn` behaviour: client threads (the atomic
/// body's implicit chain, `fork`'s continuation) may block and help; pool
/// tasks must use the non-blocking mode (see [`CommitBlock::WouldBlock`]).
fn commit_frame(
    env: &TxEnv,
    tree: &TreeCtx,
    frame: &Frame,
    blocking: bool,
) -> Result<(), CommitBlock> {
    let node = &frame.node;
    let parent = Arc::clone(node.parent.as_ref().expect("sub-transactions have a parent"));
    let spans = env.sink.spans_enabled();
    // Phase spans share the node/parent coordinates of the frame span so
    // the exporters can nest them under the right tree position.
    let phase_span = |kind: SpanKind, start_ns: u64, end_ns: u64, ok: bool| {
        if spans {
            env.sink.span(SpanRec {
                kind,
                tree: tree.tree_id.0,
                node: node.id.raw(),
                parent: parent.id.raw(),
                start_ns,
                end_ns,
                ok,
            });
        }
    };

    // waitTurn: everything serialized before this subtree must have
    // committed. Unordered parallel nesting (ablation A4) has no such
    // constraint: a sub-transaction serializes when it commits.
    let wait_turn = tree.semantics == crate::tree::TreeSemantics::StrongOrdering;
    if let Some((target, threshold)) = node.wait_turn_target().filter(|_| wait_turn) {
        if rtf_txfault::fail_point!("core.wait_turn").is_abort() && !blocking {
            // Injected fault: pretend the turn is not ready, forcing the
            // task through a re-queue round trip.
            return Err(CommitBlock::WouldBlock);
        }
        if blocking {
            let pool = env.pool.clone();
            tx_trace!(
                env.sink,
                "waitTurn {:?} {:?} -> target {:?} nclock {} >= {}",
                node.id,
                node.kind,
                target.id,
                target.nclock(),
                threshold
            );
            let t0 = obs_now_ns();
            // Fence helping at the committing node's position, for the same
            // reason as in `Tx::eval`: everything this wait depends on is
            // serialized strictly before `node`.
            let bound = order_tag(tree, &node.path);
            let mut watch = StallWatch::new(
                StallKind::WaitTurn,
                tree.tree_id.0,
                node.id.raw(),
                Arc::clone(&env.sink),
                env.stall,
            );
            // Wait-graph edge: "this thread waits for `target`'s nClock to
            // reach `threshold`" — skipped when the turn is already here.
            let _wait = (target.nclock() < threshold).then(|| {
                WaitSiteGuard::enter(
                    env.sink.as_ref(),
                    StallKind::WaitTurn,
                    tree.tree_id.0,
                    target.id.raw(),
                    threshold,
                )
            });
            let ok = target.wait_nclock_at_least(
                threshold,
                || {
                    if let StallAction::Abort { waited_ms } = watch.tick() {
                        // Poison instead of unwinding from inside the wait:
                        // the loop's poison check converges every waiter.
                        tree.poison(PoisonKind::Stalled {
                            kind: StallKind::WaitTurn.name(),
                            waited_ms,
                        });
                    }
                    pool.help_one(Some(&bound))
                },
                || tree.is_poisoned(),
            );
            let t1 = obs_now_ns();
            env.sink.event(Event::WaitTurnNs(t1.saturating_sub(t0)));
            phase_span(SpanKind::WaitTurn, t0, t1, ok);
            if !ok {
                std::panic::panic_any(PoisonSignal);
            }
            tx_trace!(env.sink, "waitTurn {:?} done (ok)", node.id);
        } else if target.nclock() < threshold {
            tx_trace!(
                env.sink,
                "waitTurn {:?} not ready (target {:?} {} < {}), requeue",
                node.id,
                target.id,
                target.nclock(),
                threshold
            );
            return Err(CommitBlock::WouldBlock);
        }
    }
    if tree.is_poisoned() {
        std::panic::panic_any(PoisonSignal);
    }

    let inbox = std::mem::take(&mut *node.inbox.lock());
    if rtf_txfault::fail_point!("core.subcommit.validate").is_abort() {
        // Injected validation failure: restore the inbox (the caller aborts
        // the subtree and needs the adopted orecs) and re-execute.
        *node.inbox.lock() = inbox;
        return Err(CommitBlock::Conflict);
    }
    let wrote_any = frame.wrote || !inbox.written_cells.is_empty();

    // §IV-E: a read-only sub-transaction may skip validation iff no
    // read-write sub-transaction of the tree committed since it started.
    let can_skip = env.ro_opt
        && !wrote_any
        && tree.rw_commit_clock.load(Ordering::Acquire) == frame.ro_snapshot;
    tx_trace!(
        env.sink,
        "commit {:?} {:?}: wrote_any={} skip={} reads={} rw_clock={} ro_snap={}",
        node.id,
        node.kind,
        wrote_any,
        can_skip,
        frame.reads.len(),
        tree.rw_commit_clock.load(Ordering::Acquire),
        frame.ro_snapshot
    );
    if can_skip {
        env.sink.event(Event::RoValidationSkip);
    } else {
        if !wrote_any {
            env.sink.event(Event::RoValidationTaken);
        }
        let tv = obs_now_ns();
        let outcome = validate_reads_detailed(tree, node, frame.reads.iter());
        let tv_end = obs_now_ns();
        env.sink.event(Event::ValidationNs(tv_end.saturating_sub(tv)));
        phase_span(SpanKind::Validation, tv, tv_end, outcome.is_ok());
        if let Err(site) = outcome {
            env.sink.event(Event::Conflict {
                kind: ConflictKind::SubValidation,
                cell: site.cell,
                writer_tree: site.writer_tree,
            });
            // Put the inbox back: the caller aborts the whole subtree and
            // needs the adopted orecs to mark them aborted.
            *node.inbox.lock() = inbox;
            return Err(CommitBlock::Conflict);
        }
    }

    if rtf_txfault::fail_point!("core.subcommit.propagate").is_abort() {
        // Injected fault just before propagation: behaves like a validation
        // failure (nothing has been propagated yet, so re-execution is the
        // correct recovery).
        *node.inbox.lock() = inbox;
        return Err(CommitBlock::Conflict);
    }
    // Propagation (Alg 4 lines 7–13). `ver` is what the parent's nclock
    // becomes; ordering (re-own, merge, then bump) ensures that once a
    // waiter wakes on the bump, the propagated state is in place.
    let ver = parent.nclock() + 1;
    let mut orecs = inbox.adopted_orecs;
    if frame.wrote {
        orecs.push(Arc::clone(&node.orec));
    }
    for orec in &orecs {
        orec.propagate_to(parent.id, ver);
    }
    {
        let mut pin = parent.inbox.lock();
        pin.adopted_orecs.extend(orecs);
        pin.perm_reads.extend(inbox.perm_reads);
        pin.perm_reads.extend(
            frame
                .reads
                .iter()
                .filter(|r| r.source == Source::Permanent)
                .map(|r| (Arc::clone(&r.cell), r.token)),
        );
        pin.written_cells.extend(inbox.written_cells);
        pin.written_cells.extend(frame.written.iter().cloned());
    }
    if wrote_any {
        // Count every write-carrying sub-commit — own writes *or* adopted
        // descendant writes. The latter matters for the §IV-E skip: a
        // write only becomes visible to later sub-transactions once it has
        // propagated into a common ancestor, and that propagation step is
        // this (possibly itself read-only) node's commit.
        tree.rw_commit_clock.fetch_add(1, Ordering::AcqRel);
    }
    parent.bump_nclock();
    env.sink.event(Event::SubCommit);
    if spans && frame.born_ns != 0 {
        let kind = match node.kind {
            NodeKind::Future { .. } => SpanKind::Future,
            NodeKind::Continuation { .. } => SpanKind::Continuation,
            NodeKind::Root => unreachable!("the root never passes commit_frame"),
        };
        phase_span(kind, frame.born_ns, obs_now_ns(), true);
    }
    Ok(())
}

/// The movable state of one transactional-future position.
///
/// A pool task drives this stage: run the body, then *try* to commit the
/// chain. If `waitTurn` is not yet satisfied the stage re-queues itself
/// (with the executed transaction state in `pending`), freeing the thread —
/// pool tasks never block in `waitTurn`, which keeps the helping discipline
/// deadlock-free: a helper can safely run any queued task inline, because
/// every task either finishes or returns after re-queueing.
///
/// # Drop guard
///
/// The stage's `Drop` is the panic-safety backstop of the whole future
/// lifecycle. However the task dies — a fault injected before the closure
/// runs (the pool contains the panic and drops the unrun closure, and the
/// stage with it), a panic escaping [`run_future_task`]'s internal catches,
/// or the pool discarding queued closures at shutdown — dropping the stage:
///
/// 1. aborts any executed-but-uncommitted frames (their writes stay
///    invisible and their orecs read as aborted);
/// 2. if the handle never settled, poisons the tree as
///    [`PoisonKind::FuturePanicked`] and fails the handle, so `eval`ers and
///    `waitTurn` waiters wake instead of hanging and the runtime surfaces
///    [`TxError::FuturePanicked`];
/// 3. reports `task_finished` exactly once, releasing quiescence waiters.
///
/// Normal completion and teardown paths settle the handle first, making the
/// guard a no-op beyond the task-count decrement; the re-queue path *moves*
/// the stage into the next closure, so the guard does not fire early.
struct FutureStage<A: TxData, F> {
    env: Arc<TxEnv>,
    tree: Arc<TreeCtx>,
    parent: Arc<Node>,
    fork_idx: u32,
    handle: TxFuture<A>,
    body: F,
    ro_mode: bool,
    /// Body already executed; awaiting its commit turn.
    pending: Option<(Tx, A)>,
    /// Consecutive `WouldBlock` re-queues; damps the retry loop.
    requeues: u32,
    /// Submission timestamp; resolution emits [`Event::FutureLifetimeNs`]
    /// (submission-to-completion latency, including every re-execution).
    submitted_ns: u64,
}

impl<A: TxData, F> Drop for FutureStage<A, F> {
    fn drop(&mut self) {
        // Abort executed-but-uncommitted frames first: their writes must
        // never become visible, whatever killed the task.
        if let Some((mut tx, _)) = self.pending.take() {
            tx.abort_frames_down_to(0);
        }
        if !self.handle.is_settled() {
            // Abandoned mid-flight: the pool contained a panic and dropped
            // the closure, or the closure was discarded unrun. There is no
            // payload left to resume — surface a structured future-panic
            // and wake every waiter.
            self.env.sink.event(Event::FuturePanicked);
            self.tree.poison(PoisonKind::FuturePanicked {
                message: format!(
                    "future task (fork {} under {:?}) died before settling its handle",
                    self.fork_idx, self.parent.id
                ),
            });
            self.handle.cancel_panicked();
        }
        self.tree.task_finished();
    }
}

/// Pool task driving one transactional future position: executes the body,
/// commits its chain (re-queueing while not ready), and re-executes on
/// validation conflicts (the future side of partial rollback). Converges on
/// tree teardown. The stage's drop guard reports `task_finished` exactly
/// once per lifecycle and cleans up after any abnormal exit.
fn run_future_task<A, F>(mut stage: FutureStage<A, F>)
where
    A: TxData,
    F: Fn(&mut Tx) -> A + Send + 'static,
{
    loop {
        // One epoch pin per execution round: every version-list read and
        // write-back inside the body or the commit attempt pins reentrantly
        // (a thread-local depth bump instead of the era-advertisement
        // fence). A local, not a stage field: the stage crosses threads on
        // re-queue, and a pin is bound to the thread that took it.
        let _pin = read_pin();
        if stage.tree.is_poisoned() {
            stage.handle.cancel();
            break;
        }
        if stage.pending.is_none() {
            // Execute (or re-execute) the body in a fresh node attempt.
            let node =
                Node::new_child(&stage.parent, NodeKind::Future { fork_idx: stage.fork_idx });
            tx_trace!(
                stage.env.sink,
                "task run future {:?} parent {:?} fork {}",
                node.id,
                stage.parent.id,
                stage.fork_idx
            );
            let mut tx = Tx::new_for_node(
                Arc::clone(&stage.env),
                Arc::clone(&stage.tree),
                node,
                stage.ro_mode,
            );
            let body = &stage.body;
            // The failpoint runs inside the same containment as the body:
            // an injected *panic* here is indistinguishable from a user
            // panic (and carries its site in the surfaced message), while
            // an injected *abort* re-executes the attempt from scratch.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if rtf_txfault::fail_point!("core.future.body").is_abort() {
                    return None;
                }
                Some(body(&mut tx))
            })) {
                Ok(Some(value)) => stage.pending = Some((tx, value)),
                Ok(None) => {
                    // Injected fault: treat as a spurious abort of this
                    // body attempt and re-execute from scratch.
                    stage.env.sink.event(Event::SubValidationAbort);
                    continue;
                }
                Err(payload) => {
                    if payload.is::<PoisonSignal>() {
                        stage.handle.cancel();
                    } else {
                        // User panic inside the future: poison the tree; the
                        // atomic runner resumes the payload on the caller.
                        stage.env.sink.event(Event::FuturePanicked);
                        stage.tree.poison(PoisonKind::UserPanic(payload));
                        stage.handle.cancel_panicked();
                    }
                    break;
                }
            }
        }
        if rtf_txfault::fail_point!("core.future.commit").is_abort() {
            // Injected commit failure: partial rollback and re-execution.
            let (mut tx, _) = stage.pending.take().expect("pending set above");
            tx.abort_frames_down_to(0);
            stage.env.sink.event(Event::SubValidationAbort);
            stage.requeues = 0;
            continue;
        }
        let (tx, _) = stage.pending.as_mut().expect("pending set above");
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tx.try_commit_frames_down_to(0)
        }));
        match attempt {
            Ok(Ok(())) => {
                tx_trace!(stage.env.sink, "task complete");
                let (_, value) = stage.pending.take().expect("pending");
                stage.env.sink.event(Event::FutureLifetimeNs(
                    obs_now_ns().saturating_sub(stage.submitted_ns),
                ));
                stage.handle.complete(Arc::new(value));
                break;
            }
            Ok(Err(CommitBlock::Conflict)) => {
                // Partial rollback: abort this subtree, re-execute the body.
                let (mut tx, _) = stage.pending.take().expect("pending");
                tx.abort_frames_down_to(0);
                stage.env.sink.event(Event::SubValidationAbort);
                stage.requeues = 0;
                continue;
            }
            Ok(Err(CommitBlock::WouldBlock)) => {
                // Not our turn yet: re-queue and free this thread. The
                // escalating pause keeps a long wait from thrashing the
                // queue (each retry is a full queue round-trip).
                stage.requeues = stage.requeues.saturating_add(1);
                let pause_us = match stage.requeues {
                    0..=2 => 0,
                    3..=10 => 20,
                    11..=50 => 100,
                    _ => 500,
                };
                let pool = stage.env.pool.clone();
                let tag = order_tag(&stage.tree, &stage.parent.path.child_future(stage.fork_idx));
                pool.spawn_ordered(
                    tag,
                    Box::new(move || {
                        if pause_us == 0 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(pause_us));
                        }
                        run_future_task(stage);
                    }),
                );
                return; // NOT task_finished: the stage is still in flight.
            }
            Err(payload) => {
                if payload.is::<PoisonSignal>() {
                    stage.handle.cancel();
                } else {
                    stage.env.sink.event(Event::FuturePanicked);
                    stage.tree.poison(PoisonKind::UserPanic(payload));
                    stage.handle.cancel_panicked();
                }
                break;
            }
        }
    }
    // `task_finished` runs in the stage's drop guard — here, on every path.
}
