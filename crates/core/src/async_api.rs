//! Async front-end: top-level transactions as pollable futures.
//!
//! [`Rtf::run_async`] (and its ordered sibling [`Rtf::run_ticketed_async`])
//! wraps one whole top-level transaction — the same retry loop as
//! [`Rtf::run`], helping included — in a [`TxRun`] future. The transaction
//! body still executes on the task pool (or inline, via helping); the
//! *waiting* is what becomes async: instead of parking an OS thread on the
//! result, the poller registers its [`Waker`](std::task::Waker) in a
//! [`WaitCell`] and yields.
//!
//! The poll path keeps the stack-wide help-first discipline: each poll
//! re-checks the result, runs bounded helping steps through the pool while
//! they make progress, and only then registers the waker. With a
//! zero-worker pool on a single-threaded executor the first poll's helping
//! step runs the entire transaction inline — no OS thread ever blocks,
//! which is the property the equivalence suite pins down.
//!
//! Stall surveillance: the warn-only watchdog is armed when the [`TxRun`]
//! is *created* (registration time), not on first poll, so a future parked
//! in an executor still accrues wait time against the warn threshold and
//! reports `StallDetected` on its next poll. Abort authority stays with the
//! blocking waits inside the transaction itself (they already convert armed
//! stalls into [`TxError::StallAborted`]); tearing the outer future down as
//! well would double-report the same stall.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use parking_lot::Mutex;
use rtf_txbase::{WaitCell, WaiterHandle};
use rtf_txengine::{Event, StallKind};
use rtf_txfault::Outcome;

use crate::error::TxError;
use crate::ordered::OrderedTicket;
use crate::runtime::Rtf;
use crate::stall::StallWatch;
use crate::tx::Tx;

/// Oneshot rendezvous between the transaction task and the poller: the task
/// publishes the result, then latches the cell; the poller re-checks the
/// result whenever registration observes the latch (the waker-backend
/// analogue of the epoch-token protocol in `rtf_txbase::wait`).
struct RunShared<R> {
    result: Mutex<Option<Result<R, TxError>>>,
    cell: WaitCell,
}

impl<R> RunShared<R> {
    /// Publishes `r` (first writer wins) and fires the registered waker,
    /// if any. Publish-before-latch ordering: a poller that observes the
    /// latch must find the result on its re-check.
    fn publish(&self, r: Result<R, TxError>, sink: &Arc<dyn rtf_txengine::EventSink>) {
        let mut slot = self.result.lock();
        if slot.is_none() {
            *slot = Some(r);
        }
        drop(slot);
        if self.cell.notify() {
            sink.event(Event::WakerFired);
        }
    }
}

/// Panic-safety for the pool task (mirrors the future lifecycle's drop
/// guard): if the task dies before publishing — e.g. a fault injected at
/// `taskpool.task.run` unwinds it before the transaction even starts — the
/// guard publishes a structured failure so the awaiting task is woken
/// instead of parked forever.
struct PublishOnDrop<R> {
    shared: Arc<RunShared<R>>,
    sink: Arc<dyn rtf_txengine::EventSink>,
}

impl<R> Drop for PublishOnDrop<R> {
    fn drop(&mut self) {
        if self.shared.result.lock().is_none() {
            self.shared.publish(
                Err(TxError::FuturePanicked {
                    message: "transaction task died before publishing a result".into(),
                }),
                &self.sink,
            );
        }
    }
}

/// A top-level transaction in flight, as a [`Future`].
///
/// Created by [`Rtf::run_async`] / [`Rtf::run_ticketed_async`]. The
/// transaction is spawned lazily on first poll (a `TxRun` that is never
/// polled never runs), resolves to exactly what [`Rtf::run`] would have
/// returned, and must not be polled again after completion.
pub struct TxRun<R> {
    shared: Arc<RunShared<R>>,
    /// The whole transaction as one pool task; taken on first poll.
    task: Option<Box<dyn FnOnce() + Send + 'static>>,
    tm: Rtf,
    watch: StallWatch,
    done: bool,
    /// Whether the previous poll parked with a registered waker — the next
    /// poll is then wake-driven, and finding the result still pending makes
    /// it a spurious poll ([`Event::AsyncSpuriousPoll`]).
    registered: bool,
}

impl<R: Send + 'static> TxRun<R> {
    fn new(
        tm: Rtf,
        ticket: Option<OrderedTicket>,
        body: Box<dyn Fn(&mut Tx) -> R + Send + 'static>,
    ) -> TxRun<R> {
        let shared = Arc::new(RunShared { result: Mutex::new(None), cell: WaitCell::new() });
        let sink = Arc::clone(&tm.env().sink);
        // Armed now — registration time — so wait time accrues even while
        // the future sits unpolled in an executor (see module docs).
        let watch =
            StallWatch::warn_only(StallKind::AsyncWait, 0, 0, Arc::clone(&sink), tm.env().stall);
        let task = {
            // The guard is a *capture*, constructed before the closure: a
            // task dropped without ever running (pool teardown, or a fault
            // injected ahead of the task body) still destroys its captures,
            // which is the only signal an unrun task leaves behind.
            let guard = PublishOnDrop { shared: Arc::clone(&shared), sink: Arc::clone(&sink) };
            let tm = tm.clone();
            Box::new(move || {
                let r = match ticket {
                    Some(t) => tm.run_ticketed(t, &*body),
                    None => tm.run(&*body),
                };
                guard.shared.publish(r, &guard.sink);
            })
        };
        TxRun { shared, task: Some(task), tm, watch, done: false, registered: false }
    }
}

impl<R: Send + 'static> Future for TxRun<R> {
    type Output = Result<R, TxError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        assert!(!this.done, "TxRun polled after completion");
        // Chaos hook: pretend a stray wakeup scheduled this poll for
        // nothing, and require the poller to survive an immediate re-poll.
        if rtf_txfault::fail_point!("core.async.poll") == Outcome::SpuriousWake {
            cx.waker().wake_by_ref();
        }
        let _ = this.watch.tick();
        this.tm.env().sink.event(Event::AsyncPoll);
        if let Some(task) = this.task.take() {
            this.tm.env().pool.spawn(task);
        }
        // A wake-driven poll that still finds no result was woken for
        // nothing (executor spuriousness, or a wake raced by a helper that
        // took the result path first).
        if std::mem::take(&mut this.registered) && this.shared.result.lock().is_none() {
            this.tm.env().sink.event(Event::AsyncSpuriousPoll);
        }
        loop {
            if let Some(r) = this.shared.result.lock().take() {
                this.done = true;
                return Poll::Ready(r);
            }
            // Help-first: run queued pool work while any exists — the
            // queue may hold this very transaction (zero-worker pools run
            // it entirely inside this step) or work its predecessors are
            // blocked on.
            if this.tm.env().pool.help_one(None) {
                continue;
            }
            // Idle: park the task. Re-registration replaces the previous
            // waker, so polls migrating across executor threads stay
            // current. A refused registration means the cell latched since
            // the result check — loop once more and take it.
            if this.shared.cell.register(WaiterHandle::Waker(cx.waker().clone())) {
                this.tm.env().sink.event(Event::WakerRegistered);
                this.registered = true;
                return Poll::Pending;
            }
        }
    }
}

impl Rtf {
    /// Runs `body` as a top-level transaction, asynchronously: the returned
    /// future resolves to exactly what [`Rtf::run`] would return, but the
    /// awaiting task never blocks an OS thread — it registers its waker and
    /// yields, helping the pool along on every poll.
    ///
    /// The transaction is spawned lazily on first poll. `body` may execute
    /// several times (aborts, re-executions); keep non-transactional side
    /// effects idempotent.
    pub fn run_async<R>(
        &self,
        body: impl Fn(&mut Tx) -> R + Send + 'static,
    ) -> impl Future<Output = Result<R, TxError>> + Send
    where
        R: Send + 'static,
    {
        TxRun::new(self.clone(), None, Box::new(body))
    }

    /// Like [`Rtf::run_async`], but committing at the position of a ticket
    /// drawn earlier with [`Rtf::ticket`] — the async form of
    /// [`Rtf::run_ticketed`]. On error the ticket is abandoned and the lane
    /// skips over it.
    pub fn run_ticketed_async<R>(
        &self,
        ticket: OrderedTicket,
        body: impl Fn(&mut Tx) -> R + Send + 'static,
    ) -> impl Future<Output = Result<R, TxError>> + Send
    where
        R: Send + 'static,
    {
        TxRun::new(self.clone(), Some(ticket), Box::new(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VBox;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::{Wake, Waker};

    struct Flag(AtomicUsize);
    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Drives a future on this thread alone, without parking: polls, and
    /// between polls spins until the waker fires (test-only busy loop).
    fn drive<F: Future>(fut: F) -> F::Output {
        let mut fut = std::pin::pin!(fut);
        let flag = Arc::new(Flag(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&flag));
        let mut cx = Context::from_waker(&waker);
        let mut seen = 0;
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(r) => return r,
                Poll::Pending => {
                    while flag.0.load(Ordering::SeqCst) == seen {
                        std::hint::spin_loop();
                    }
                    seen = flag.0.load(Ordering::SeqCst);
                }
            }
        }
    }

    #[test]
    fn run_async_resolves_on_a_zero_worker_pool() {
        // No workers: the transaction can only run inside the poll path's
        // helping step — the property the acceptance criterion pins.
        let tm = Rtf::builder().workers(0).build();
        let x = VBox::new(5u64);
        let got = drive(tm.run_async({
            let x = x.clone();
            move |tx| {
                let f = tx.submit({
                    let x = x.clone();
                    move |tx| *tx.read(&x) * 2
                });
                *tx.eval(&f) + 1
            }
        }));
        assert_eq!(got.unwrap(), 11);
        assert_eq!(tm.stats().commits(), 1);
    }

    #[test]
    fn run_async_is_lazy_until_first_poll() {
        let tm = Rtf::builder().workers(2).build();
        let x = VBox::new(0u64);
        let fut = tm.run_async({
            let x = x.clone();
            move |tx| tx.write(&x, 1)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(tm.stats().top_commits, 0, "unpolled TxRun must not have run");
        drive(fut).unwrap();
        assert_eq!(*x.read_committed(), 1);
    }

    #[test]
    fn run_ticketed_async_commits_at_the_ticket_position() {
        let tm = Rtf::builder().workers(0).ordered(1).build();
        let x = VBox::new(0u64);
        let t0 = tm.ticket();
        let t1 = tm.ticket();
        // Resolve out of submission order: the second ticket's transaction
        // runs first but must commit second.
        let f1 = tm.run_ticketed_async(t1, {
            let x = x.clone();
            move |tx| {
                let v = *tx.read(&x);
                tx.write(&x, v + 10);
            }
        });
        let f0 = tm.run_ticketed_async(t0, {
            let x = x.clone();
            move |tx| tx.write(&x, 1)
        });
        let (r1, r0) = std::thread::scope(|s| {
            let h = s.spawn(|| drive(f1));
            let r0 = drive(f0);
            (h.join().unwrap(), r0)
        });
        r0.unwrap();
        r1.unwrap();
        assert_eq!(*x.read_committed(), 11, "t0 (write 1) then t1 (+10)");
        assert_eq!(tm.stats().ordered_commits, 2);
    }

    #[test]
    fn dropping_the_unrun_task_publishes_a_structured_failure() {
        // The pool may destroy a queued task without ever calling it (a
        // fault injected ahead of the task body does exactly this). The
        // drop guard travels as a closure *capture*, so the destruction
        // itself publishes the failure — the awaiting task must resolve,
        // not park forever.
        let tm = Rtf::builder().workers(0).build();
        let mut run = TxRun::new(tm, None, Box::new(|_tx| 1u64));
        drop(run.task.take());
        let got = drive(run);
        assert!(
            matches!(got, Err(TxError::FuturePanicked { .. })),
            "expected FuturePanicked, got {got:?}"
        );
    }

    #[test]
    fn waker_counters_balance_under_worker_execution() {
        let tm = Rtf::builder().workers(1).build();
        let x = VBox::new(0u64);
        for _ in 0..8 {
            drive(tm.run_async({
                let x = x.clone();
                move |tx| {
                    let v = *tx.read(&x);
                    tx.write(&x, v + 1);
                }
            }))
            .unwrap();
        }
        assert_eq!(*x.read_committed(), 8);
        let s = tm.stats();
        // Every fired waker was first registered (registrations may exceed
        // fires: a poll can re-register, and results can beat the park).
        assert!(s.wakers_fired <= s.wakers_registered);
    }
}
