//! # rtf — transactional futures for Rust
//!
//! A from-scratch Rust implementation of **transactional futures** as
//! introduced by *"The Future(s) of Transactional Memory"* (Zeng, Barreto,
//! Haridi, Rodrigues, Romano — ICPP 2016), whose reference system is the
//! Java-based JTF.
//!
//! A transactional future is a future **submitted inside a memory
//! transaction**: its body runs in parallel as a *sub-transaction* of the
//! submitting (parent) transaction, and the code following the submission
//! becomes the *continuation* sub-transaction. The runtime guarantees
//! **strong ordering semantics**: the future is serialized at its
//! *submission point*, so the outcome of any program equals the outcome of
//! the sequential program in which each future body runs synchronously
//! where it was submitted — no matter when, where, or by whom the future is
//! evaluated. Across top-level transactions, the system guarantees opacity
//! (strict serializability with consistent snapshots even for aborted
//! transactions), inherited from the multi-version substrate.
//!
//! ```
//! use rtf::{Rtf, VBox};
//!
//! let tm = Rtf::builder().workers(4).build();
//! let account = VBox::new(100i64);
//! let fee_total = VBox::new(0i64);
//!
//! let paid = tm.atomic(|tx| {
//!     // Compute the fee in parallel with the rest of the transaction.
//!     let fee = tx.submit({
//!         let account = account.clone();
//!         move |tx| *tx.read(&account) / 10
//!     });
//!     let balance = *tx.read(&account);
//!     let fee = *tx.eval(&fee);
//!     tx.write(&account, balance - fee);
//!     let t = *tx.read(&fee_total);
//!     tx.write(&fee_total, t + fee);
//!     fee
//! });
//! assert_eq!(paid, 10);
//! assert_eq!(*account.read_committed(), 90);
//! ```
//!
//! ## Architecture
//!
//! * [`Rtf`] — the runtime: worker pool, clock, statistics, and the
//!   [`Rtf::atomic`] retry loop.
//! * [`Tx`] — the transaction handle: [`Tx::read`] / [`Tx::write`] on
//!   [`VBox`]es, [`Tx::submit`] (paper-style: the rest of the enclosing
//!   closure is the continuation), [`Tx::fork`] (structured: an explicit
//!   continuation closure, giving partial rollback), [`Tx::eval`].
//! * [`TxFuture`] — the future handle; sendable anywhere, evaluatable even
//!   from other top-level transactions (paper Fig 2).
//! * Substrates: `rtf-txengine` (versioned cells, the shared
//!   read-resolution / token-validation pipeline, the [`EventSink`]
//!   instrumentation seam), `rtf-mvstm` (top-level snapshot policy and
//!   lock-free helping commit) and `rtf-taskpool` (helping work pool).
//!
//! The concurrency control implements the paper's machinery: per-box
//! tentative version lists sorted by serialization order, ownership records
//! propagated on sub-commit, `ancVer`/`nClock` visibility, the `waitTurn`
//! ordering rules, read-set re-resolution at sub-commit, the inter-tree
//! `ownedByAnotherTree` fallback, and the read-only validation-skip
//! optimization. Since the engine extraction this crate contributes only
//! the *policies* — `rw::SubRead` (Fig 4 visibility) and
//! `rw::SubValidation` (commit-time variant) — plus the tree/commit
//! protocol; the single generic read walk and validation loop live in
//! `rtf-txengine` and are shared with the top-level path. See `DESIGN.md`
//! §3.10 for the engine layer, and for the documented substitutions
//! (closure-based partial rollback instead of JVM first-class
//! continuations; mutex-guarded tentative lists with unchanged ordering
//! semantics).
//!
//! [`EventSink`]: rtf_txengine::EventSink

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
// Robustness gate: production code must not unwrap or panic ad hoc —
// every residual site carries an audited `allow` naming its invariant
// (tests are exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::panic))]

mod async_api;
mod error;
mod future;
mod node;
mod ordered;
mod runtime;
mod rw;
mod stall;
mod tree;
mod tx;

pub use async_api::TxRun;
pub use error::{FutureError, TxError};
pub use future::TxFuture;
pub use ordered::OrderedTicket;
pub use runtime::{Cancelled, Rtf, RtfBuilder, RtfConfig};
pub use tree::TreeSemantics;
pub use tx::Tx;

// Re-export the data layer so `rtf` alone suffices for applications.
pub use rtf_mvstm::CommitStrategy;
pub use rtf_txbase::{StatSnapshot, Ticket};
pub use rtf_txengine::{TxData, VBox};

// Observability layer (attach via [`RtfBuilder::observer`] or the
// `RTF_METRICS` / `RTF_METRICS_TEXT` / `RTF_CHROME_TRACE` env vars).
pub use rtf_txobs::{
    render_prometheus, state_hash, CommitLog, ExportPaths, JsonlSink, LiveConfig, LiveExporter,
    LiveSink, MetricsSnapshot, ObsConfig, PromTextSink, ReplayArtifact, SnapshotDiff, TxObs,
    WaitEdge, STREAM_SCHEMA,
};

// Internal APIs for sibling crates (data structures, benches) and tests.
#[doc(hidden)]
pub mod internals {
    pub use crate::node::{Node, NodeKind};
    pub use crate::rw::{
        sub_read, sub_write, validate_reads, validate_reads_detailed, InterTreeConflict, SubRead,
        SubValidation,
    };
    pub use crate::tree::TreeCtx;
    pub use rtf_txengine::{ReadRecord, Source};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tm() -> Rtf {
        Rtf::builder().workers(2).build()
    }

    #[test]
    fn plain_transaction_without_futures() {
        let tm = tm();
        let b = VBox::new(1u64);
        let out = tm.atomic(|tx| {
            let v = *tx.read(&b);
            tx.write(&b, v + 1);
            v
        });
        assert_eq!(out, 1);
        assert_eq!(*b.read_committed(), 2);
        assert_eq!(tm.stats().top_commits, 1);
    }

    #[test]
    fn future_sees_parent_prefork_write() {
        let tm = tm();
        let b = VBox::new(0u64);
        let got = tm.atomic(|tx| {
            tx.write(&b, 7);
            let f = tx.submit({
                let b = b.clone();
                move |tx| *tx.read(&b)
            });
            *tx.eval(&f)
        });
        assert_eq!(got, 7, "future must inherit the parent's snapshot incl. its writes");
        assert_eq!(*b.read_committed(), 7);
    }

    #[test]
    fn continuation_misses_future_write_and_reexecutes() {
        // The continuation reads the box its future writes; strong ordering
        // demands the continuation observe the future's value.
        let tm = tm();
        let b = VBox::new(0u64);
        let seen = tm.atomic(|tx| {
            tx.fork(
                {
                    let b = b.clone();
                    move |tx| {
                        tx.write(&b, 41);
                        1u8
                    }
                },
                {
                    let b = b.clone();
                    move |tx, fut| {
                        let v = *tx.read(&b);
                        let _ = tx.eval(fut);
                        v
                    }
                },
            )
        });
        assert_eq!(seen, 41, "continuation must serialize after its future");
        assert_eq!(*b.read_committed(), 41);
    }

    #[test]
    fn nested_futures_fig1() {
        // Fig 1: T0 submits TF1; TF1 submits TF2; T0 evaluates TF2 (the
        // handle crosses sub-transactions through the future result).
        let tm = tm();
        let x = VBox::new(0u64);
        let y = VBox::new(0u64);
        let out = tm.atomic(|tx| {
            tx.write(&y, 10); // w(y, y0)
            let f1 = tx.submit({
                let x = x.clone();
                move |tx| {
                    tx.write(&x, 5); // w(x, x1)
                    tx.submit({
                        let x = x.clone();
                        move |tx| *tx.read(&x)
                    })
                }
            });
            let f2 = tx.eval(&f1);
            *tx.eval(&f2)
        });
        // TF2 serializes right after its submission inside TF1: sees x=5.
        assert_eq!(out, 5);
    }

    #[test]
    fn post_join_parent_reads_see_future_writes() {
        let tm = tm();
        let b = VBox::new(0u64);
        let out = tm.atomic(|tx| {
            tx.fork(
                {
                    let b = b.clone();
                    move |tx| {
                        tx.write(&b, 9);
                        0u8
                    }
                },
                |_tx, _f| (),
            );
            // Back at the root, after the join: must see the future's write.
            *tx.read(&b)
        });
        assert_eq!(out, 9);
        assert_eq!(*b.read_committed(), 9);
    }

    #[test]
    fn many_futures_sum() {
        let tm = tm();
        let boxes: Vec<VBox<u64>> = (0..16).map(|i| VBox::new(i as u64)).collect();
        let total = tm.atomic(|tx| {
            let futs: Vec<_> = boxes
                .chunks(4)
                .map(|chunk| {
                    let chunk: Vec<VBox<u64>> = chunk.to_vec();
                    tx.submit(move |tx| chunk.iter().map(|b| *tx.read(b)).sum::<u64>())
                })
                .collect();
            futs.iter().map(|f| *tx.eval(f)).sum::<u64>()
        });
        assert_eq!(total, (0..16).sum::<u64>());
    }

    #[test]
    fn future_result_visible_across_transactions() {
        // Fig 2: T1 submits TF and T2 evaluates it.
        let tm = tm();
        let handle_slot: Arc<parking_lot::Mutex<Option<TxFuture<u64>>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let b = VBox::new(5u64);
        let hs = Arc::clone(&handle_slot);
        let b2 = b.clone();
        tm.atomic(move |tx| {
            let f = tx.submit({
                let b = b2.clone();
                move |tx| *tx.read(&b) * 2
            });
            let _ = tx.eval(&f);
            *hs.lock() = Some(f);
        });
        let f = handle_slot.lock().take().unwrap();
        let got = tm.atomic(move |tx| *tx.eval(&f));
        assert_eq!(got, 10);
    }

    #[test]
    fn isolation_between_top_level_transactions() {
        let tm = Arc::new(tm());
        let a = VBox::new(0i64);
        let b = VBox::new(0i64);
        // Invariant: a + b == 0 (transfers move value between them).
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tm = Arc::clone(&tm);
                let (a, b) = (a.clone(), b.clone());
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        tm.atomic(|tx| {
                            let av = *tx.read(&a);
                            let bv = *tx.read(&b);
                            assert_eq!(av + bv, 0, "opacity violated");
                            tx.write(&a, av + 1);
                            tx.write(&b, bv - 1);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*a.read_committed(), 400);
        assert_eq!(*b.read_committed(), -400);
    }

    #[test]
    fn concurrent_trees_with_futures_keep_counter_exact() {
        let tm = Arc::new(tm());
        let b = VBox::new(0u64);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let tm = Arc::clone(&tm);
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        tm.atomic(|tx| {
                            let f = tx.submit({
                                let b = b.clone();
                                move |tx| *tx.read(&b)
                            });
                            let v = *tx.eval(&f);
                            tx.write(&b, v + 1);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*b.read_committed(), 150);
    }

    #[test]
    fn read_only_transaction_with_futures() {
        let tm = tm();
        let boxes: Vec<VBox<u64>> = (0..8).map(|i| VBox::new(i as u64)).collect();
        let sum = tm.atomic_ro(|tx| {
            let futs: Vec<_> = boxes
                .chunks(2)
                .map(|c| {
                    let c: Vec<_> = c.to_vec();
                    tx.submit(move |tx| c.iter().map(|b| *tx.read(b)).sum::<u64>())
                })
                .collect();
            futs.iter().map(|f| *tx.eval(f)).sum::<u64>()
        });
        assert_eq!(sum, 28);
        let s = tm.stats();
        assert_eq!(s.top_ro_commits, 1);
        assert!(s.ro_validation_skips > 0, "§IV-E skip should fire: {s:?}");
    }

    #[test]
    #[should_panic(expected = "declared read-only")]
    fn atomic_ro_rejects_writes() {
        let tm = tm();
        let b = VBox::new(0u64);
        tm.atomic_ro(|tx| tx.write(&b, 1));
    }

    #[test]
    fn user_panic_propagates_and_tree_is_cleaned() {
        let tm = tm();
        let b = VBox::new(0u64);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tm.atomic(|tx| {
                tx.write(&b, 1);
                let f = tx.submit({
                    let b = b.clone();
                    move |tx| {
                        let _ = tx.read(&b);
                        panic!("boom in future");
                    }
                });
                #[allow(unreachable_code)]
                {
                    let _: Arc<()> = tx.eval(&f);
                }
            })
        }));
        assert!(r.is_err());
        // The write must not have escaped.
        assert_eq!(*b.read_committed(), 0);
        // And the box's tentative list must be clean for future writers.
        assert!(b.cell().tentative_lock().is_empty());
        let tm2 = tm;
        tm2.atomic(|tx| tx.write(&b, 5));
        assert_eq!(*b.read_committed(), 5);
    }

    #[test]
    fn deep_nesting_matches_sequential() {
        // Build Fig 3a's shape: root forks; the future itself forks; etc.
        let tm = tm();
        let b = VBox::new(1u64);
        let out = tm.atomic(|tx| {
            let f1 = tx.submit({
                let b = b.clone();
                move |tx| {
                    let f2 = tx.submit({
                        let b = b.clone();
                        move |tx| {
                            let v = *tx.read(&b);
                            tx.write(&b, v * 2); // b = 2
                            v
                        }
                    });
                    let v2 = *tx.eval(&f2);
                    let v = *tx.read(&b); // must see b = 2
                    tx.write(&b, v + 10); // b = 12
                    v2 + v
                }
            });
            let got = *tx.eval(&f1); // 1 + 2 = 3
            let v = *tx.read(&b); // must see 12
            tx.write(&b, v + 100); // b = 112
            got + v
        });
        assert_eq!(out, 3 + 12);
        assert_eq!(*b.read_committed(), 112);
    }

    #[test]
    fn zero_worker_pool_still_completes_via_helping() {
        let tm = Rtf::builder().workers(0).build();
        let b = VBox::new(3u64);
        let out = tm.atomic(|tx| {
            let f = tx.submit({
                let b = b.clone();
                move |tx| *tx.read(&b) + 1
            });
            *tx.eval(&f)
        });
        assert_eq!(out, 4);
    }

    #[test]
    fn map_futures_preserves_item_order_and_semantics() {
        let tm = tm();
        let data: Vec<VBox<u64>> = (0..50).map(|i| VBox::new(i as u64)).collect();
        let data = std::sync::Arc::new(data);
        let d2 = std::sync::Arc::clone(&data);
        let out = tm.atomic(move |tx| {
            let d3 = std::sync::Arc::clone(&d2);
            tx.map_futures(4, (0..50usize).collect(), move |tx, i| *tx.read(&d3[*i]) + 1)
        });
        assert_eq!(out, (1..=50u64).collect::<Vec<_>>());
    }

    #[test]
    fn map_futures_with_writes_equals_sequential_loop() {
        // Each item RMWs a single accumulator: the result must be the
        // sequential prefix sums, which only holds if chunk serialization
        // follows item order.
        let tm = tm();
        let acc = VBox::new(0u64);
        let a2 = acc.clone();
        let prefix = tm.atomic(move |tx| {
            let a3 = a2.clone();
            tx.map_futures(3, (1..=12u64).collect(), move |tx, i| {
                let v = *tx.read(&a3) + i;
                tx.write(&a3, v);
                v
            })
        });
        let want: Vec<u64> = (1..=12u64)
            .scan(0, |s, i| {
                *s += i;
                Some(*s)
            })
            .collect();
        assert_eq!(prefix, want);
        assert_eq!(*acc.read_committed(), 78);
    }

    #[test]
    fn map_futures_edge_cases() {
        let tm = tm();
        let empty: Vec<u64> = tm.atomic(|tx| tx.map_futures(4, Vec::<u64>::new(), |_tx, i| *i));
        assert!(empty.is_empty());
        let single = tm.atomic(|tx| tx.map_futures(8, vec![41u64], |_tx, i| i + 1));
        assert_eq!(single, vec![42]);
        // parallelism larger than item count
        let out = tm.atomic(|tx| tx.map_futures(100, vec![1u64, 2, 3], |_tx, i| i * 10));
        assert_eq!(out, vec![10, 20, 30]);
        // parallelism zero behaves like one chunk
        let out = tm.atomic(|tx| tx.map_futures(0, vec![1u64, 2], |_tx, i| *i));
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn run_commits_and_reports_cancellation() {
        let tm = tm();
        let b = VBox::new(0u64);
        assert_eq!(
            tm.run(|tx| {
                tx.write(&b, 5);
                7u64
            })
            .unwrap(),
            7
        );
        assert_eq!(*b.read_committed(), 5);
        let r: Result<(), TxError> = tm.run(|tx| {
            tx.write(&b, 9);
            tx.cancel()
        });
        assert_eq!(r.unwrap_err(), TxError::Cancelled);
        assert_eq!(*b.read_committed(), 5, "cancelled write must not escape");
    }

    #[test]
    fn run_surfaces_future_panic_as_structured_error() {
        let tm = tm();
        let b = VBox::new(0u64);
        let err = tm
            .run(|tx| {
                tx.write(&b, 1);
                let f = tx.submit(|_tx| -> u64 { panic!("future exploded") });
                *tx.eval(&f)
            })
            .unwrap_err();
        match err {
            TxError::FuturePanicked { message } => {
                assert!(message.contains("future exploded"), "got message {message:?}")
            }
            other => panic!("expected FuturePanicked, got {other:?}"),
        }
        assert_eq!(*b.read_committed(), 0, "no effect of the failed attempt escapes");
        // The runtime stays usable.
        tm.atomic(|tx| tx.write(&b, 3));
        assert_eq!(*b.read_committed(), 3);
        assert!(tm.stats().future_panics > 0);
    }

    #[test]
    fn retry_budget_exhausts_with_structured_error() {
        let tm = Rtf::builder().workers(1).max_retries(3).build();
        let r: Result<(), TxError> = tm.run(|tx| tx.restart());
        assert_eq!(r.unwrap_err(), TxError::RetryExhausted { attempts: 3 });
        assert!(tm.stats().retries_exhausted > 0);
    }

    #[test]
    fn stall_watchdog_detects_and_aborts_a_stuck_wait() {
        let tm = Rtf::builder()
            .workers(2)
            .stall_warn(std::time::Duration::from_millis(5))
            .stall_abort(std::time::Duration::from_millis(40))
            .build();
        let r: Result<(), TxError> = tm.run(|tx| {
            let f = tx.submit(|_tx| {
                std::thread::sleep(std::time::Duration::from_millis(300));
                1u64
            });
            // Let a worker dequeue the future before eval starts waiting:
            // if eval's own helper ran the sleeping body inline, that would
            // be progress (one long help round), not a stall, and the
            // watchdog would rightly stay quiet.
            std::thread::sleep(std::time::Duration::from_millis(30));
            let _ = tx.eval(&f);
        });
        match r {
            Err(TxError::StallAborted { kind, waited_ms }) => {
                assert_eq!(kind, "future_wait");
                assert!(waited_ms >= 40);
            }
            other => panic!("expected StallAborted, got {other:?}"),
        }
        let s = tm.stats();
        assert!(s.stalls_detected > 0, "warn threshold must have fired: {s:?}");
        assert!(s.stall_aborts > 0);
    }

    #[test]
    fn fallback_mode_is_sequential_and_correct() {
        let tm = Rtf::builder().workers(2).fallback_threshold(1).build();
        // Force fallback by provoking inter-tree conflicts: two threads'
        // futures hammer the same two boxes with writes.
        let x = VBox::new(0u64);
        let tm = Arc::new(tm);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let tm = Arc::clone(&tm);
                let x = x.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        tm.atomic(|tx| {
                            let f = tx.submit({
                                let x = x.clone();
                                move |tx| {
                                    let v = *tx.read(&x);
                                    tx.write(&x, v + 1);
                                    0u8
                                }
                            });
                            let _ = tx.eval(&f);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*x.read_committed(), 200);
    }

    /// Ordered mode: concurrent clients' commits land in strict ticket
    /// order, observable through a custom event sink capturing the
    /// `TicketCommit` stream.
    #[test]
    fn ordered_mode_commit_log_is_strictly_ascending() {
        use rtf_txengine::{Event, EventSink};
        use std::sync::Mutex;
        struct Capture(Mutex<Vec<(u32, u64)>>);
        impl EventSink for Capture {
            fn event(&self, e: Event) {
                if let Event::TicketCommit { lane, seq, .. } = e {
                    self.0.lock().unwrap().push((lane, seq));
                }
            }
        }
        let cap = Arc::new(Capture(Mutex::new(Vec::new())));
        let tm = Arc::new(Rtf::builder().workers(3).ordered(1).event_sink(cap.clone()).build());
        assert!(tm.is_ordered());
        let b = VBox::new(0u64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tm = Arc::clone(&tm);
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        tm.atomic(|tx| {
                            let v = *tx.read(&b);
                            tx.write(&b, v + 1);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*b.read_committed(), 200);
        let log = cap.0.lock().unwrap();
        assert_eq!(log.len(), 200);
        assert!(
            log.windows(2).all(|w| w[0].1 < w[1].1),
            "ordered commits must be strictly ascending in seq"
        );
        let s = tm.stats();
        assert_eq!(s.ordered_commits, 200);
        assert_eq!(s.tickets_issued, 200);
        assert_eq!(s.tickets_abandoned, 0);
    }

    /// Pre-drawn tickets pin the commit order to submission order even when
    /// the transactions run on threads in reverse.
    #[test]
    fn run_ticketed_commits_in_submission_order() {
        let tm = Arc::new(Rtf::builder().workers(2).ordered(1).build());
        let log = VBox::new(Vec::<u64>::new());
        // Draw tickets 0..4 on this thread, then run them in reverse.
        let tickets: Vec<_> = (0..4u64).map(|i| (i, tm.ticket())).collect();
        let handles: Vec<_> = tickets
            .into_iter()
            .rev()
            .map(|(i, ticket)| {
                let tm = Arc::clone(&tm);
                let log = log.clone();
                std::thread::spawn(move || {
                    tm.run_ticketed(ticket, move |tx| {
                        let mut v = (*tx.read(&log)).clone();
                        v.push(i);
                        tx.write(&log, v);
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*log.read_committed(), vec![0, 1, 2, 3]);
    }

    /// A stuck predecessor ticket bounded by the armed stall watchdog: the
    /// successor surfaces `StallAborted { kind: "ticket_wait" }` instead of
    /// hanging, and abandoning the stuck ticket unwedges the lane.
    #[test]
    fn ordered_stuck_predecessor_stall_aborts_then_lane_recovers() {
        let tm = Rtf::builder()
            .workers(2)
            .ordered(1)
            .stall_warn(std::time::Duration::from_millis(10))
            .stall_abort(std::time::Duration::from_millis(80))
            .build();
        let stuck = tm.ticket(); // seq 0, never runs
        let b = VBox::new(0u64);
        let r = tm.run(|tx| {
            let v = *tx.read(&b);
            tx.write(&b, v + 1);
        });
        match r {
            Err(TxError::StallAborted { kind, waited_ms }) => {
                assert_eq!(kind, "ticket_wait");
                assert!(waited_ms >= 80);
            }
            other => panic!("expected ticket_wait stall abort, got {other:?}"),
        }
        assert_eq!(*b.read_committed(), 0, "a stalled commit must publish nothing");
        drop(stuck); // abandon seq 0: the lane skips it and seq 1's hole
        tm.atomic(|tx| {
            let v = *tx.read(&b);
            tx.write(&b, v + 1);
        });
        assert_eq!(*b.read_committed(), 1);
        let s = tm.stats();
        assert!(s.stall_aborts >= 1, "{s:?}");
        assert_eq!(s.tickets_abandoned, 2, "stalled successor + dropped predecessor: {s:?}");
    }

    /// Read-only transactions also take (and log) their turn in ordered
    /// mode, and cancellation abandons the ticket cleanly.
    #[test]
    fn ordered_mode_covers_ro_and_cancel_paths() {
        let tm = Rtf::builder().workers(2).ordered(1).build();
        let b = VBox::new(5u64);
        assert_eq!(tm.atomic_ro(|tx| *tx.read(&b)), 5);
        let r = tm.try_atomic(|tx| {
            tx.cancel();
        });
        assert!(r.is_err());
        tm.atomic(|tx| {
            let v = *tx.read(&b);
            tx.write(&b, v + 1);
        });
        let s = tm.stats();
        assert_eq!(s.tickets_issued, 3);
        assert_eq!(s.ordered_commits, 2, "ro + rw commits: {s:?}");
        assert_eq!(s.tickets_abandoned, 1, "cancelled tx: {s:?}");
        assert_eq!(s.top_ro_commits, 1);
    }
}
