//! The transactional future handle.
//!
//! Submitting a computation inside a transaction returns a [`TxFuture`]: a
//! placeholder that can be *evaluated* (blocking until the future's
//! sub-transaction commits) from anywhere — the submitting transaction, a
//! descendant, another thread, or another top-level transaction (paper §II
//! and Fig 2 use a future as a cross-transaction communication channel).
//!
//! The handle resolves when the future's sub-transaction commits *within its
//! tree*; the strong ordering semantics guarantee the value equals the one a
//! sequential execution would produce at the submission point. If the whole
//! tree re-executes (inter-tree conflict or implicit-continuation restart),
//! the re-execution creates fresh handles; a stale handle held by an outside
//! observer is *cancelled* — evaluating it panics with a descriptive message
//! (the paper leaves this corner unspecified; see README limitations).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

use rtf_txengine::TxData;

enum FutState<A> {
    Pending,
    Committed(Arc<A>),
    Cancelled,
}

struct Shared<A> {
    state: Mutex<FutState<A>>,
    cv: Condvar,
}

/// A handle to a transactional future's result.
///
/// Cloneable and sendable across threads; see the module docs for the
/// evaluation semantics.
pub struct TxFuture<A: TxData> {
    shared: Arc<Shared<A>>,
}

impl<A: TxData> Clone for TxFuture<A> {
    fn clone(&self) -> Self {
        TxFuture { shared: Arc::clone(&self.shared) }
    }
}

impl<A: TxData> TxFuture<A> {
    pub(crate) fn new_pending() -> Self {
        TxFuture {
            shared: Arc::new(Shared { state: Mutex::new(FutState::Pending), cv: Condvar::new() }),
        }
    }

    /// A handle that is already resolved (used by the sequential fallback
    /// mode, where future bodies run inline at their submission point).
    pub(crate) fn ready(value: Arc<A>) -> Self {
        TxFuture {
            shared: Arc::new(Shared {
                state: Mutex::new(FutState::Committed(value)),
                cv: Condvar::new(),
            }),
        }
    }

    pub(crate) fn complete(&self, value: Arc<A>) {
        let mut st = self.shared.state.lock();
        *st = FutState::Committed(value);
        self.shared.cv.notify_all();
    }

    pub(crate) fn cancel(&self) {
        let mut st = self.shared.state.lock();
        if matches!(*st, FutState::Pending) {
            *st = FutState::Cancelled;
            self.shared.cv.notify_all();
        }
    }

    /// Non-blocking probe: the committed value, if already available.
    pub fn try_get(&self) -> Option<Arc<A>> {
        match &*self.shared.state.lock() {
            FutState::Committed(v) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Whether the future already committed.
    pub fn is_done(&self) -> bool {
        self.try_get().is_some()
    }

    /// Blocks until the future commits; panics if the submitting tree
    /// execution was torn down (see module docs).
    ///
    /// Inside a transaction prefer [`crate::Tx::eval`], which also lets the
    /// waiting thread help execute queued futures.
    pub fn wait(&self) -> Arc<A> {
        let mut st = self.shared.state.lock();
        loop {
            match &*st {
                FutState::Committed(v) => return Arc::clone(v),
                FutState::Cancelled => panic!(
                    "evaluated a transactional future whose submitting transaction \
                     execution was aborted and re-executed; re-obtain the handle \
                     from the new execution"
                ),
                FutState::Pending => {
                    self.shared.cv.wait_for(&mut st, Duration::from_millis(1));
                }
            }
        }
    }

    /// Like [`TxFuture::wait`], but calls `help` while pending so a blocked
    /// thread keeps the pool busy (avoids pool-starvation deadlock).
    /// Returns `Err(())` if the future was cancelled (tree teardown); the
    /// caller decides how to surface that.
    pub(crate) fn wait_helping(&self, mut help: impl FnMut() -> bool) -> Result<Arc<A>, ()> {
        loop {
            {
                let mut st = self.shared.state.lock();
                match &*st {
                    FutState::Committed(v) => return Ok(Arc::clone(v)),
                    FutState::Cancelled => return Err(()),
                    FutState::Pending => {
                        // Help with the lock released; park briefly only
                        // when there is nothing to help with.
                        let helped = parking_lot::MutexGuard::unlocked(&mut st, &mut help);
                        if !helped {
                            self.shared.cv.wait_for(&mut st, Duration::from_micros(200));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_then_wait() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.complete(Arc::new(5));
        assert_eq!(*f.wait(), 5);
        assert_eq!(*f.try_get().unwrap(), 5);
        assert!(f.is_done());
    }

    #[test]
    fn ready_is_done() {
        let f = TxFuture::ready(Arc::new(9u8));
        assert!(f.is_done());
        assert_eq!(*f.wait(), 9);
    }

    #[test]
    fn wait_blocks_until_complete() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        assert!(f.try_get().is_none());
        let f2 = f.clone();
        let h = std::thread::spawn(move || *f2.wait());
        std::thread::sleep(Duration::from_millis(10));
        f.complete(Arc::new(7));
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "aborted and re-executed")]
    fn cancelled_wait_panics() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.cancel();
        let _ = f.wait();
    }

    #[test]
    fn cancel_after_complete_is_noop() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.complete(Arc::new(3));
        f.cancel();
        assert_eq!(*f.wait(), 3);
    }

    #[test]
    fn wait_helping_runs_helper() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        let f2 = f.clone();
        let helped = std::sync::atomic::AtomicU32::new(0);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            f2.complete(Arc::new(1));
        });
        let v = f
            .wait_helping(|| {
                helped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                false
            })
            .expect("not cancelled");
        assert_eq!(*v, 1);
        assert!(helped.load(std::sync::atomic::Ordering::Relaxed) > 0);
        h.join().unwrap();
    }
}
