//! The transactional future handle.
//!
//! Submitting a computation inside a transaction returns a [`TxFuture`]: a
//! placeholder that can be *evaluated* (blocking until the future's
//! sub-transaction commits) from anywhere — the submitting transaction, a
//! descendant, another thread, or another top-level transaction (paper §II
//! and Fig 2 use a future as a cross-transaction communication channel).
//!
//! The handle resolves when the future's sub-transaction commits *within its
//! tree*; the strong ordering semantics guarantee the value equals the one a
//! sequential execution would produce at the submission point. If the whole
//! tree re-executes (inter-tree conflict or implicit-continuation restart),
//! the re-execution creates fresh handles; a stale handle held by an outside
//! observer is *cancelled* — evaluating it panics with a descriptive message
//! (the paper leaves this corner unspecified; see README limitations).

// Audited `clippy::panic` exemption: this module's panics are the
// runtime's typed unwind channels (`PoisonSignal` / `CancelSignal` /
// structured `TxError` payloads) plus documented API-contract panics;
// every one is caught or surfaced at the `Rtf` boundary, never a bug trap.
#![allow(clippy::panic)]

use parking_lot::Mutex;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;

use rtf_txbase::{WaitQueue, WakerReg};
use rtf_txengine::TxData;

use crate::error::{FutureError, TxError};

enum FutState<A> {
    Pending,
    Committed(Arc<A>),
    /// Terminally failed; the reason is either [`FutureError::Cancelled`]
    /// (tree teardown/re-execution) or [`FutureError::Panicked`].
    Failed(FutureError),
}

struct Shared<A> {
    state: Mutex<FutState<A>>,
    /// Settlement waiters — parked threads (sync `wait*`) and registered
    /// wakers (`IntoFuture`) share this queue; see `rtf_txbase::wait` for
    /// the epoch protocol that keeps both backends lost-wakeup-free.
    waiters: WaitQueue,
}

/// A handle to a transactional future's result.
///
/// Cloneable and sendable across threads; see the module docs for the
/// evaluation semantics.
pub struct TxFuture<A: TxData> {
    shared: Arc<Shared<A>>,
}

impl<A: TxData> Clone for TxFuture<A> {
    fn clone(&self) -> Self {
        TxFuture { shared: Arc::clone(&self.shared) }
    }
}

impl<A: TxData> TxFuture<A> {
    pub(crate) fn new_pending() -> Self {
        TxFuture {
            shared: Arc::new(Shared {
                state: Mutex::new(FutState::Pending),
                waiters: WaitQueue::new(),
            }),
        }
    }

    /// A handle that is already resolved (used by the sequential fallback
    /// mode, where future bodies run inline at their submission point).
    pub(crate) fn ready(value: Arc<A>) -> Self {
        TxFuture {
            shared: Arc::new(Shared {
                state: Mutex::new(FutState::Committed(value)),
                waiters: WaitQueue::new(),
            }),
        }
    }

    pub(crate) fn complete(&self, value: Arc<A>) {
        {
            let mut st = self.shared.state.lock();
            *st = FutState::Committed(value);
        }
        self.shared.waiters.notify_all();
    }

    /// Marks the handle stale (tree teardown / re-execution).
    pub(crate) fn cancel(&self) {
        self.fail(FutureError::Cancelled);
    }

    /// Marks the handle failed because its task panicked.
    pub(crate) fn cancel_panicked(&self) {
        self.fail(FutureError::Panicked);
    }

    fn fail(&self, reason: FutureError) {
        debug_assert!(reason != FutureError::Pending, "Pending is not a failure");
        let failed = {
            let mut st = self.shared.state.lock();
            if matches!(*st, FutState::Pending) {
                *st = FutState::Failed(reason);
                true
            } else {
                false
            }
        };
        if failed {
            self.shared.waiters.notify_all();
        }
    }

    /// Whether the handle reached *any* terminal state (committed, cancelled
    /// or panicked) — used by the task drop guard to tell a normal exit from
    /// an abandoned one.
    pub(crate) fn is_settled(&self) -> bool {
        !matches!(*self.shared.state.lock(), FutState::Pending)
    }

    /// Non-blocking probe: the committed value, if already available.
    pub fn try_get(&self) -> Option<Arc<A>> {
        match &*self.shared.state.lock() {
            FutState::Committed(v) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Whether the future already committed.
    pub fn is_done(&self) -> bool {
        self.try_get().is_some()
    }

    /// Non-blocking, non-panicking probe of the handle's state: the value if
    /// committed, [`FutureError::Pending`] while unresolved, or the terminal
    /// failure reason. Safe to call from destructors and unwinding code.
    pub fn try_wait(&self) -> Result<Arc<A>, FutureError> {
        match &*self.shared.state.lock() {
            FutState::Committed(v) => Ok(Arc::clone(v)),
            FutState::Pending => Err(FutureError::Pending),
            FutState::Failed(reason) => Err(*reason),
        }
    }

    /// Blocks until the future reaches a terminal state; never panics.
    /// `Err` carries the failure reason ([`FutureError::Cancelled`] or
    /// [`FutureError::Panicked`]).
    pub fn wait_result(&self) -> Result<Arc<A>, FutureError> {
        loop {
            // Token before predicate: a settle landing after the probe
            // bumps the epoch, so the park below cannot sleep through it.
            let token = self.shared.waiters.epoch();
            match self.try_wait() {
                Err(FutureError::Pending) => {}
                settled => return settled,
            }
            let _ = self.shared.waiters.park(token, 0, Duration::from_millis(1));
        }
    }

    /// Blocks until the future commits; panics if the submitting tree
    /// execution was torn down (see module docs) or its task panicked.
    ///
    /// Inside a transaction prefer [`crate::Tx::eval`], which also lets the
    /// waiting thread help execute queued futures. In destructors prefer
    /// [`TxFuture::try_wait`]: when `wait` fails while the thread is already
    /// unwinding it re-panics with the plain [`FutureError`] payload —
    /// no formatting mid-unwind, and the runtime's quiet hook suppresses the
    /// duplicate report — but a panic escaping a destructor during unwind
    /// still aborts the process, by Rust's rules, no matter the payload.
    pub fn wait(&self) -> Arc<A> {
        match self.wait_result() {
            Ok(v) => v,
            Err(reason) => {
                if std::thread::panicking() {
                    std::panic::panic_any(reason);
                }
                match reason {
                    FutureError::Panicked => {
                        std::panic::panic_any(TxError::FuturePanicked { message: String::new() })
                    }
                    _ => panic!(
                        "evaluated a transactional future whose submitting transaction \
                         execution was aborted and re-executed; re-obtain the handle \
                         from the new execution"
                    ),
                }
            }
        }
    }

    /// Like [`TxFuture::wait_result`], but calls `help` while pending so a
    /// blocked thread keeps the pool busy (avoids pool-starvation deadlock).
    /// `Err` carries the failure reason; the caller decides how to surface
    /// it.
    pub(crate) fn wait_helping(
        &self,
        mut help: impl FnMut() -> bool,
    ) -> Result<Arc<A>, FutureError> {
        loop {
            let token = self.shared.waiters.epoch();
            match self.try_wait() {
                Err(FutureError::Pending) => {}
                settled => return settled,
            }
            // Help with no locks held; park briefly only when there was
            // nothing to help with (the epoch token spans the helping
            // step, so a settle during `help` still cancels the park).
            if !help() {
                let _ = self.shared.waiters.park(token, 0, Duration::from_micros(200));
            }
        }
    }

    /// Waker-backend probe: resolves like [`TxFuture::wait_result`] but
    /// registers `cx`'s waker instead of parking. Drives the
    /// [`IntoFuture`] adapter and [`crate::Rtf::run_async`]'s evaluation of
    /// child futures.
    pub(crate) fn poll_settled(
        &self,
        cx: &mut Context<'_>,
        reg: &mut WakerReg,
    ) -> Poll<Result<Arc<A>, FutureError>> {
        loop {
            let token = self.shared.waiters.epoch();
            match self.try_wait() {
                Err(FutureError::Pending) => {}
                settled => {
                    self.shared.waiters.deregister(reg);
                    return Poll::Ready(settled);
                }
            }
            if self.shared.waiters.register_waker(token, 0, cx.waker(), reg) {
                return Poll::Pending;
            }
            // Epoch advanced between probe and registration: re-probe.
        }
    }

    pub(crate) fn drop_registration(&self, reg: &mut WakerReg) {
        self.shared.waiters.deregister(reg);
    }
}

/// The pollable settlement wait created by `TxFuture`'s [`IntoFuture`]:
/// resolves to the committed value or the terminal [`FutureError`] without
/// ever blocking the polling thread.
///
/// Dropping it mid-wait withdraws the waker registration, so an abandoned
/// `await` never leaves a dead entry on the handle's wait queue.
pub struct FutureWait<A: TxData> {
    fut: TxFuture<A>,
    reg: WakerReg,
}

impl<A: TxData> std::future::Future for FutureWait<A> {
    type Output = Result<Arc<A>, FutureError>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        this.fut.poll_settled(cx, &mut this.reg)
    }
}

impl<A: TxData> Drop for FutureWait<A> {
    fn drop(&mut self) {
        self.fut.drop_registration(&mut self.reg);
    }
}

impl<A: TxData> std::future::IntoFuture for TxFuture<A> {
    type Output = Result<Arc<A>, FutureError>;
    type IntoFuture = FutureWait<A>;

    /// `handle.await` — the async equivalent of [`TxFuture::wait_result`]:
    /// no panic channel, the `Err` carries the failure reason.
    fn into_future(self) -> FutureWait<A> {
        FutureWait { fut: self, reg: WakerReg::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_then_wait() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.complete(Arc::new(5));
        assert_eq!(*f.wait(), 5);
        assert_eq!(*f.try_get().unwrap(), 5);
        assert!(f.is_done());
    }

    #[test]
    fn ready_is_done() {
        let f = TxFuture::ready(Arc::new(9u8));
        assert!(f.is_done());
        assert_eq!(*f.wait(), 9);
    }

    #[test]
    fn wait_blocks_until_complete() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        assert!(f.try_get().is_none());
        let f2 = f.clone();
        let h = std::thread::spawn(move || *f2.wait());
        std::thread::sleep(Duration::from_millis(10));
        f.complete(Arc::new(7));
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "aborted and re-executed")]
    fn cancelled_wait_panics() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.cancel();
        let _ = f.wait();
    }

    #[test]
    fn try_wait_reports_each_state_without_panicking() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        assert_eq!(f.try_wait().unwrap_err(), FutureError::Pending);
        f.complete(Arc::new(4));
        assert_eq!(*f.try_wait().unwrap(), 4);

        let g: TxFuture<u32> = TxFuture::new_pending();
        g.cancel();
        assert_eq!(g.try_wait().unwrap_err(), FutureError::Cancelled);

        let h: TxFuture<u32> = TxFuture::new_pending();
        h.cancel_panicked();
        assert_eq!(h.try_wait().unwrap_err(), FutureError::Panicked);
        assert_eq!(h.wait_result().unwrap_err(), FutureError::Panicked);
    }

    #[test]
    fn panicked_wait_panics_with_structured_payload() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.cancel_panicked();
        let payload = std::panic::catch_unwind(|| f.wait()).expect_err("must panic");
        match payload.downcast_ref::<TxError>() {
            Some(TxError::FuturePanicked { .. }) => {}
            other => panic!("expected TxError::FuturePanicked payload, got {other:?}"),
        }
    }

    #[test]
    fn wait_during_unwinding_repanics_with_plain_reason() {
        // A destructor probing a failed handle while its thread unwinds must
        // not enter the formatting panic!; it re-panics with the bare
        // `FutureError` payload (catchable, quiet-hook-suppressible).
        struct ProbeOnDrop(TxFuture<u32>, Arc<std::sync::Mutex<Option<FutureError>>>);
        impl Drop for ProbeOnDrop {
            fn drop(&mut self) {
                assert!(std::thread::panicking());
                let caught =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.0.wait()));
                let payload = caught.expect_err("wait on a failed handle still fails");
                *self.1.lock().unwrap() = payload.downcast_ref::<FutureError>().copied();
            }
        }
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.cancel();
        let seen = Arc::new(std::sync::Mutex::new(None));
        let seen2 = Arc::clone(&seen);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _probe = ProbeOnDrop(f, seen2);
            panic!("outer failure");
        }));
        assert!(result.is_err());
        assert_eq!(*seen.lock().unwrap(), Some(FutureError::Cancelled));
    }

    #[test]
    fn is_settled_tracks_terminal_states() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        assert!(!f.is_settled());
        f.complete(Arc::new(1));
        assert!(f.is_settled());
        let g: TxFuture<u32> = TxFuture::new_pending();
        g.cancel_panicked();
        assert!(g.is_settled());
    }

    #[test]
    fn cancel_after_complete_is_noop() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.complete(Arc::new(3));
        f.cancel();
        assert_eq!(*f.wait(), 3);
    }

    #[test]
    fn into_future_wakes_and_resolves() {
        use std::future::{Future, IntoFuture};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::task::{Wake, Waker};

        struct CountWake(AtomicUsize);
        impl Wake for CountWake {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let f: TxFuture<u32> = TxFuture::new_pending();
        let mut wait = Box::pin(f.clone().into_future());
        let cw = Arc::new(CountWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&cw));
        let mut cx = Context::from_waker(&waker);
        assert!(wait.as_mut().poll(&mut cx).is_pending());
        assert_eq!(cw.0.load(Ordering::SeqCst), 0);
        f.complete(Arc::new(6));
        assert_eq!(cw.0.load(Ordering::SeqCst), 1, "settle must fire the registered waker");
        match wait.as_mut().poll(&mut cx) {
            Poll::Ready(Ok(v)) => assert_eq!(*v, 6),
            other => panic!("expected Ready(Ok(6)), got {other:?}"),
        }
    }

    #[test]
    fn into_future_surfaces_failure_as_err() {
        use std::future::{Future, IntoFuture};
        use std::task::{Wake, Waker};
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let f: TxFuture<u32> = TxFuture::new_pending();
        f.cancel();
        let mut wait = Box::pin(f.into_future());
        let waker = Waker::from(Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        match wait.as_mut().poll(&mut cx) {
            Poll::Ready(Err(FutureError::Cancelled)) => {}
            other => panic!("expected Ready(Err(Cancelled)), got {other:?}"),
        }
    }

    #[test]
    fn dropped_await_withdraws_its_waker() {
        use std::future::{Future, IntoFuture};
        use std::task::{Wake, Waker};
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let f: TxFuture<u32> = TxFuture::new_pending();
        let mut wait = Box::pin(f.clone().into_future());
        let waker = Waker::from(Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        assert!(wait.as_mut().poll(&mut cx).is_pending());
        drop(wait);
        // The registration is gone: completing must not find a waiter.
        f.complete(Arc::new(1));
        assert_eq!(*f.wait(), 1);
    }

    #[test]
    fn wait_helping_runs_helper() {
        let f: TxFuture<u32> = TxFuture::new_pending();
        let f2 = f.clone();
        let helped = std::sync::atomic::AtomicU32::new(0);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            f2.complete(Arc::new(1));
        });
        let v = f
            .wait_helping(|| {
                helped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                false
            })
            .expect("not cancelled");
        assert_eq!(*v, 1);
        assert!(helped.load(std::sync::atomic::Ordering::Relaxed) > 0);
        h.join().unwrap();
    }
}
