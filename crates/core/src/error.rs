//! Structured failure surface of the runtime.
//!
//! The paper's protocol never *returns* failure — optimistic execution
//! retries until it wins. A production runtime needs the other half of the
//! story: panics contained into [`TxError::FuturePanicked`], bounded retry
//! loops reporting [`TxError::RetryExhausted`], and the starvation watchdog
//! converting a permanent stall into [`TxError::StallAborted`] instead of
//! parking forever. [`crate::Rtf::run`] is the entry point that surfaces
//! these as `Err` values; [`crate::Rtf::atomic`] keeps the panicking
//! contract for infallible callers.

use std::fmt;

/// Why a transaction could not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// The transaction observed its [`crate::CancelToken`] and stopped.
    Cancelled,
    /// A transactional future's task panicked; the tree was torn down and
    /// every waiter released. `message` describes the panic payload when it
    /// was a string (injected faults report their failpoint site).
    FuturePanicked {
        /// Panic message, when extractable (empty otherwise).
        message: String,
    },
    /// The configured retry budget ([`crate::RtfBuilder::max_retries`] /
    /// [`crate::RtfBuilder::retry_deadline`]) was exhausted before an
    /// execution validated.
    RetryExhausted {
        /// Failed attempts performed before giving up.
        attempts: u32,
    },
    /// A blocking wait stalled past `RTF_STALL_ABORT_MS` and was converted
    /// into a structured abort by the starvation watchdog.
    StallAborted {
        /// Which wait stalled (`wait_turn`, `quiescence`, `future_wait`).
        kind: &'static str,
        /// How long the waiter had been blocked, milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Cancelled => write!(f, "transaction cancelled"),
            TxError::FuturePanicked { message } if message.is_empty() => {
                write!(f, "a transactional future panicked; the tree was torn down")
            }
            TxError::FuturePanicked { message } => {
                write!(f, "a transactional future panicked ({message}); the tree was torn down")
            }
            TxError::RetryExhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} failed attempts")
            }
            TxError::StallAborted { kind, waited_ms } => {
                write!(f, "aborted after stalling {waited_ms}ms in {kind} (RTF_STALL_ABORT_MS)")
            }
        }
    }
}

impl std::error::Error for TxError {}

/// Why evaluating a [`crate::TxFuture`] handle could not produce a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FutureError {
    /// The future has not resolved yet (only returned by the non-blocking
    /// [`crate::TxFuture::try_wait`]).
    Pending,
    /// The submitting tree execution was torn down and re-executed; this
    /// handle is stale (re-obtain it from the new execution).
    Cancelled,
    /// The future's task panicked; the tree was torn down.
    Panicked,
}

impl fmt::Display for FutureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FutureError::Pending => write!(f, "transactional future not yet resolved"),
            FutureError::Cancelled => write!(
                f,
                "transactional future cancelled: the submitting transaction execution was \
                 aborted and re-executed; re-obtain the handle from the new execution"
            ),
            FutureError::Panicked => {
                write!(f, "transactional future's task panicked; the tree was torn down")
            }
        }
    }
}

impl std::error::Error for FutureError {}

/// Best-effort human-readable description of a panic payload (for
/// [`TxError::FuturePanicked::message`]): string payloads verbatim,
/// injected-fault payloads by their failpoint site, anything else empty.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(p) = payload.downcast_ref::<rtf_txfault::InjectedPanic>() {
        p.to_string()
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(TxError::Cancelled.to_string().contains("cancelled"));
        assert!(TxError::FuturePanicked { message: String::new() }.to_string().contains("panick"));
        assert!(TxError::FuturePanicked { message: "at x".into() }.to_string().contains("at x"));
        assert!(TxError::RetryExhausted { attempts: 3 }.to_string().contains('3'));
        assert!(TxError::StallAborted { kind: "wait_turn", waited_ms: 9 }
            .to_string()
            .contains("wait_turn"));
        assert!(FutureError::Pending.to_string().contains("not yet"));
        assert!(FutureError::Cancelled.to_string().contains("re-executed"));
        assert!(FutureError::Panicked.to_string().contains("panick"));
    }
}
