//! stub
