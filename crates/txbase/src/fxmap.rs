//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! Read- and write-sets are keyed by box identities (pointer-derived `usize`
//! or `u64` ids) on the transaction hot path. The standard library's SipHash
//! is needlessly slow for such keys (see the Rust Performance Book, Hashing);
//! since `rustc-hash` is not among this project's approved dependencies we
//! implement the same multiply-rotate construction from scratch.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher in the style of rustc's FxHasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&500));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn hash_distributes_sequential_keys() {
        // Sequential keys must not collapse to a few buckets: check that the
        // low byte of hashes of 0..256 takes many distinct values.
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let mut seen = FxHashSet::default();
        for i in 0..256u64 {
            seen.insert(bh.hash_one(i) & 0xff);
        }
        assert!(seen.len() > 128, "only {} distinct low bytes", seen.len());
    }

    #[test]
    fn byte_writes_match_padding_semantics() {
        use std::hash::Hash;
        let mut h1 = FxHasher::default();
        b"hello world, this is 21".hash(&mut h1);
        let mut h2 = FxHasher::default();
        b"hello world, this is 21".hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());

        let mut h3 = FxHasher::default();
        b"hello world, this is 22".hash(&mut h3);
        assert_ne!(h1.finish(), h3.finish());
    }
}
