//! Ownership records (`orec`s) for tentative versions (paper §III-A, Fig 3b).
//!
//! Every tentative version in a versioned box points to the ownership record
//! of the (sub-)transaction execution that created it. The record holds:
//!
//! * `owner` — the node that currently owns the version. The creator sets it
//!   to itself; on (sub-)commit ownership is *propagated* to the parent
//!   (Alg 4 lines 7–13), making the write visible to the parent's later
//!   children;
//! * `tx_tree_ver` — the value of the new owner's `nClock` at propagation
//!   time, compared against the reader's `ancVer` snapshot to decide
//!   visibility (paper §III-A and Alg 2);
//! * `status` — `Running` / `Committed` / `Aborted`, used by writers to
//!   decide whether the list head can be re-owned (Alg 1 line 10) and by
//!   readers to skip versions of aborted execution attempts.
//!
//! One orec exists per *execution attempt*: a re-executed sub-transaction
//! allocates a fresh orec, so stale versions of the aborted attempt can never
//! be confused with current ones.
//!
//! # Memory-ordering audit (lock-free read path)
//!
//! No field in this module uses `Relaxed`: orec fields are read on the read
//! path *outside* any lock (the visibility policies snapshot them through
//! `orec_snapshot`, and the tentative owner-tag shortcut means a reader may
//! reach them without ever taking the tentative-list mutex), so every store
//! that changes visibility is `Release` and every load is `Acquire`:
//!
//! * [`Orec::propagate_to`] stores `tx_tree_ver`, then `owner`, then
//!   `status`, all `Release`. A reader that `Acquire`-loads the *new* owner
//!   therefore also observes the matching `tx_tree_ver`; the `orec_snapshot`
//!   helper re-reads `owner` to pin the pair against a racing second
//!   propagation (ownership only ever moves to fresh node ids).
//! * The Fig 4 visibility decision "reader witnessed the propagation"
//!   additionally rides the `nClock` edge: `propagate_to` (Release stores)
//!   happens-before the parent's `nClock` bump, and a reader's `ancVer`
//!   capture `Acquire`-reads `nClock` — so `ancVer[A] >= tx_tree_ver`
//!   implies the reader sees the propagated owner and value.
//! * [`Orec::mark_aborted`] is `Release` so that a scrub that *observed*
//!   the abort (Acquire load) cannot act on a stale entry state.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::ids::NodeId;

/// Lifecycle of the transaction execution owning a set of writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OrecStatus {
    /// The owning execution is still running (or waiting to validate).
    Running = 0,
    /// The owning execution committed; its writes were propagated upward.
    Committed = 1,
    /// The owning execution aborted; its writes must be ignored.
    Aborted = 2,
}

impl OrecStatus {
    fn from_u8(v: u8) -> OrecStatus {
        match v {
            0 => OrecStatus::Running,
            1 => OrecStatus::Committed,
            2 => OrecStatus::Aborted,
            _ => unreachable!("invalid orec status"),
        }
    }
}

/// Ownership record shared (via `Arc`) by all tentative versions created by
/// one execution attempt of a (sub-)transaction.
#[derive(Debug)]
pub struct Orec {
    owner: AtomicU64,
    tx_tree_ver: AtomicU64,
    status: AtomicU8,
}

impl Orec {
    /// New record owned by `creator`, in the `Running` state.
    pub fn new(creator: NodeId) -> Self {
        Orec {
            owner: AtomicU64::new(creator.raw()),
            tx_tree_ver: AtomicU64::new(0),
            status: AtomicU8::new(OrecStatus::Running as u8),
        }
    }

    /// Current owner node.
    #[inline]
    pub fn owner(&self) -> NodeId {
        NodeId(self.owner.load(Ordering::Acquire))
    }

    /// `nClock` value of the owner at the time ownership was propagated to
    /// it; `0` while still owned by the creator.
    #[inline]
    pub fn tx_tree_ver(&self) -> u64 {
        self.tx_tree_ver.load(Ordering::Acquire)
    }

    /// Current status.
    #[inline]
    pub fn status(&self) -> OrecStatus {
        OrecStatus::from_u8(self.status.load(Ordering::Acquire))
    }

    /// Propagates ownership to `new_owner` whose `nClock` is now
    /// `new_owner_nclock` (Alg 4 lines 8–9 / 11–12). Also (re-)marks the
    /// record committed: propagation only happens on sub-commit.
    pub fn propagate_to(&self, new_owner: NodeId, new_owner_nclock: u64) {
        self.tx_tree_ver.store(new_owner_nclock, Ordering::Release);
        self.owner.store(new_owner.raw(), Ordering::Release);
        self.status.store(OrecStatus::Committed as u8, Ordering::Release);
    }

    /// Marks the execution committed without changing ownership (used for a
    /// root adopting final ownership at top-level commit).
    pub fn mark_committed(&self) {
        self.status.store(OrecStatus::Committed as u8, Ordering::Release);
    }

    /// Marks the execution aborted (Alg 4 lines 22–25): its tentative
    /// versions become invisible and reclaimable.
    pub fn mark_aborted(&self) {
        self.status.store(OrecStatus::Aborted as u8, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::new_node_id;

    #[test]
    fn lifecycle_running_committed() {
        let me = new_node_id();
        let parent = new_node_id();
        let o = Orec::new(me);
        assert_eq!(o.owner(), me);
        assert_eq!(o.status(), OrecStatus::Running);
        assert_eq!(o.tx_tree_ver(), 0);

        o.propagate_to(parent, 1);
        assert_eq!(o.owner(), parent);
        assert_eq!(o.status(), OrecStatus::Committed);
        assert_eq!(o.tx_tree_ver(), 1);

        // Second propagation (grand-parent adoption) keeps working.
        let gp = new_node_id();
        o.propagate_to(gp, 2);
        assert_eq!(o.owner(), gp);
        assert_eq!(o.tx_tree_ver(), 2);
    }

    #[test]
    fn abort_is_terminal_for_visibility() {
        let o = Orec::new(new_node_id());
        o.mark_aborted();
        assert_eq!(o.status(), OrecStatus::Aborted);
    }

    #[test]
    fn mark_committed_preserves_owner() {
        let me = new_node_id();
        let o = Orec::new(me);
        o.mark_committed();
        assert_eq!(o.owner(), me);
        assert_eq!(o.status(), OrecStatus::Committed);
    }
}
