//! Serialization-order keys for the strong ordering semantics (paper §II).
//!
//! Under strong ordering a transactional future is serialized at its
//! *submission* point: the parallel execution must be equivalent to a
//! sequential run in which every future body executes synchronously where it
//! was submitted. For the binary transaction trees of the paper this is the
//! in-order traversal: a node's pre-submission writes, then its future
//! subtree, then its continuation subtree.
//!
//! We encode positions as integer sequences ([`OrderKey`]) compared
//! lexicographically with the natural prefix-first rule (Rust slice `Ord`),
//! generalizing the paper's `follows()` function (§IV-A):
//!
//! * the root has the empty key;
//! * the `i`-th fork (0-based) of a node with path `p` produces a future
//!   child `p ++ [3i+1]` and a continuation child `p ++ [3i+2]`;
//! * a *write* by the node itself after `i` completed forks carries the key
//!   `p ++ [3i]`.
//!
//! The write-epoch component makes post-join writes of a parent serialize
//! *after* its joined children without materializing extra continuation
//! nodes: in the paper a parent halts forever at the submit point, so its
//! trees are strictly binary; our `fork` API returns control to the parent
//! after the subtree commits, which is semantically a fresh continuation.

use parking_lot::Mutex;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Duration;

use crate::wait::{Parked, WaitQueue};

/// A position in the serialization order of one transaction tree.
///
/// Keys are small (depth of the future-nesting, typically < 8) and compared
/// lexicographically; clones are cheap relative to transactional bookkeeping.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct OrderKey(Vec<u32>);

impl OrderKey {
    /// Key of the tree root (top-level transaction).
    pub fn root() -> Self {
        OrderKey(Vec::new())
    }

    /// Path of the *future* child created by this node's `fork_idx`-th fork
    /// (0-based).
    pub fn child_future(&self, fork_idx: u32) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(3 * fork_idx + 1);
        OrderKey(v)
    }

    /// Path of the *continuation* child created by this node's
    /// `fork_idx`-th fork (0-based).
    pub fn child_cont(&self, fork_idx: u32) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(3 * fork_idx + 2);
        OrderKey(v)
    }

    /// Key of a write performed by this node itself after `forks_completed`
    /// forks have joined (0 before the first fork).
    pub fn write_key(&self, forks_completed: u32) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(3 * forks_completed);
        OrderKey(v)
    }

    /// Whether `self` is a strict prefix of `other`, i.e. the node at `self`
    /// is a tree ancestor of the node at `other`.
    pub fn is_ancestor_of(&self, other: &OrderKey) -> bool {
        self.0.len() < other.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Depth in the tree (root = 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Raw components (used by tests and diagnostics).
    pub fn components(&self) -> &[u32] {
        &self.0
    }
}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    /// Lexicographic, prefix-first: exactly the strong-ordering serialization.
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Debug for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k")?;
        f.debug_list().entries(self.0.iter()).finish()
    }
}

/// The paper's `follows(T, T')`: does the write at key `a` serialize *after*
/// the write at key `b`?
#[inline]
pub fn follows(a: &OrderKey, b: &OrderKey) -> bool {
    a > b
}

// ---------------------------------------------------------------------------
// Cross-transaction commit tickets (ordered-execution lane).
//
// OrderKey serializes sub-transactions *inside* one tree; tickets generalize
// the same waitTurn discipline *across* top-level transactions ("Processing
// Transactions in a Predefined Order", PAPERS.md): each top-level transaction
// in the ordered lane draws a ticket at start, executes speculatively out of
// order, and commits strictly in ticket order within its lane. With one lane
// the commit order is a global total order; with `n` lanes only intra-lane
// order is enforced (a sharded dispenser trades determinism granularity for
// dispatch scalability, exactly like the sharded sequencers in that line of
// work).

/// A commit ticket: position `seq` in lane `lane` of a [`TicketDispenser`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ticket {
    /// Lane index within the dispenser.
    pub lane: u32,
    /// Zero-based position within the lane; commits happen in ascending
    /// `seq` order per lane.
    pub seq: u64,
}

struct LaneState {
    /// The seq whose turn it is to commit next.
    next_commit: u64,
    /// Out-of-order retirements ahead of `next_commit` (abandoned tickets):
    /// holes are skipped so a dead predecessor never wedges its successors.
    retired: BTreeSet<u64>,
}

/// Outcome of one counted turn wait ([`TicketLane::wait_turn_counted`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TurnWait {
    /// `true` when the turn arrived, `false` when `keep` abandoned the wait.
    pub arrived: bool,
    /// Wakeups this waiter received whose turn had *not* arrived — with the
    /// successor-only `notify_where` wake this should stay at (or very
    /// near) zero, and the exported `ticket_spurious_wakes` counter proves
    /// it.
    pub spurious_wakes: u64,
}

/// One FIFO commit lane: a monotone issue counter plus a turn pointer.
///
/// `wait_turn` mirrors the intra-tree waitTurn (Alg 3) shape: the waiter
/// alternates between *helping* (running queued work so the predecessor can
/// finish) and a bounded park on the lane's [`WaitQueue`], and a `keep`
/// callback lets the caller abandon the wait (stall watchdog,
/// cancellation). Waiters queue keyed by their seq; `retire` wakes only the
/// successors whose turn actually arrived (`key <= next_commit`) instead of
/// the old condvar's whole-herd `notify_all`.
pub struct TicketLane {
    issue: AtomicU64,
    state: Mutex<LaneState>,
    waiters: WaitQueue,
    spurious: AtomicU64,
}

impl Default for TicketLane {
    fn default() -> Self {
        TicketLane {
            issue: AtomicU64::new(0),
            state: Mutex::new(LaneState { next_commit: 0, retired: BTreeSet::new() }),
            waiters: WaitQueue::new(),
            spurious: AtomicU64::new(0),
        }
    }
}

impl TicketLane {
    /// Draws the next seq in this lane (0, 1, 2, ...).
    pub fn issue(&self) -> u64 {
        self.issue.fetch_add(1, AtomicOrdering::Relaxed)
    }

    /// Total tickets issued so far.
    pub fn issued(&self) -> u64 {
        self.issue.load(AtomicOrdering::Relaxed)
    }

    /// The seq whose turn it currently is.
    pub fn turn(&self) -> u64 {
        self.state.lock().next_commit
    }

    /// Blocks until it is `seq`'s turn to commit. Returns `true` when the
    /// turn arrived, `false` when `keep` asked to abandon the wait.
    ///
    /// While waiting, `help` is invoked with no lane lock held; it should
    /// try to execute one unit of pending work (e.g. a task-pool job that the
    /// predecessor is blocked on) and return whether it did anything. When
    /// nothing could be helped the waiter parks briefly on the lane's wait
    /// queue instead of spinning. See [`TicketLane::wait_turn_counted`] for
    /// the variant that reports spurious wakeups.
    pub fn wait_turn(
        &self,
        seq: u64,
        help: impl FnMut() -> bool,
        keep: impl FnMut() -> bool,
    ) -> bool {
        self.wait_turn_counted(seq, help, keep).arrived
    }

    /// [`TicketLane::wait_turn`], additionally reporting how many wakeups
    /// this waiter received before its turn actually arrived (spurious for
    /// it). The count also accumulates into [`TicketLane::spurious_wakes`].
    pub fn wait_turn_counted(
        &self,
        seq: u64,
        mut help: impl FnMut() -> bool,
        mut keep: impl FnMut() -> bool,
    ) -> TurnWait {
        let mut spurious = 0u64;
        let arrived = loop {
            // Epoch before predicate: a retire landing after the check but
            // before the park bumps the epoch, so the park returns Raced
            // instead of sleeping through its own wakeup.
            let token = self.waiters.epoch();
            if self.state.lock().next_commit >= seq {
                break true;
            }
            if !keep() {
                break false;
            }
            if help() {
                continue;
            }
            if self.waiters.park(token, seq, Duration::from_micros(200)) == Parked::Notified
                && self.state.lock().next_commit < seq
            {
                spurious += 1;
            }
        };
        if spurious > 0 {
            self.spurious.fetch_add(spurious, AtomicOrdering::Relaxed);
        }
        TurnWait { arrived, spurious_wakes: spurious }
    }

    /// Total wakeups delivered to waiters whose turn had not arrived. The
    /// successor-only wake keeps this at zero in steady state; the counter
    /// exists to prove that (and to surface regressions).
    pub fn spurious_wakes(&self) -> u64 {
        self.spurious.load(AtomicOrdering::Relaxed)
    }

    /// Retires `seq`: if it held the turn, the turn advances past it and past
    /// any already-retired successors (hole skipping); if it retires early
    /// (abandoned before its turn) it is remembered so the turn can later
    /// skip over it. Idempotent for already-passed seqs.
    ///
    /// Wakes only the waiters whose turn arrived (`key <= next_commit`,
    /// covering successors reached across swept holes) — never the whole
    /// queue.
    pub fn retire(&self, seq: u64) {
        let next = {
            let mut g = self.state.lock();
            let st = &mut *g;
            if seq == st.next_commit {
                st.next_commit += 1;
                while st.retired.remove(&st.next_commit) {
                    st.next_commit += 1;
                }
                Some(st.next_commit)
            } else {
                if seq > st.next_commit {
                    st.retired.insert(seq);
                }
                None
            }
        };
        if let Some(next) = next {
            self.waiters.notify_where(|key| key <= next);
        }
    }
}

/// A sharded ticket dispenser: `shards` independent [`TicketLane`]s with
/// round-robin assignment. `shards == 1` yields a global total commit order.
pub struct TicketDispenser {
    lanes: Vec<TicketLane>,
    rr: AtomicU64,
}

impl TicketDispenser {
    /// Creates a dispenser with `shards` lanes (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        TicketDispenser {
            lanes: (0..shards).map(|_| TicketLane::default()).collect(),
            rr: AtomicU64::new(0),
        }
    }

    /// Number of lanes.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Draws a ticket from the next lane in round-robin order.
    pub fn acquire(&self) -> Ticket {
        let lane = (self.rr.fetch_add(1, AtomicOrdering::Relaxed) % self.lanes.len() as u64) as u32;
        Ticket { lane, seq: self.lanes[lane as usize].issue() }
    }

    /// The lane backing tickets with `Ticket::lane == lane`.
    pub fn lane(&self, lane: u32) -> &TicketLane {
        &self.lanes[lane as usize]
    }
}

impl fmt::Debug for TicketDispenser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketDispenser").field("shards", &self.lanes.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rebuilds Fig 3a of the paper: T0 submits TF1 (which submits TF2 and
    /// continues as TC3) and continues as TC4 (which submits TF5 and
    /// continues as TC6). Checks the serialization order stated in §II:
    /// TC4 after TF1, TF2, TC3; everything in T0's left subtree before the
    /// right subtree.
    #[test]
    fn fig3a_serialization_order() {
        let t0 = OrderKey::root();
        let tf1 = t0.child_future(0);
        let tc4 = t0.child_cont(0);
        let tf2 = tf1.child_future(0);
        let tc3 = tf1.child_cont(0);
        let tf5 = tc4.child_future(0);
        let tc6 = tc4.child_cont(0);

        // Writes by each node before any nested fork:
        let w = |k: &OrderKey| k.write_key(0);

        let mut order = vec![w(&tc6), w(&tf5), w(&tc4), w(&tc3), w(&tf2), w(&tf1), w(&t0)];
        order.sort();
        let expect = vec![w(&t0), w(&tf1), w(&tf2), w(&tc3), w(&tc4), w(&tf5), w(&tc6)];
        assert_eq!(order, expect);
    }

    #[test]
    fn parent_pre_fork_writes_precede_children() {
        let x = OrderKey::root();
        let pre = x.write_key(0);
        let f = x.child_future(0).write_key(0);
        let c = x.child_cont(0).write_key(0);
        assert!(pre < f && f < c);
        assert!(follows(&c, &f));
        assert!(follows(&f, &pre));
        assert!(!follows(&pre, &f));
    }

    #[test]
    fn parent_post_join_writes_follow_children() {
        let x = OrderKey::root();
        let post = x.write_key(1); // after the first fork joined
        let f = x.child_future(0).write_key(0);
        let deep_c = x.child_cont(0).child_cont(0).child_cont(0).write_key(5);
        assert!(follows(&post, &f));
        assert!(follows(&post, &deep_c));
    }

    #[test]
    fn sequential_forks_from_one_node_interleave_correctly() {
        let x = OrderKey::root();
        let w0 = x.write_key(0);
        let f1 = x.child_future(0).write_key(0);
        let c1 = x.child_cont(0).write_key(0);
        let w1 = x.write_key(1);
        let f2 = x.child_future(1).write_key(0);
        let c2 = x.child_cont(1).write_key(0);
        let w2 = x.write_key(2);
        let mut v = vec![&w2, &c2, &f2, &w1, &c1, &f1, &w0];
        v.sort();
        assert_eq!(v, vec![&w0, &f1, &c1, &w1, &f2, &c2, &w2]);
    }

    #[test]
    fn ancestor_detection() {
        let x = OrderKey::root();
        let f = x.child_future(0);
        let fc = f.child_cont(0);
        assert!(x.is_ancestor_of(&f));
        assert!(x.is_ancestor_of(&fc));
        assert!(f.is_ancestor_of(&fc));
        assert!(!f.is_ancestor_of(&x));
        assert!(!f.is_ancestor_of(&f.clone()));
        assert!(!x.child_cont(0).is_ancestor_of(&fc));
        assert_eq!(fc.depth(), 2);
    }

    /// Table-driven check of the prefix-first lexicographic rule: for each
    /// pair of raw component sequences, the expected `Ordering` is exactly
    /// what slice comparison mandates — a strict prefix sorts *before* any
    /// extension (the ancestor serializes first), and the first differing
    /// component decides otherwise.
    #[test]
    fn prefix_first_lexicographic_table() {
        fn key(parts: &[u32]) -> OrderKey {
            let mut k = OrderKey::root();
            // Reconstruct through the public API: each component `c` is
            // 3i (write), 3i+1 (future), or 3i+2 (continuation).
            for &c in parts {
                k = match c % 3 {
                    1 => k.child_future(c / 3),
                    2 => k.child_cont(c / 3),
                    _ => unreachable!("interior components are child edges"),
                };
            }
            k
        }
        let cases: &[(&[u32], &[u32], Ordering)] = &[
            (&[], &[], Ordering::Equal),
            (&[], &[1], Ordering::Less),  // root before its future child
            (&[], &[2], Ordering::Less),  // root before its continuation
            (&[1], &[2], Ordering::Less), // future before continuation
            (&[1], &[1, 1], Ordering::Less), // prefix-first: ancestor first
            (&[1, 2], &[1, 1], Ordering::Greater), // first differing component wins
            (&[2], &[1, 2, 2], Ordering::Greater), // whole subtrees ordered by the fork edge
            (&[1, 1], &[1, 1], Ordering::Equal),
            (&[4], &[2], Ordering::Greater), // second fork's future after first continuation
            (&[1, 5], &[1, 4], Ordering::Greater),
        ];
        for (a, b, want) in cases {
            let (ka, kb) = (key(a), key(b));
            assert_eq!(ka.cmp(&kb), *want, "cmp({ka:?}, {kb:?})");
            assert_eq!(kb.cmp(&ka), want.reverse(), "reverse cmp({kb:?}, {ka:?})");
            assert_eq!(ka.components(), *a);
        }
    }

    /// Table-driven check of the epoch-suffix scheme: the `i`-th fork of a
    /// node appends `3i+1` (future) / `3i+2` (continuation), and a write
    /// after `i` joined forks appends `3i` — so writes, the fork's subtree,
    /// and the next epoch's writes tile the order without gaps or overlap.
    #[test]
    fn epoch_suffix_scheme_table() {
        let node = OrderKey::root().child_future(0); // arbitrary interior node
        let cases: &[(u32, u32, u32, u32)] = &[
            // (epoch i, write suffix, future suffix, continuation suffix)
            (0, 0, 1, 2),
            (1, 3, 4, 5),
            (2, 6, 7, 8),
            (7, 21, 22, 23),
        ];
        for &(i, w, f, c) in cases {
            assert_eq!(node.write_key(i).components().last(), Some(&w));
            assert_eq!(node.child_future(i).components().last(), Some(&f));
            assert_eq!(node.child_cont(i).components().last(), Some(&c));
            // Within one epoch: write < future subtree < continuation subtree.
            assert!(node.write_key(i) < node.child_future(i));
            assert!(node.child_future(i) < node.child_cont(i));
            // Across epochs: everything in epoch i precedes the next write.
            assert!(node.child_cont(i) < node.write_key(i + 1));
        }
        // Depth and ancestry are unaffected by the epoch arithmetic.
        assert_eq!(node.write_key(7).depth(), node.depth() + 1);
        assert!(node.is_ancestor_of(&node.child_future(7)));
    }

    /// `follows()` edge cases as a table: equal keys, ancestor/descendant
    /// pairs in both directions, siblings, and cross-subtree pairs.
    #[test]
    fn follows_edge_case_table() {
        let root = OrderKey::root();
        let f = root.child_future(0);
        let c = root.child_cont(0);
        let fw = f.write_key(0);
        let deep = c.child_future(0).child_cont(2).write_key(1);
        let cases: &[(&OrderKey, &OrderKey, bool, &str)] = &[
            (&root, &root, false, "a key never follows itself"),
            (&f, &root, true, "child follows ancestor"),
            (&root, &f, false, "ancestor never follows descendant"),
            (&c, &f, true, "continuation follows future sibling"),
            (&f, &c, false, "future does not follow its continuation"),
            (&fw, &f, true, "a node's write follows the node key itself"),
            (&deep, &fw, true, "right subtree follows all of left subtree"),
            (&fw, &deep, false, "and not vice versa"),
        ];
        for (a, b, want, why) in cases {
            assert_eq!(follows(a, b), *want, "follows({a:?}, {b:?}): {why}");
            // follows is a strict order: irreflexive and asymmetric.
            if **a != **b {
                assert_ne!(follows(a, b), follows(b, a), "asymmetry for {a:?}, {b:?}");
            }
        }
    }

    #[test]
    fn future_subtree_entirely_precedes_continuation_subtree() {
        // "all the sub-transactions in the right sub-tree of T0 can only
        //  commit after all the sub-transactions in T0's left sub-tree" (§II)
        let t0 = OrderKey::root();
        let left = t0.child_future(0);
        let right = t0.child_cont(0);
        // deepest rightmost element of the left subtree:
        let left_max = left.child_cont(0).child_cont(3).write_key(9);
        // leftmost element of the right subtree:
        let right_min = right.child_future(0).child_future(0).write_key(0);
        assert!(left_max < right_min);
    }

    // --- ticket lane / dispenser ---

    #[test]
    fn tickets_issue_in_order_and_first_turn_is_immediate() {
        let lane = TicketLane::default();
        assert_eq!(lane.issue(), 0);
        assert_eq!(lane.issue(), 1);
        assert_eq!(lane.issued(), 2);
        assert_eq!(lane.turn(), 0);
        // seq 0's turn is immediate: help/keep must not even be consulted.
        assert!(lane.wait_turn(0, || panic!("no help needed"), || panic!("no keep needed")));
    }

    #[test]
    fn successor_blocks_until_predecessor_retires() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let lane = Arc::new(TicketLane::default());
        let (s0, s1) = (lane.issue(), lane.issue());
        let committed0 = Arc::new(AtomicBool::new(false));
        let t = {
            let (lane, committed0) = (Arc::clone(&lane), Arc::clone(&committed0));
            std::thread::spawn(move || {
                assert!(lane.wait_turn(s1, || false, || true));
                // The wait may only end after the predecessor retired.
                assert!(committed0.load(AtomicOrdering::Acquire));
                lane.retire(s1);
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        committed0.store(true, AtomicOrdering::Release);
        lane.retire(s0);
        t.join().unwrap();
        assert_eq!(lane.turn(), 2);
    }

    #[test]
    fn out_of_order_retirement_skips_holes() {
        let lane = TicketLane::default();
        let seqs: Vec<u64> = (0..5).map(|_| lane.issue()).collect();
        // 2, 3 and 1 abandon before their turn; nothing moves yet.
        lane.retire(seqs[2]);
        lane.retire(seqs[3]);
        lane.retire(seqs[1]);
        assert_eq!(lane.turn(), 0);
        // Retiring 0 must sweep the turn all the way to 4.
        lane.retire(seqs[0]);
        assert_eq!(lane.turn(), 4);
        assert!(lane.wait_turn(seqs[4], || false, || true));
        lane.retire(seqs[4]);
        assert_eq!(lane.turn(), 5);
        // Double-retire of a passed seq is a no-op.
        lane.retire(seqs[2]);
        assert_eq!(lane.turn(), 5);
    }

    #[test]
    fn keep_false_abandons_the_wait() {
        let lane = TicketLane::default();
        let _s0 = lane.issue();
        let s1 = lane.issue();
        let mut polls = 0;
        let ok = lane.wait_turn(
            s1,
            || false,
            || {
                polls += 1;
                polls < 3
            },
        );
        assert!(!ok, "wait must report abandonment");
        assert_eq!(lane.turn(), 0, "abandoning a wait must not retire the ticket");
    }

    #[test]
    fn helping_is_invoked_outside_the_lane_lock() {
        use std::sync::Arc;
        let lane = Arc::new(TicketLane::default());
        let s0 = lane.issue();
        let s1 = lane.issue();
        // The helper itself retires the predecessor — it could not do that
        // if the lane lock were still held around `help`.
        let lane2 = Arc::clone(&lane);
        let mut done = false;
        assert!(lane.wait_turn(
            s1,
            move || {
                if !done {
                    lane2.retire(s0);
                    done = true;
                }
                true
            },
            || true,
        ));
    }

    #[test]
    fn retire_wakes_only_the_successor_not_the_herd() {
        use std::sync::Arc;
        let lane = Arc::new(TicketLane::default());
        let seqs: Vec<u64> = (0..5).map(|_| lane.issue()).collect();
        let hs: Vec<_> = seqs[1..]
            .iter()
            .map(|&s| {
                let lane = Arc::clone(&lane);
                std::thread::spawn(move || {
                    let w = lane.wait_turn_counted(s, || false, || true);
                    assert!(w.arrived);
                    lane.retire(s);
                    w.spurious_wakes
                })
            })
            .collect();
        // Let the herd queue up, then release the chain.
        std::thread::sleep(Duration::from_millis(10));
        lane.retire(seqs[0]);
        let spurious: u64 = hs.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(lane.turn(), 5);
        // Keyed notify_where(key <= next) never wakes a waiter before its
        // turn, so nobody observes a wakeup with the predicate still false.
        assert_eq!(spurious, 0, "successor-only wake must not produce spurious wakeups");
        assert_eq!(lane.spurious_wakes(), 0);
    }

    #[test]
    fn dispenser_round_robins_lanes_and_sequences_within_each() {
        let d = TicketDispenser::new(3);
        assert_eq!(d.shards(), 3);
        let tickets: Vec<Ticket> = (0..6).map(|_| d.acquire()).collect();
        let lanes: Vec<u32> = tickets.iter().map(|t| t.lane).collect();
        assert_eq!(lanes, vec![0, 1, 2, 0, 1, 2]);
        let seqs: Vec<u64> = tickets.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(d.lane(0).issued(), 2);
    }

    #[test]
    fn dispenser_clamps_zero_shards_to_one() {
        let d = TicketDispenser::new(0);
        assert_eq!(d.shards(), 1);
        let t = d.acquire();
        assert_eq!((t.lane, t.seq), (0, 0));
    }

    #[test]
    fn concurrent_lane_traffic_commits_in_seq_order() {
        use std::sync::Arc;
        let lane = Arc::new(TicketLane::default());
        let log = Arc::new(Mutex::new(Vec::new()));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let lane = Arc::clone(&lane);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let seq = lane.issue();
                        assert!(lane.wait_turn(seq, || false, || true));
                        log.lock().push(seq);
                        lane.retire(seq);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let log = log.lock();
        assert_eq!(log.len(), 400);
        assert!(log.windows(2).all(|w| w[0] < w[1]), "commit log must be strictly ascending");
    }
}
