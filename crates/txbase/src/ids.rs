//! Identifiers used across the transactional-memory stack.
//!
//! All identifiers are plain `u64` newtypes allocated from process-wide
//! monotonic counters. They are cheap to copy, hash and store inside atomic
//! fields (ownership records store a raw [`NodeId`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot / commit version number drawn from the global version clock.
///
/// Version `0` is the initial snapshot: every box's initial value commits at
/// version `0` and every transaction started before any commit reads it.
pub type Version = u64;

/// Identifier of one *node* of a transaction tree: the top-level (root)
/// transaction, a transactional future, or a continuation.
///
/// Node ids are unique across the whole process and across re-executions:
/// every execution *attempt* of a sub-transaction gets a fresh node id, which
/// lets visibility checks distinguish writes of an aborted previous attempt
/// from writes of the current one (paper §IV-B, read rule (1)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

/// Identifier of a transaction *tree* (one per top-level transaction
/// attempt). Used to detect inter-tree conflicts on tentative lists.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeId(pub u64);

/// Unique identity of one written value (permanent or tentative version).
///
/// Read-sets record the token of the version they observed; validation
/// re-resolves the read and compares tokens, which is equivalent to the
/// paper's "does the version coincide with the one in the read-set" check
/// without comparing values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WriteToken(pub u64);

impl NodeId {
    /// Sentinel id that never names a real node.
    pub const NONE: NodeId = NodeId(0);

    /// Raw integer value (for storage in atomics).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl TreeId {
    /// Sentinel id that never names a real tree.
    pub const NONE: TreeId = TreeId(0);
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for TreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for WriteToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

static NODE_IDS: AtomicU64 = AtomicU64::new(1);
static TREE_IDS: AtomicU64 = AtomicU64::new(1);
static WRITE_TOKENS: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique [`NodeId`].
#[inline]
pub fn new_node_id() -> NodeId {
    NodeId(NODE_IDS.fetch_add(1, Ordering::Relaxed))
}

/// Allocates a fresh process-unique [`TreeId`].
#[inline]
pub fn new_tree_id() -> TreeId {
    TreeId(TREE_IDS.fetch_add(1, Ordering::Relaxed))
}

/// Allocates a fresh process-unique [`WriteToken`].
#[inline]
pub fn new_write_token() -> WriteToken {
    WriteToken(WRITE_TOKENS.fetch_add(1, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let a = new_node_id();
        let b = new_node_id();
        assert!(b.0 > a.0);
        let t1 = new_tree_id();
        let t2 = new_tree_id();
        assert_ne!(t1, t2);
        let w1 = new_write_token();
        let w2 = new_write_token();
        assert!(w2 > w1);
    }

    #[test]
    fn sentinels_never_collide_with_fresh_ids() {
        assert_ne!(new_node_id(), NodeId::NONE);
        assert_ne!(new_tree_id(), TreeId::NONE);
    }

    #[test]
    fn ids_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..1000).map(|_| new_node_id().0).collect::<Vec<_>>()))
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
