//! Unified blocking primitives: every wait/park point in the stack funnels
//! through one of two abstractions, each able to hold either a parked OS
//! thread or an async task's [`Waker`]:
//!
//! * [`WaitCell`] — a single-waiter oneshot slot with the atomic state
//!   machine `Empty → Registered(waker-or-thread) → Notified`. Used where
//!   exactly one waiter awaits exactly one completion (the async
//!   front-end's per-transaction completion cell).
//! * [`WaitQueue`] — a keyed multi-waiter queue with an *epoch* protocol
//!   that makes the registered/notified race lost-wakeup-free without
//!   holding any lock across the caller's predicate check. Used by the
//!   ticket lane, intra-tree `waitTurn`, future settlement, teardown
//!   quiescence and the task-pool idle park.
//!
//! ## The epoch protocol (lost-wakeup freedom)
//!
//! A condvar couples the predicate's mutex to the wait; [`WaitQueue`]
//! decouples them so wakers (which cannot block) fit the same shape. The
//! waiter side is:
//!
//! ```text
//! loop {
//!     let token = q.epoch();          // 1. sample BEFORE the predicate
//!     if predicate() { break }        // 2. check under the caller's lock
//!     q.park(token, key, timeout);    // 3. sleeps only if epoch unchanged
//! }
//! ```
//!
//! Every notifier bumps the epoch under the waiters lock *before* waking —
//! even when no waiter matched. A notification that lands between steps 2
//! and 3 therefore changes the epoch, `park` observes the mismatch under
//! the waiters lock and returns [`Parked::Raced`] without sleeping, and the
//! loop re-checks the predicate. The same token check guards
//! [`WaitQueue::register_waker`], so an async waiter can never park a waker
//! against a notification that already happened.
//!
//! ## Help-before-register
//!
//! These types deliberately do **not** run helping closures themselves: the
//! caller attempts its bounded helping step between the failed predicate
//! check and the park/register (see `TicketLane::wait_turn`,
//! `Node::wait_nclock_at_least`). Work executed while helping may retire
//! the predecessor and notify; the epoch token spans the helping step, so
//! the subsequent park still cannot lose that wakeup.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::task::Waker;
use std::time::Duration;

use parking_lot::Mutex;

/// One registered waiter: a parked thread or an async task.
///
/// Both wake paths are non-blocking and safe to invoke from any context
/// (`Thread::unpark` and `Waker::wake` never block), so notifiers may hold
/// unrelated locks.
#[derive(Debug)]
pub enum WaiterHandle {
    /// A thread parked via `std::thread::park_timeout`.
    Thread(std::thread::Thread),
    /// An async task; waking schedules its executor to re-poll.
    Waker(Waker),
}

impl WaiterHandle {
    /// Handle for the calling thread (the thread-park backend).
    pub fn current_thread() -> WaiterHandle {
        WaiterHandle::Thread(std::thread::current())
    }

    fn wake(self) {
        match self {
            WaiterHandle::Thread(t) => t.unpark(),
            WaiterHandle::Waker(w) => w.wake(),
        }
    }
}

const EMPTY: u8 = 0;
const REGISTERED: u8 = 1;
const NOTIFIED: u8 = 2;

/// Single-waiter oneshot notification cell.
///
/// State machine: `Empty → Registered → Notified`, with `Notified` latched
/// (a late [`WaitCell::register`] observes it and refuses to park) until
/// explicitly consumed by [`WaitCell::take_notified`]. The registered
/// handle lives in a small mutex-protected slot; the state byte is the
/// lock-free fast path ([`WaitCell::is_notified`]).
#[derive(Debug, Default)]
pub struct WaitCell {
    state: AtomicU8,
    slot: Mutex<Option<WaiterHandle>>,
}

impl WaitCell {
    /// A fresh, empty cell.
    pub fn new() -> WaitCell {
        WaitCell::default()
    }

    /// Registers `handle` to be woken by the next [`WaitCell::notify`].
    ///
    /// Returns `false` when the cell is already notified — the caller must
    /// not park; its predicate is ready. Re-registering replaces the
    /// previous handle (an async task re-polling with a new waker).
    pub fn register(&self, handle: WaiterHandle) -> bool {
        let mut slot = self.slot.lock();
        if self.state.load(Ordering::Acquire) == NOTIFIED {
            return false;
        }
        *slot = Some(handle);
        self.state.store(REGISTERED, Ordering::Release);
        true
    }

    /// Transitions to `Notified` and wakes the registered waiter, if any.
    ///
    /// Returns whether a waiter was actually woken (used to report
    /// `WakerFired` only for real handoffs). Idempotent: later notifies
    /// find the state latched and no handle to wake.
    pub fn notify(&self) -> bool {
        let handle = {
            let mut slot = self.slot.lock();
            let prev = self.state.swap(NOTIFIED, Ordering::AcqRel);
            if prev == REGISTERED {
                slot.take()
            } else {
                None
            }
        };
        match handle {
            Some(h) => {
                h.wake();
                true
            }
            None => false,
        }
    }

    /// Lock-free check for a pending notification.
    pub fn is_notified(&self) -> bool {
        self.state.load(Ordering::Acquire) == NOTIFIED
    }

    /// Consumes a pending notification, returning whether there was one
    /// (resets `Notified → Empty` so the cell can be reused).
    pub fn take_notified(&self) -> bool {
        let mut _slot = self.slot.lock();
        self.state.compare_exchange(NOTIFIED, EMPTY, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Withdraws a registration that was never notified (waiter dropped or
    /// gave up). A concurrent notify that already took the handle wins; the
    /// latched `Notified` state is left untouched.
    pub fn unregister(&self) {
        let mut slot = self.slot.lock();
        if self.state.load(Ordering::Acquire) == REGISTERED {
            *slot = None;
            self.state.store(EMPTY, Ordering::Release);
        }
    }
}

/// How a [`WaitQueue::park`] call ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Parked {
    /// A notifier removed and woke this waiter. If the caller's predicate
    /// is still false afterwards, the wakeup was *spurious* for it (e.g. a
    /// broad `notify_all` on a keyed queue).
    Notified,
    /// The bounded sleep elapsed (or the OS unparked spuriously) with the
    /// entry still queued; the waiter removed itself.
    TimedOut,
    /// The epoch advanced between the caller's predicate check and the
    /// park: a notification raced in, so the waiter never slept. Re-check
    /// the predicate.
    Raced,
}

struct QueueWaiter {
    id: u64,
    key: u64,
    handle: WaiterHandle,
}

/// An async waiter's registration in a [`WaitQueue`], enabling in-place
/// waker replacement across polls and removal on drop/give-up via
/// [`WaitQueue::deregister`].
#[derive(Debug, Default)]
pub struct WakerReg {
    id: Option<u64>,
}

impl WakerReg {
    /// A registration that is not (yet) enqueued anywhere.
    pub fn new() -> WakerReg {
        WakerReg::default()
    }

    /// Whether this registration currently sits in a queue.
    pub fn is_registered(&self) -> bool {
        self.id.is_some()
    }
}

/// Keyed multi-waiter wait queue with epoch-based lost-wakeup freedom.
///
/// Each waiter carries a `u64` key with caller-defined meaning (ticket seq,
/// nclock threshold, 0 for unkeyed queues); notifiers can wake everyone
/// ([`WaitQueue::notify_all`]), one waiter ([`WaitQueue::notify_one`]), or
/// exactly the keys whose predicate became true
/// ([`WaitQueue::notify_where`]) — the targeted wake that fixes the ticket
/// lane's thundering herd.
pub struct WaitQueue {
    /// Bumped by every notifier under the waiters lock; sampled lock-free
    /// by waiters before their predicate check (see module docs).
    epoch: AtomicU64,
    /// Mirror of `waiters.len()`, maintained under the lock, so hot paths
    /// (task-pool spawn) can skip the lock when nobody is parked.
    len: AtomicUsize,
    next_id: AtomicU64,
    waiters: Mutex<Vec<QueueWaiter>>,
}

impl Default for WaitQueue {
    fn default() -> Self {
        WaitQueue {
            epoch: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            waiters: Mutex::new(Vec::new()),
        }
    }
}

impl std::fmt::Debug for WaitQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitQueue")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("waiters", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl WaitQueue {
    /// A fresh, empty queue.
    pub fn new() -> WaitQueue {
        WaitQueue::default()
    }

    /// The current notification epoch. Sample **before** checking the wait
    /// predicate and pass the sample to [`WaitQueue::park`] /
    /// [`WaitQueue::register_waker`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether any waiter is currently enqueued (lock-free; racy by
    /// nature — callers use it only as a fast-path gate before an optional
    /// notify, never for correctness).
    pub fn has_waiters(&self) -> bool {
        self.len.load(Ordering::Acquire) > 0
    }

    /// Parks the calling thread for at most `timeout`, keyed by `key`,
    /// unless the epoch moved past `token` since the caller's predicate
    /// check (in which case it returns [`Parked::Raced`] immediately).
    pub fn park(&self, token: u64, key: u64, timeout: Duration) -> Parked {
        let id = {
            let mut q = self.waiters.lock();
            if self.epoch.load(Ordering::Relaxed) != token {
                return Parked::Raced;
            }
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            q.push(QueueWaiter { id, key, handle: WaiterHandle::current_thread() });
            self.len.store(q.len(), Ordering::Release);
            id
        };
        std::thread::park_timeout(timeout);
        let mut q = self.waiters.lock();
        match q.iter().position(|w| w.id == id) {
            Some(i) => {
                // Still enqueued: the sleep ended on its own (timeout or a
                // stray OS unpark); withdraw the entry ourselves.
                q.swap_remove(i);
                self.len.store(q.len(), Ordering::Release);
                Parked::TimedOut
            }
            // A notifier removed (and woke) us.
            None => Parked::Notified,
        }
    }

    /// Registers `waker` to be woken by the next matching notify, unless
    /// the epoch moved past `token` (returns `false`: re-check the
    /// predicate and re-register with a fresh token).
    ///
    /// `reg` carries the waiter's identity across polls: while the entry is
    /// still queued, the waker and key are replaced in place; once a
    /// notifier consumed it, a fresh entry is created. The caller owns the
    /// registration's lifetime and must [`WaitQueue::deregister`] on
    /// drop/give-up so an abandoned task never accumulates dead entries.
    pub fn register_waker(&self, token: u64, key: u64, waker: &Waker, reg: &mut WakerReg) -> bool {
        let mut q = self.waiters.lock();
        if self.epoch.load(Ordering::Relaxed) != token {
            return false;
        }
        if let Some(id) = reg.id {
            if let Some(w) = q.iter_mut().find(|w| w.id == id) {
                w.key = key;
                w.handle = WaiterHandle::Waker(waker.clone());
                return true;
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        q.push(QueueWaiter { id, key, handle: WaiterHandle::Waker(waker.clone()) });
        self.len.store(q.len(), Ordering::Release);
        reg.id = Some(id);
        true
    }

    /// Withdraws `reg`'s entry if it is still queued (waiter dropped or
    /// settled through another path). Safe to call redundantly.
    pub fn deregister(&self, reg: &mut WakerReg) {
        if let Some(id) = reg.id.take() {
            let mut q = self.waiters.lock();
            if let Some(i) = q.iter().position(|w| w.id == id) {
                q.swap_remove(i);
                self.len.store(q.len(), Ordering::Release);
            }
        }
    }

    /// Wakes every waiter whose key satisfies `pred`, returning how many
    /// were woken. Always advances the epoch — even with zero matches — so
    /// racing parkers re-check their predicate instead of sleeping.
    pub fn notify_where(&self, mut pred: impl FnMut(u64) -> bool) -> usize {
        let woken = {
            let mut q = self.waiters.lock();
            self.epoch.fetch_add(1, Ordering::Release);
            let mut woken = Vec::new();
            let mut i = 0;
            while i < q.len() {
                if pred(q[i].key) {
                    woken.push(q.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            self.len.store(q.len(), Ordering::Release);
            woken
        };
        let n = woken.len();
        for w in woken {
            w.handle.wake();
        }
        n
    }

    /// Wakes every waiter. Returns how many were woken.
    pub fn notify_all(&self) -> usize {
        self.notify_where(|_| true)
    }

    /// Wakes one arbitrary waiter (task-pool idle wake). Returns whether
    /// anyone was woken; the epoch advances either way.
    pub fn notify_one(&self) -> bool {
        let woken = {
            let mut q = self.waiters.lock();
            self.epoch.fetch_add(1, Ordering::Release);
            let w = if q.is_empty() { None } else { Some(q.swap_remove(0)) };
            self.len.store(q.len(), Ordering::Release);
            w
        };
        match woken {
            Some(w) => {
                w.handle.wake();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::task::Wake;

    struct CountWake(AtomicUsize);
    impl Wake for CountWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
    fn count_waker() -> (Arc<CountWake>, Waker) {
        let cw = Arc::new(CountWake(AtomicUsize::new(0)));
        (Arc::clone(&cw), Waker::from(Arc::clone(&cw)))
    }

    #[test]
    fn cell_notify_before_register_refuses_to_park() {
        let cell = WaitCell::new();
        assert!(!cell.notify(), "nobody to wake yet");
        assert!(cell.is_notified());
        assert!(!cell.register(WaiterHandle::current_thread()), "latched notify must refuse");
        assert!(cell.take_notified());
        assert!(!cell.take_notified(), "consumed exactly once");
        assert!(cell.register(WaiterHandle::current_thread()), "reusable after take");
    }

    #[test]
    fn cell_notify_wakes_registered_waker_once() {
        let cell = WaitCell::new();
        let (cw, waker) = count_waker();
        assert!(cell.register(WaiterHandle::Waker(waker)));
        assert!(cell.notify(), "first notify hands off to the waiter");
        assert!(!cell.notify(), "second notify finds nobody");
        assert_eq!(cw.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cell_reregister_replaces_the_handle() {
        let cell = WaitCell::new();
        let (cw1, w1) = count_waker();
        let (cw2, w2) = count_waker();
        assert!(cell.register(WaiterHandle::Waker(w1)));
        assert!(cell.register(WaiterHandle::Waker(w2)));
        assert!(cell.notify());
        assert_eq!(cw1.0.load(Ordering::SeqCst), 0, "stale waker must not fire");
        assert_eq!(cw2.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cell_unregister_withdraws_quietly() {
        let cell = WaitCell::new();
        let (cw, w) = count_waker();
        assert!(cell.register(WaiterHandle::Waker(w)));
        cell.unregister();
        assert!(!cell.notify(), "withdrawn waiter must not count as woken");
        assert_eq!(cw.0.load(Ordering::SeqCst), 0);
        assert!(cell.is_notified(), "the notification itself still latches");
    }

    #[test]
    fn cell_thread_roundtrip() {
        let cell = Arc::new(WaitCell::new());
        let c2 = Arc::clone(&cell);
        let t = std::thread::spawn(move || {
            while !c2.is_notified() {
                if c2.register(WaiterHandle::current_thread()) {
                    std::thread::park_timeout(Duration::from_millis(50));
                }
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        cell.notify();
        t.join().unwrap();
    }

    #[test]
    fn queue_park_races_with_notify_without_losing_wakeups() {
        // The module-doc protocol end to end: a notify landing between the
        // predicate check and the park must surface as Raced, not a sleep.
        let q = WaitQueue::new();
        let token = q.epoch();
        assert_eq!(q.notify_all(), 0, "epoch bumps even with no waiters");
        let begin = std::time::Instant::now();
        let outcome = q.park(token, 0, Duration::from_secs(5));
        assert_eq!(outcome, Parked::Raced);
        assert!(begin.elapsed() < Duration::from_secs(1), "Raced must not sleep");
    }

    #[test]
    fn queue_notify_where_wakes_only_matching_keys() {
        let q = Arc::new(WaitQueue::new());
        let released = Arc::new(AtomicU64::new(0));
        let exited = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = [3u64, 7, 9]
            .into_iter()
            .map(|key| {
                let q = Arc::clone(&q);
                let released = Arc::clone(&released);
                let exited = Arc::clone(&exited);
                std::thread::spawn(move || loop {
                    let token = q.epoch();
                    if released.load(Ordering::Acquire) >= key {
                        exited.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                    let _ = q.park(token, key, Duration::from_secs(10));
                })
            })
            .collect();
        while q.len.load(Ordering::Acquire) < 3 {
            std::thread::yield_now();
        }
        assert!(q.has_waiters());
        // Release only keys <= 7: waiter 9 must stay parked however often
        // the keyed notify repeats.
        released.store(7, Ordering::Release);
        while exited.load(Ordering::SeqCst) < 2 {
            q.notify_where(|k| k <= 7);
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(exited.load(Ordering::SeqCst), 2, "keyed notify must not wake waiter 9");
        released.store(9, Ordering::Release);
        while exited.load(Ordering::SeqCst) < 3 {
            q.notify_all();
            std::thread::yield_now();
        }
        for h in hs {
            h.join().unwrap();
        }
    }

    #[test]
    fn queue_register_waker_respects_epoch_and_replaces_in_place() {
        let q = WaitQueue::new();
        let (cw, waker) = count_waker();
        let mut reg = WakerReg::new();
        let stale = q.epoch();
        q.notify_all();
        assert!(!q.register_waker(stale, 1, &waker, &mut reg), "stale token must refuse");
        assert!(!reg.is_registered());
        let token = q.epoch();
        assert!(q.register_waker(token, 1, &waker, &mut reg));
        assert!(reg.is_registered());
        // Re-poll with a new waker: in-place replacement, still one entry.
        let (cw2, waker2) = count_waker();
        let token = q.epoch();
        assert!(q.register_waker(token, 2, &waker2, &mut reg));
        assert_eq!(q.notify_where(|k| k == 2), 1);
        assert_eq!(cw.0.load(Ordering::SeqCst), 0, "replaced waker must not fire");
        assert_eq!(cw2.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn queue_deregister_removes_the_entry() {
        let q = WaitQueue::new();
        let (cw, waker) = count_waker();
        let mut reg = WakerReg::new();
        let token = q.epoch();
        assert!(q.register_waker(token, 0, &waker, &mut reg));
        q.deregister(&mut reg);
        assert!(!reg.is_registered());
        assert_eq!(q.notify_all(), 0);
        assert_eq!(cw.0.load(Ordering::SeqCst), 0);
        q.deregister(&mut reg); // redundant deregister is a no-op
    }

    #[test]
    fn queue_timeout_self_removes() {
        let q = WaitQueue::new();
        let token = q.epoch();
        assert_eq!(q.park(token, 0, Duration::from_millis(1)), Parked::TimedOut);
        assert!(!q.has_waiters(), "timed-out waiter must not leak its entry");
    }
}
