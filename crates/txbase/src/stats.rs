//! Cache-padded statistics counters for the TM runtime.
//!
//! The evaluation section of the paper reports throughput, execution time
//! and *abort rate* (Figs 5 and 6); these counters are the raw material. The
//! counters are grouped in one struct so a `Rtf` instance (and each
//! benchmark run) can own an isolated set, and they are cache-padded so that
//! hot-path increments from different threads do not false-share.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$sm:meta])* $name:ident),+ $(,)?) => {
        /// Runtime event counters (one instance per TM).
        #[derive(Debug, Default)]
        pub struct TmStats {
            $($(#[$sm])* pub(crate) $name: CachePadded<AtomicU64>,)+
        }

        /// A point-in-time copy of [`TmStats`].
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct StatSnapshot {
            $($(#[$sm])* pub $name: u64,)+
        }

        impl TmStats {
            $(
                /// Increments the counter by 1.
                #[inline]
                pub fn $name(&self) {
                    self.$name.fetch_add(1, Ordering::Relaxed);
                }
            )+

            /// Adds to an arbitrary counter by name — used by the timing
            /// accumulators below (kept out of the macro to keep increment
            /// call sites terse).
            #[inline]
            pub fn add_wait_turn_ns(&self, ns: u64) {
                self.wait_turn_ns.fetch_add(ns, Ordering::Relaxed);
            }

            /// Accumulates sub-transaction validation time.
            #[inline]
            pub fn add_validation_ns(&self, ns: u64) {
                self.validation_ns.fetch_add(ns, Ordering::Relaxed);
            }

            /// Adds a batch of GC-trimmed versions.
            #[inline]
            pub fn add_versions_gced(&self, n: u64) {
                self.versions_gced.fetch_add(n, Ordering::Relaxed);
            }

            /// Adds a batch of fence-deferred helping attempts.
            #[inline]
            pub fn add_pool_fence_deferrals(&self, n: u64) {
                self.pool_fence_deferrals.fetch_add(n, Ordering::Relaxed);
            }

            /// Adds a transaction's batch of fast-path reads. Per-read
            /// increments on a shared line would serialize the very reads
            /// the fast path unserializes, so transactions count locally
            /// and flush once at commit/drop.
            #[inline]
            pub fn add_read_fast(&self, n: u64) {
                self.read_fast.fetch_add(n, Ordering::Relaxed);
            }

            /// Adds a transaction's batch of slow-path reads.
            #[inline]
            pub fn add_read_slow(&self, n: u64) {
                self.read_slow.fetch_add(n, Ordering::Relaxed);
            }

            /// Accumulates time spent waiting for an ordered-lane ticket's
            /// turn.
            #[inline]
            pub fn add_ticket_wait_ns(&self, ns: u64) {
                self.ticket_wait_ns.fetch_add(ns, Ordering::Relaxed);
            }

            /// Adds one wait's batch of spurious ordered-lane wakeups
            /// (counted per wait, flushed once when the turn arrives).
            #[inline]
            pub fn add_ticket_spurious_wakes(&self, n: u64) {
                self.ticket_spurious_wakes.fetch_add(n, Ordering::Relaxed);
            }

            /// Adds a transaction's batch of `orec_snapshot` retries (full
            /// re-reads forced by a racing ownership propagation). Batched
            /// like the read-path counters: the snapshot sits on the
            /// lock-free read path.
            #[inline]
            pub fn add_orec_snapshot_retries(&self, n: u64) {
                self.orec_snapshot_retries.fetch_add(n, Ordering::Relaxed);
            }

            /// Copies all counters.
            pub fn snapshot(&self) -> StatSnapshot {
                StatSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }

        impl StatSnapshot {
            /// Per-field difference `self - earlier` (saturating).
            pub fn since(&self, earlier: &StatSnapshot) -> StatSnapshot {
                StatSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }
        }
    };
}

counters! {
    /// Top-level read-write transactions committed.
    top_commits,
    /// Top-level read-only transactions committed (validation skipped).
    top_ro_commits,
    /// Top-level transactions aborted at commit-time validation.
    top_validation_aborts,
    /// Whole-tree aborts caused by an inter-tree tentative-list conflict
    /// (the paper's `ownedByAnotherTree` path).
    inter_tree_aborts,
    /// Top-level re-executions that ran in sequential fallback mode.
    fallback_runs,
    /// Sub-transactions (futures + continuations) committed.
    sub_commits,
    /// Sub-transactions aborted at validation (missed a preceding sibling's
    /// write) and re-executed — the partial-rollback path.
    sub_validation_aborts,
    /// Implicit continuations that failed validation and had to restart the
    /// whole top-level transaction (FCC substitution, DESIGN.md D1).
    continuation_restarts,
    /// Transactional futures submitted.
    futures_submitted,
    /// Read-only sub-transactions that skipped validation (§IV-E).
    ro_validation_skips,
    /// Read-only sub-transactions that could not skip validation.
    ro_validation_taken,
    /// Commit records written back by a helping thread (not their owner).
    helped_writebacks,
    /// Permanent versions trimmed by the version GC.
    versions_gced,
    /// Nanoseconds spent blocked in `waitTurn` (strong ordering's wait
    /// rules, Alg 3) — the direct cost of the ordering discipline.
    wait_turn_ns,
    /// Nanoseconds spent in sub-transaction read-set validation.
    validation_ns,
    /// Queued pool tasks run inline by a blocked or idle helping thread.
    pool_helped_tasks,
    /// Queued pool tasks a helping attempt had to defer because the
    /// helper's fence stack forbade them (order-bounded helping).
    pool_fence_deferrals,
    /// Snapshot reads served by the wait-free fast path (head version at or
    /// below the snapshot, or a local/tentative hit that never walked the
    /// permanent list). Flushed in per-transaction batches, not per read.
    read_fast,
    /// Snapshot reads that fell back to the lock-free version-list walk
    /// (snapshot older than the head version).
    read_slow,
    /// Blocking waits (waitTurn / quiescence / future wait) the starvation
    /// watchdog flagged as stalled past the report threshold.
    stalls_detected,
    /// Permanently stalled waits converted into structured aborts
    /// (`RTF_STALL_ABORT_MS` exceeded).
    stall_aborts,
    /// Pool tasks whose panic was contained by the worker/helper
    /// `catch_unwind` (the worker survived).
    pool_task_panics,
    /// Transactional future tasks whose panic was converted into a
    /// structured cancellation instead of a hang.
    future_panics,
    /// Retry drivers that exhausted their attempt/deadline budget.
    retries_exhausted,
    /// `orec_snapshot` re-reads forced by a racing ownership propagation
    /// (flushed in per-transaction batches with the read-path counters).
    orec_snapshot_retries,
    /// Commit tickets issued by the ordered-execution lane's dispenser.
    tickets_issued,
    /// Top-level transactions committed through the ordered lane (in strict
    /// per-lane ticket order).
    ordered_commits,
    /// Tickets abandoned before commit (abort, panic, retry exhaustion or
    /// stall) — the lane skipped over them.
    tickets_abandoned,
    /// Nanoseconds spent waiting for a ticket's turn in the ordered lane
    /// (the cross-transaction analogue of `wait_turn_ns`).
    ticket_wait_ns,
    /// Ordered-lane waiters woken by a `notify` whose turn had still not
    /// arrived (successor-only wakeups should keep this near zero; a herd
    /// shows up here).
    ticket_spurious_wakes,
    /// Async task wakers registered at a blocking site (the waker backend
    /// of the unified wait layer).
    wakers_registered,
    /// Registered wakers fired by a completion/notify path.
    wakers_fired,
    /// `Future::poll` calls on the async front-end's transaction futures
    /// (`TxRun`).
    async_polls,
    /// Polls of an already-registered transaction future that found the
    /// result still pending — the executor woke it for nothing (a spurious
    /// wake, or a wake raced by another helper).
    async_spurious_polls,
}

impl StatSnapshot {
    /// Total top-level commits (read-write + read-only).
    pub fn commits(&self) -> u64 {
        self.top_commits + self.top_ro_commits
    }

    /// Total top-level aborts (validation + inter-tree).
    pub fn top_aborts(&self) -> u64 {
        self.top_validation_aborts + self.inter_tree_aborts + self.continuation_restarts
    }

    /// Abort rate over top-level attempts: aborts / (commits + aborts).
    pub fn top_abort_rate(&self) -> f64 {
        let a = self.top_aborts() as f64;
        let c = self.commits() as f64;
        if a + c == 0.0 {
            0.0
        } else {
            a / (a + c)
        }
    }

    /// Mean number of executions per committed top-level transaction
    /// (1.0 = never re-executed).
    pub fn executions_per_commit(&self) -> f64 {
        let c = self.commits() as f64;
        if c == 0.0 {
            0.0
        } else {
            (self.commits() + self.top_aborts()) as f64 / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_count() {
        let s = TmStats::default();
        s.top_commits();
        s.top_commits();
        s.sub_commits();
        let snap = s.snapshot();
        assert_eq!(snap.top_commits, 2);
        assert_eq!(snap.sub_commits, 1);
        assert_eq!(snap.top_aborts(), 0);
        assert_eq!(snap.commits(), 2);
    }

    #[test]
    fn since_subtracts() {
        let s = TmStats::default();
        s.top_commits();
        let a = s.snapshot();
        s.top_commits();
        s.inter_tree_aborts();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.top_commits, 1);
        assert_eq!(d.inter_tree_aborts, 1);
    }

    #[test]
    fn derived_rates() {
        let s = TmStats::default();
        for _ in 0..3 {
            s.top_commits();
        }
        s.top_validation_aborts();
        let snap = s.snapshot();
        assert!((snap.top_abort_rate() - 0.25).abs() < 1e-9);
        assert!((snap.executions_per_commit() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let s = Arc::new(TmStats::default());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.sub_commits();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().sub_commits, 40_000);
    }

    #[test]
    fn timing_accumulators_add() {
        let s = TmStats::default();
        s.add_wait_turn_ns(120);
        s.add_wait_turn_ns(30);
        s.add_validation_ns(7);
        let snap = s.snapshot();
        assert_eq!(snap.wait_turn_ns, 150);
        assert_eq!(snap.validation_ns, 7);
    }

    #[test]
    fn zero_rates_are_zero() {
        let snap = TmStats::default().snapshot();
        assert_eq!(snap.top_abort_rate(), 0.0);
        assert_eq!(snap.executions_per_commit(), 0.0);
    }
}
