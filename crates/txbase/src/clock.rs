//! The global version clock and the active-transaction registry.
//!
//! Every top-level transaction in JTF receives, at begin time, the version
//! number of the latest committed read-write transaction; this establishes
//! the data snapshot the transaction observes (paper §III-A). The clock is
//! published *after* a commit's write-back completes, so readers that see
//! version `v` are guaranteed to find every version `<= v` in the permanent
//! lists.
//!
//! The [`ActiveTxnRegistry`] tracks the start version of every live
//! transaction in padded per-slot atomics; its minimum is the watermark under
//! which old permanent versions may be garbage collected (JVSTM-style version
//! GC).
//!
//! # Memory-ordering audit (lock-free read path)
//!
//! The `VBox` permanent lists are read with zero locks, so the orderings in
//! this module are the *only* synchronization between a commit's write-back
//! and a reader's snapshot lookup. The required chain:
//!
//! 1. write-back installs version `v` into each written cell with a
//!    `Release` head-CAS (or a `Release` splice under the cell's structural
//!    flag);
//! 2. [`GlobalClock::publish`]`(v)` then CAS-stores the clock with
//!    `Release` — ordered after every store of step 1;
//! 3. a reader's [`GlobalClock::now`] is `Acquire`: reading `v`
//!    synchronizes-with the publishing CAS, so every version `<= v` of every
//!    written cell is visible before the reader walks any list. This is the
//!    invariant "a snapshot obtained from the clock can always be resolved".
//!
//! Each `Relaxed` in this module, and why it is sufficient:
//!
//! * [`GlobalClock::publish`]'s initial load and CAS-failure ordering — the
//!   loaded value only seeds the monotone-max retry loop; the sole
//!   publication edge is the *successful* CAS, which is `Release`.
//! * [`ActiveTxnRegistry`]'s `next` counter (`fetch_add(Relaxed)`) — a
//!   round-robin placement hint; slot claiming itself is the `AcqRel` CAS.
//! * [`ActiveTxnRegistry::active_count`] — diagnostics only; never feeds a
//!   GC or visibility decision.
//!
//! The registration/GC edge must be stronger, and is: slot claim is an
//! `AcqRel` CAS, [`ActiveTxnRegistry::min_active`] scans with `Acquire`, and
//! deregistration stores `FREE` with `Release`. Combined with registering
//! *before* taking the start snapshot (see `TopTxn::new`) this yields the
//! watermark safety invariant the version GC relies on: every watermark ever
//! computed is at or below the snapshot of every live *and future*
//! transaction — a registration publishes a clock value no newer than the
//! snapshot its owner then takes, and `min_active` is bounded by the clock
//! value passed as `fallback`, which only advances. Hence trimming below
//! the newest version at or below any watermark can never detach a version
//! a resolvable snapshot still needs.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::ids::Version;

/// Monotonic clock of committed read-write top-level transactions.
#[derive(Debug)]
pub struct GlobalClock {
    now: CachePadded<AtomicU64>,
}

impl GlobalClock {
    /// Creates a clock at version `0` (the initial snapshot).
    pub fn new() -> Self {
        GlobalClock { now: CachePadded::new(AtomicU64::new(0)) }
    }

    /// Current snapshot version: the latest fully written-back commit.
    #[inline]
    pub fn now(&self) -> Version {
        self.now.load(Ordering::Acquire)
    }

    /// Publishes `v` as completed. Called once per commit record after its
    /// write-back finished; helping threads may race, so the clock only moves
    /// forward (monotone max).
    #[inline]
    pub fn publish(&self, v: Version) {
        let mut cur = self.now.load(Ordering::Relaxed);
        while cur < v {
            match self.now.compare_exchange_weak(cur, v, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

const REGISTRY_SLOTS: usize = 128;
const FREE: u64 = u64::MAX;

/// Registry of the start versions of in-flight transactions.
///
/// A transaction registers its start version when it begins and deregisters
/// on commit/abort. [`ActiveTxnRegistry::min_active`] returns the smallest
/// registered version (or the supplied `fallback` when none is registered),
/// which bounds the oldest snapshot any live transaction can still read:
/// permanent versions strictly older than the watermark (other than the most
/// recent one at or below it) are unreachable and can be trimmed.
#[derive(Debug)]
pub struct ActiveTxnRegistry {
    slots: Box<[CachePadded<AtomicU64>]>,
    next: CachePadded<AtomicU64>,
}

/// RAII registration handle; deregisters on drop.
#[derive(Debug)]
pub struct Registration<'a> {
    registry: &'a ActiveTxnRegistry,
    slot: usize,
}

impl ActiveTxnRegistry {
    /// Creates a registry with a fixed number of padded slots.
    pub fn new() -> Self {
        let slots = (0..REGISTRY_SLOTS)
            .map(|_| CachePadded::new(AtomicU64::new(FREE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ActiveTxnRegistry { slots, next: CachePadded::new(AtomicU64::new(0)) }
    }

    /// Registers a transaction that started at `version`; the returned guard
    /// deregisters it when dropped.
    pub fn register(&self, version: Version) -> Registration<'_> {
        debug_assert_ne!(version, FREE);
        // Round-robin claim of a free slot; with more concurrent transactions
        // than slots we spin — in practice thread counts are far below 128.
        loop {
            let start = self.next.fetch_add(1, Ordering::Relaxed) as usize;
            for off in 0..self.slots.len() {
                let idx = (start + off) % self.slots.len();
                if self.slots[idx]
                    .compare_exchange(FREE, version, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return Registration { registry: self, slot: idx };
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Minimum start version among live transactions, or `fallback` when no
    /// transaction is registered.
    pub fn min_active(&self, fallback: Version) -> Version {
        let mut min = FREE;
        for s in self.slots.iter() {
            let v = s.load(Ordering::Acquire);
            if v < min {
                min = v;
            }
        }
        if min == FREE {
            fallback
        } else {
            min
        }
    }

    /// Number of currently registered transactions (for diagnostics).
    pub fn active_count(&self) -> usize {
        self.slots.iter().filter(|s| s.load(Ordering::Relaxed) != FREE).count()
    }
}

impl Default for ActiveTxnRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Registration<'_> {
    fn drop(&mut self) {
        self.registry.slots[self.slot].store(FREE, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clock_is_monotone_under_racing_publishes() {
        let clock = Arc::new(GlobalClock::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        clock.publish(i * 4 + t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now(), 999 * 4 + 3);
        clock.publish(5); // stale publish must not move the clock back
        assert_eq!(clock.now(), 999 * 4 + 3);
    }

    #[test]
    fn registry_tracks_minimum() {
        let reg = ActiveTxnRegistry::new();
        assert_eq!(reg.min_active(42), 42);
        let a = reg.register(10);
        let b = reg.register(7);
        let c = reg.register(30);
        assert_eq!(reg.min_active(0), 7);
        assert_eq!(reg.active_count(), 3);
        drop(b);
        assert_eq!(reg.min_active(0), 10);
        drop(a);
        drop(c);
        assert_eq!(reg.min_active(99), 99);
        assert_eq!(reg.active_count(), 0);
    }

    #[test]
    fn registry_handles_slot_churn() {
        let reg = Arc::new(ActiveTxnRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let r = reg.register(t * 1000 + i + 1);
                        assert!(reg.min_active(u64::MAX - 1) <= t * 1000 + i + 1);
                        drop(r);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.active_count(), 0);
    }
}
