//! Metadata layer shared by the `rtf` transactional-memory stack.
//!
//! This crate implements the bookkeeping vocabulary of the JTF paper
//! ("The Future(s) of Transactional Memory", ICPP 2016):
//!
//! * [`ids`] — identifiers for transactions, tree nodes and writes;
//! * [`clock`] — the global version clock that orders top-level commits and
//!   the active-transaction registry used for version garbage collection;
//! * [`order`] — serialization-order keys encoding the paper's *strong
//!   ordering semantics* (a future serializes at its submission point), and
//!   the `follows()` comparison of §IV-A;
//! * [`orec`] — ownership records attached to tentative versions (Fig 3b);
//! * [`stats`] — cache-padded counters for commits, aborts and re-executions;
//! * [`wait`] — the unified blocking primitives ([`WaitCell`]/[`WaitQueue`])
//!   every wait/park point in the stack is built on, able to hold either a
//!   parked thread or an async task's waker.
//!
//! Nothing in this crate touches user values; it is pure metadata and is
//! reused by the `rtf-mvstm` substrate and the `rtf` core library.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod clock;
pub mod fxmap;
pub mod ids;
pub mod order;
pub mod orec;
pub mod stats;
pub mod wait;

pub use clock::{ActiveTxnRegistry, GlobalClock};
pub use fxmap::{FxHashMap, FxHashSet};
pub use ids::{new_node_id, new_tree_id, new_write_token, NodeId, TreeId, Version, WriteToken};
pub use order::{follows, OrderKey, Ticket, TicketDispenser, TicketLane, TurnWait};
pub use orec::{Orec, OrecStatus};
pub use stats::{StatSnapshot, TmStats};
pub use wait::{Parked, WaitCell, WaitQueue, WaiterHandle, WakerReg};
