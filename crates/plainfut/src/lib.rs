//! Plain (non-transactional) futures over the `rtf` task pool.
//!
//! This is the baseline of the paper's Fig 5a: futures with *no concurrency
//! control whatsoever* — exactly what `java.util.concurrent` futures give a
//! Java program. Comparing JTF against this baseline on a conflict-free
//! workload isolates (a) the inherent costs of using futures (inter-thread
//! communication, memory-bus contention) from (b) the overhead JTF adds to
//! enforce the transactional-future semantics, which the paper measures at
//! under 1%.
//!
//! The API mirrors `rtf`'s `rtf-taskpool`-based execution so benchmarks
//! differ only in the concurrency-control layer.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

use rtf_taskpool::{Pool, PoolRunner};

struct Shared<A> {
    state: Mutex<Option<A>>,
    cv: Condvar,
}

/// A plain future: resolves when its closure finishes on the pool.
pub struct PlainFuture<A> {
    shared: Arc<Shared<A>>,
}

impl<A> Clone for PlainFuture<A> {
    fn clone(&self) -> Self {
        PlainFuture { shared: Arc::clone(&self.shared) }
    }
}

impl<A: Send + 'static> PlainFuture<A> {
    /// Blocks until the value is available. `help` runs queued tasks while
    /// waiting (same helping discipline as the transactional runtime).
    fn wait_helping(&self, mut help: impl FnMut() -> bool) -> A
    where
        A: Clone,
    {
        loop {
            {
                let mut st = self.shared.state.lock();
                if let Some(v) = st.as_ref() {
                    return v.clone();
                }
                let helped = parking_lot::MutexGuard::unlocked(&mut st, &mut help);
                if !helped && st.is_none() {
                    self.shared.cv.wait_for(&mut st, Duration::from_micros(200));
                }
            }
        }
    }
}

/// The plain-future executor.
pub struct PlainExecutor {
    pool: Pool,
    _runner: PoolRunner,
}

impl PlainExecutor {
    /// Executor backed by `workers` threads.
    pub fn new(workers: usize) -> PlainExecutor {
        let runner = Pool::start(workers);
        PlainExecutor { pool: runner.pool(), _runner: runner }
    }

    /// Schedules `body` and returns its future.
    pub fn submit<A, F>(&self, body: F) -> PlainFuture<A>
    where
        A: Send + 'static,
        F: FnOnce() -> A + Send + 'static,
    {
        let shared = Arc::new(Shared { state: Mutex::new(None), cv: Condvar::new() });
        let s2 = Arc::clone(&shared);
        self.pool.spawn(Box::new(move || {
            let v = body();
            let mut st = s2.state.lock();
            *st = Some(v);
            s2.cv.notify_all();
        }));
        PlainFuture { shared }
    }

    /// Blocking evaluation; the calling thread helps drain the pool.
    pub fn eval<A: Send + Clone + 'static>(&self, fut: &PlainFuture<A>) -> A {
        let pool = self.pool.clone();
        fut.wait_helping(move || pool.help_one(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_eval_roundtrip() {
        let ex = PlainExecutor::new(2);
        let f = ex.submit(|| 21u64 * 2);
        assert_eq!(ex.eval(&f), 42);
    }

    #[test]
    fn many_futures() {
        let ex = PlainExecutor::new(3);
        let futs: Vec<_> = (0..100u64).map(|i| ex.submit(move || i * i)).collect();
        let total: u64 = futs.iter().map(|f| ex.eval(f)).sum();
        assert_eq!(total, (0..100u64).map(|i| i * i).sum());
    }

    #[test]
    fn zero_workers_resolved_by_helping() {
        let ex = PlainExecutor::new(0);
        let f = ex.submit(|| 7u32);
        assert_eq!(ex.eval(&f), 7);
    }

    #[test]
    fn cross_thread_evaluation() {
        let ex = Arc::new(PlainExecutor::new(2));
        let f = ex.submit(|| String::from("hello"));
        let ex2 = Arc::clone(&ex);
        let f2 = f.clone();
        let h = std::thread::spawn(move || ex2.eval(&f2));
        assert_eq!(h.join().unwrap(), "hello");
        assert_eq!(ex.eval(&f), "hello");
    }
}
