//! Seedable, deterministic fault-injection failpoints for the `rtf` stack.
//!
//! The strong-ordering protocol (waitTurn, Alg 3; sub-commit propagation,
//! Alg 4) is a web of blocking dependencies between parent continuations and
//! future sub-transactions — exactly the shape where one dead participant
//! hangs the whole tree. This crate provides the instrument for probing that
//! failure surface: named **failpoints** compiled into the commit, waiting
//! and task-execution paths of every layer, which a chaos harness can arm
//! with a seeded schedule of injected faults.
//!
//! # Model
//!
//! A *site* is a `&'static str` name (`"mvstm.commit.validate"`,
//! `"taskpool.task.run"`, …) placed in the code with the [`fail_point!`]
//! macro. A [`FaultPlan`] maps site names (exact, or `"prefix.*"` patterns)
//! to per-hit probabilities of four actions:
//!
//! * **abort** — the failpoint returns [`Outcome::Abort`]; the site
//!   translates it into its local "validation failed / conflict" path, so
//!   the injected fault exercises the real abort machinery;
//! * **panic** — the failpoint panics with an [`InjectedPanic`] payload,
//!   modelling a crashed task or a bug unwinding through the stack;
//! * **delay** — the failpoint sleeps for the rule's `delay_us`, widening
//!   race windows and provoking the starvation watchdog;
//! * **spurious wakeup** — the failpoint returns [`Outcome::SpuriousWake`];
//!   wait-loop sites skip one park and re-check their predicate, modelling
//!   a condvar spurious wakeup.
//!
//! # Determinism
//!
//! Every site keeps a hit counter; the decision for hit *n* of site *s* is a
//! pure function `splitmix64(seed ^ fnv1a(s) ^ n)` of the plan seed. Given
//! the same per-site hit sequence, a seed replays the same fault schedule.
//! (Thread interleaving still decides *which thread* takes hit *n* — the
//! schedule is deterministic per site, not per thread.)
//!
//! # Cost
//!
//! Without the `fault-inject` cargo feature, [`hit`] is a constant
//! [`Outcome::None`] and the optimizer deletes the site entirely; production
//! builds carry no branch, no load, no registry. With the feature on but no
//! plan installed, a hit is one atomic load.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

/// What a failpoint asks its call site to do.
///
/// `Panic` and `Delay` are performed *inside* [`hit`] (the panic unwinds
/// from the macro, the delay sleeps before returning `None`); only the
/// outcomes that need site cooperation are surfaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// No fault injected (also returned after an injected delay).
    None,
    /// Behave as if the operation failed its validation / lost its race:
    /// take the local conflict-abort path.
    Abort,
    /// A wait loop should skip one park and re-check its predicate.
    SpuriousWake,
}

impl Outcome {
    /// `true` when the site should take its conflict-abort path.
    #[inline]
    pub fn is_abort(self) -> bool {
        self == Outcome::Abort
    }
}

/// Panic payload used for injected panics, so containment layers (and the
/// quiet panic hook) can distinguish injected faults from real bugs.
#[derive(Clone, Copy, Debug)]
pub struct InjectedPanic {
    /// The failpoint site that injected the panic.
    pub site: &'static str,
}

impl fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected panic at failpoint `{}`", self.site)
    }
}

/// Evaluates the failpoint `site`. Expands to [`hit`]; see the crate docs.
///
/// ```ignore
/// if rtf_txfault::fail_point!("mvstm.commit.validate").is_abort() {
///     return Err(Conflict);
/// }
/// ```
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        $crate::hit($site)
    };
}

/// `true` when this build compiled the failpoint machinery in.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "fault-inject")
}

/// Evaluates a failpoint. Call through [`fail_point!`].
#[inline(always)]
pub fn hit(site: &'static str) -> Outcome {
    #[cfg(feature = "fault-inject")]
    {
        imp::hit_impl(site)
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        let _ = site;
        Outcome::None
    }
}

/// One rule of a [`FaultPlan`]: probabilities (parts-per-million per hit)
/// for each action at the matching site(s).
#[derive(Clone, Debug, Default)]
pub struct SiteRule {
    /// Site name to match: exact (`"core.wait_turn"`) or a prefix pattern
    /// ending in `*` (`"txengine.cell.*"`).
    pub site: String,
    /// Probability of [`Outcome::Abort`], in parts per million per hit.
    pub abort_ppm: u32,
    /// Probability of an [`InjectedPanic`] unwind, in ppm per hit.
    pub panic_ppm: u32,
    /// Probability of an injected sleep, in ppm per hit.
    pub delay_ppm: u32,
    /// Length of an injected sleep, microseconds.
    pub delay_us: u64,
    /// Probability of [`Outcome::SpuriousWake`], in ppm per hit.
    pub spurious_ppm: u32,
    /// Optional cap on the number of injections (non-`None` outcomes and
    /// panics/delays) this rule may perform across all matching sites.
    pub max_injections: Option<u64>,
}

impl SiteRule {
    /// New no-op rule matching `site` (exact name, or `"prefix.*"`).
    pub fn at(site: impl Into<String>) -> SiteRule {
        SiteRule { site: site.into(), ..SiteRule::default() }
    }

    /// Sets the abort probability (ppm per hit).
    pub fn abort(mut self, ppm: u32) -> SiteRule {
        self.abort_ppm = ppm;
        self
    }

    /// Sets the panic probability (ppm per hit).
    pub fn panic(mut self, ppm: u32) -> SiteRule {
        self.panic_ppm = ppm;
        self
    }

    /// Sets the delay probability (ppm per hit) and duration (µs).
    pub fn delay(mut self, ppm: u32, delay_us: u64) -> SiteRule {
        self.delay_ppm = ppm;
        self.delay_us = delay_us;
        self
    }

    /// Sets the spurious-wakeup probability (ppm per hit).
    pub fn spurious(mut self, ppm: u32) -> SiteRule {
        self.spurious_ppm = ppm;
        self
    }

    /// Caps the total number of injections this rule may perform.
    pub fn cap(mut self, max: u64) -> SiteRule {
        self.max_injections = Some(max);
        self
    }

    /// Whether this rule matches `site` (exact, or `"prefix.*"`).
    pub fn matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.site == site,
        }
    }
}

/// A seeded schedule of faults: which sites misbehave, how, and how often.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of the deterministic per-hit decision stream.
    pub seed: u64,
    /// Rules, first match wins.
    pub rules: Vec<SiteRule>,
}

impl FaultPlan {
    /// New empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// Adds a rule (builder style). First matching rule wins per site.
    pub fn rule(mut self, rule: SiteRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }
}

/// Injection counters for one site, from [`stats`].
#[derive(Clone, Debug, Default)]
pub struct SiteReport {
    /// Site name.
    pub site: &'static str,
    /// Times the failpoint was evaluated.
    pub hits: u64,
    /// [`Outcome::Abort`]s returned.
    pub aborts: u64,
    /// [`InjectedPanic`]s raised.
    pub panics: u64,
    /// Sleeps injected.
    pub delays: u64,
    /// [`Outcome::SpuriousWake`]s returned.
    pub spurious: u64,
}

impl SiteReport {
    /// Total faults injected at this site (everything but plain hits).
    pub fn injected(&self) -> u64 {
        self.aborts + self.panics + self.delays + self.spurious
    }
}

/// Installs `plan` as the process-wide active schedule, resetting all
/// counters. A no-op (returning `false`) unless built with `fault-inject`.
pub fn install(plan: FaultPlan) -> bool {
    #[cfg(feature = "fault-inject")]
    {
        imp::install_impl(plan);
        true
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        let _ = plan;
        false
    }
}

/// Removes the active plan. Counters of the removed plan are discarded.
pub fn clear() {
    #[cfg(feature = "fault-inject")]
    imp::clear_impl();
}

/// Per-site injection counters of the active plan (empty without one, or
/// without the `fault-inject` feature).
pub fn stats() -> Vec<SiteReport> {
    #[cfg(feature = "fault-inject")]
    {
        imp::stats_impl()
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        Vec::new()
    }
}

/// Sum of all injected faults across sites under the active plan.
pub fn injected_total() -> u64 {
    stats().iter().map(SiteReport::injected).sum()
}

/// Deterministic per-hit decision stream: `splitmix64(seed ^ fnv1a(site) ^ n)`.
/// Public so harnesses can predict / replay a schedule offline.
pub fn decision_stream(seed: u64, site: &str, hit_index: u64) -> u64 {
    splitmix64(seed ^ fnv1a(site) ^ hit_index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(feature = "fault-inject")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, RwLock};
    use std::time::Duration;

    use crate::{decision_stream, FaultPlan, InjectedPanic, Outcome, SiteReport};

    #[derive(Default)]
    struct SiteState {
        hits: AtomicU64,
        seq: AtomicU64,
        aborts: AtomicU64,
        panics: AtomicU64,
        delays: AtomicU64,
        spurious: AtomicU64,
        rule: Option<usize>,
    }

    struct Active {
        plan: FaultPlan,
        injections: Vec<AtomicU64>, // per rule, for max_injections caps
        sites: Mutex<HashMap<&'static str, Arc<SiteState>>>,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static ACTIVE: RwLock<Option<Arc<Active>>> = RwLock::new(None);

    pub(crate) fn install_impl(plan: FaultPlan) {
        let injections = plan.rules.iter().map(|_| AtomicU64::new(0)).collect();
        let active = Arc::new(Active { plan, injections, sites: Mutex::new(HashMap::new()) });
        *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(active);
        ARMED.store(true, Ordering::Release);
    }

    pub(crate) fn clear_impl() {
        ARMED.store(false, Ordering::Release);
        *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    pub(crate) fn stats_impl() -> Vec<SiteReport> {
        let guard = ACTIVE.read().unwrap_or_else(|e| e.into_inner());
        let Some(active) = guard.as_ref() else { return Vec::new() };
        let sites = active.sites.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<SiteReport> = sites
            .iter()
            .map(|(site, s)| SiteReport {
                site,
                hits: s.hits.load(Ordering::Relaxed),
                aborts: s.aborts.load(Ordering::Relaxed),
                panics: s.panics.load(Ordering::Relaxed),
                delays: s.delays.load(Ordering::Relaxed),
                spurious: s.spurious.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|r| r.site);
        out
    }

    #[inline]
    pub(crate) fn hit_impl(site: &'static str) -> Outcome {
        if !ARMED.load(Ordering::Acquire) {
            return Outcome::None;
        }
        let active = {
            let guard = ACTIVE.read().unwrap_or_else(|e| e.into_inner());
            match guard.as_ref() {
                Some(a) => Arc::clone(a),
                None => return Outcome::None,
            }
        };
        let state = {
            let mut sites = active.sites.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(sites.entry(site).or_insert_with(|| {
                let rule = active.plan.rules.iter().position(|r| r.matches(site));
                Arc::new(SiteState { rule, ..SiteState::default() })
            }))
        };
        state.hits.fetch_add(1, Ordering::Relaxed);
        let Some(rule_idx) = state.rule else { return Outcome::None };
        let rule = &active.plan.rules[rule_idx];
        let n = state.seq.fetch_add(1, Ordering::Relaxed);
        let draw = (decision_stream(active.plan.seed, site, n) % 1_000_000) as u32;

        let abort_end = rule.abort_ppm;
        let panic_end = abort_end.saturating_add(rule.panic_ppm);
        let delay_end = panic_end.saturating_add(rule.delay_ppm);
        let spurious_end = delay_end.saturating_add(rule.spurious_ppm);
        if draw >= spurious_end {
            return Outcome::None;
        }
        // An action was drawn; honor the rule's injection cap.
        if let Some(max) = rule.max_injections {
            if active.injections[rule_idx].fetch_add(1, Ordering::Relaxed) >= max {
                return Outcome::None;
            }
        }
        if draw < abort_end {
            state.aborts.fetch_add(1, Ordering::Relaxed);
            Outcome::Abort
        } else if draw < panic_end {
            state.panics.fetch_add(1, Ordering::Relaxed);
            std::panic::panic_any(InjectedPanic { site });
        } else if draw < delay_end {
            state.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(rule.delay_us));
            Outcome::None
        } else {
            state.spurious.fetch_add(1, Ordering::Relaxed);
            Outcome::SpuriousWake
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_stream_is_deterministic() {
        let a: Vec<u64> = (0..16).map(|n| decision_stream(42, "x.y", n)).collect();
        let b: Vec<u64> = (0..16).map(|n| decision_stream(42, "x.y", n)).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..16).map(|n| decision_stream(43, "x.y", n)).collect();
        assert_ne!(a, c, "different seeds must produce different schedules");
    }

    #[test]
    fn rule_matching_exact_and_prefix() {
        assert!(SiteRule::at("a.b").matches("a.b"));
        assert!(!SiteRule::at("a.b").matches("a.b.c"));
        assert!(SiteRule::at("a.*").matches("a.b.c"));
        assert!(!SiteRule::at("a.*").matches("b.a"));
    }

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!enabled());
        assert!(!install(FaultPlan::new(1).rule(SiteRule::at("x").abort(1_000_000))));
        assert_eq!(fail_point!("x"), Outcome::None);
        assert!(stats().is_empty());
    }

    #[cfg(feature = "fault-inject")]
    mod armed {
        use super::super::*;
        use std::sync::{Mutex, OnceLock};

        // The registry is process-global; serialize tests that install plans.
        fn lock() -> std::sync::MutexGuard<'static, ()> {
            static GATE: OnceLock<Mutex<()>> = OnceLock::new();
            GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn abort_probability_one_always_aborts() {
            let _g = lock();
            install(FaultPlan::new(7).rule(SiteRule::at("t.abort").abort(1_000_000)));
            for _ in 0..100 {
                assert_eq!(fail_point!("t.abort"), Outcome::Abort);
            }
            let s = stats();
            let r = s.iter().find(|r| r.site == "t.abort").expect("site registered");
            assert_eq!(r.hits, 100);
            assert_eq!(r.aborts, 100);
            clear();
        }

        #[test]
        fn panic_injection_carries_site_payload() {
            let _g = lock();
            install(FaultPlan::new(9).rule(SiteRule::at("t.panic").panic(1_000_000)));
            let err = std::panic::catch_unwind(|| fail_point!("t.panic"))
                .expect_err("failpoint must panic");
            let p = err.downcast_ref::<InjectedPanic>().expect("InjectedPanic payload");
            assert_eq!(p.site, "t.panic");
            clear();
        }

        #[test]
        fn injection_cap_limits_faults() {
            let _g = lock();
            install(FaultPlan::new(3).rule(SiteRule::at("t.cap").abort(1_000_000).cap(5)));
            let aborts = (0..50).filter(|_| fail_point!("t.cap").is_abort()).count();
            assert_eq!(aborts, 5);
            clear();
        }

        #[test]
        fn same_seed_replays_same_schedule() {
            let _g = lock();
            let run = || {
                install(FaultPlan::new(1234).rule(SiteRule::at("t.replay").abort(250_000)));
                let v: Vec<bool> = (0..200).map(|_| fail_point!("t.replay").is_abort()).collect();
                clear();
                v
            };
            assert_eq!(run(), run());
        }

        #[test]
        fn unmatched_sites_only_count_hits() {
            let _g = lock();
            install(FaultPlan::new(5).rule(SiteRule::at("t.other").abort(1_000_000)));
            for _ in 0..10 {
                assert_eq!(fail_point!("t.unmatched"), Outcome::None);
            }
            let s = stats();
            let r = s.iter().find(|r| r.site == "t.unmatched").expect("registered");
            assert_eq!(r.hits, 10);
            assert_eq!(r.injected(), 0);
            clear();
        }
    }
}
