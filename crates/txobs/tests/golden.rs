//! Golden-file tests for the exporters: the JSON metrics snapshot and the
//! Chrome trace document must stay byte-stable for a fixed input. Regenerate
//! with `RTF_BLESS_GOLDEN=1 cargo test -p rtf-txobs --test golden` after an
//! intentional format change, and review the diff.

use rtf_txobs::{
    chrome_trace, ConflictTable, HistSnapshot, Json, MetricsSnapshot, SpanKind, SpanObs, SpanRec,
    WaitEdge,
};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("RTF_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); bless first", path.display()));
    assert_eq!(actual, expected, "{name} drifted from its golden file");
}

fn fixed_hist(scale: u64) -> HistSnapshot {
    HistSnapshot {
        count: 4 * scale,
        mean: 1250.5 * scale as f64,
        p50: 1_000 * scale,
        p95: 2_000 * scale,
        p99: 3_000 * scale,
        max: 3_500 * scale,
        buckets: vec![(512 * scale, 3 * scale), (2_048 * scale, scale)],
    }
}

fn fixed_snapshot() -> MetricsSnapshot {
    let mut m = MetricsSnapshot {
        commit: fixed_hist(1),
        wait_turn: fixed_hist(2),
        validation: fixed_hist(3),
        future_lifetime: fixed_hist(4),
        spans_recorded: 42,
        spans_dropped: 3,
        span_ring_high_water: 17,
        gauges: vec![("ordered_lane_depth".into(), 2), ("pool_queue_depth".into(), 5)],
        waits: vec![
            WaitEdge {
                thread: 1,
                depth: 0,
                kind: rtf_txengine::StallKind::TicketWait,
                tree: 7,
                a: 0,
                b: 42,
                waited_ns: 1_200_000,
            },
            WaitEdge {
                thread: 2,
                depth: 0,
                kind: rtf_txengine::StallKind::WaitTurn,
                tree: 7,
                a: 3,
                b: 9,
                waited_ns: 48_000,
            },
        ],
        ..MetricsSnapshot::default()
    };
    m.counters.top_commits = 100;
    m.counters.top_ro_commits = 10;
    m.counters.top_validation_aborts = 5;
    m.counters.inter_tree_aborts = 2;
    m.counters.sub_commits = 400;
    m.counters.sub_validation_aborts = 7;
    m.counters.continuation_restarts = 1;
    m.counters.futures_submitted = 200;
    m.counters.wait_turn_ns = 123_456;
    m.counters.validation_ns = 65_432;
    m.counters.read_fast = 900;
    m.counters.read_slow = 100;
    m.counters.wakers_registered = 12;
    m.counters.wakers_fired = 12;
    m.counters.async_polls = 30;
    m.counters.async_spurious_polls = 4;
    let conflicts = ConflictTable::default();
    for _ in 0..3 {
        conflicts.record(rtf_txengine::ConflictKind::SubValidation, 0xbeef, 4);
    }
    conflicts.record(rtf_txengine::ConflictKind::InterTree, 0xcafe, 9);
    m.hotspots = conflicts.top_n(10);
    m
}

fn fixed_spans() -> Vec<SpanObs> {
    let span = |kind, tree, node, parent, start_ns, end_ns, ok, thread| SpanObs {
        rec: SpanRec { kind, tree, node, parent, start_ns, end_ns, ok },
        thread,
    };
    vec![
        span(SpanKind::TopLevel, 7, 1, 0, 0, 50_000, true, 1),
        span(SpanKind::Future, 7, 2, 1, 4_000, 20_000, true, 2),
        span(SpanKind::Continuation, 7, 3, 1, 4_500, 42_000, true, 1),
        span(SpanKind::WaitTurn, 7, 3, 1, 30_000, 33_000, true, 1),
        span(SpanKind::Validation, 7, 3, 1, 33_000, 33_750, true, 1),
        span(SpanKind::TopCommit, 7, 1, 0, 45_000, 49_000, true, 1),
        span(SpanKind::PoolHelp, 7, 0, 0, 21_000, 25_000, true, 2),
    ]
}

#[test]
fn metrics_json_matches_golden() {
    let rendered = fixed_snapshot().to_json().pretty();
    // Whatever we export must parse back with the in-crate parser.
    Json::parse(&rendered).expect("exported metrics JSON must reparse");
    check("metrics.json", &rendered);
}

#[test]
fn chrome_trace_matches_golden() {
    let rendered = chrome_trace(&fixed_spans()).pretty();
    let doc = Json::parse(&rendered).expect("exported trace must reparse");
    // 3 lifecycle spans -> b/e pairs, 4 phase spans -> X events.
    assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 10);
    check("trace.json", &rendered);
}

#[test]
fn text_report_matches_golden() {
    check("report.txt", &fixed_snapshot().text_report());
}
