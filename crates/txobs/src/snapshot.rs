//! Snapshot deltas and live wait edges — the data model of the live
//! telemetry pipeline.
//!
//! A [`MetricsSnapshot`](crate::MetricsSnapshot) is already a consistent
//! point-in-time copy: every source it reads (counters, histogram buckets,
//! ring totals) is monotone non-decreasing and written with relaxed atomics,
//! so a snapshot taken while writers run is some valid cut of the event
//! stream — never torn, never negative. [`SnapshotDiff`] subtracts two such
//! cuts of the *same* observer; monotonicity makes every diffed field exact
//! and non-negative, which is what lets a stream of periodic snapshots
//! reconcile to the final on-drop export (each interval sums to the total).
//!
//! [`WaitEdge`] is the other half: the instantaneous "who waits on whom"
//! picture assembled from [`Event::WaitBegin`](rtf_txengine::Event)/`WaitEnd`
//! pairs published by the registered blocking wait sites. Edges are gauges,
//! not counters — they appear in snapshots but deliberately not in diffs.

use rtf_txbase::StatSnapshot;
use rtf_txengine::StallKind;

use crate::hist::HistSnapshot;
use crate::json::Json;
use crate::obs::MetricsSnapshot;

/// One live blocked-on edge: a thread inside a registered wait site and the
/// coordinates of what it waits for (see
/// [`Event::WaitBegin`](rtf_txengine::Event::WaitBegin) for the per-kind
/// meaning of `a`/`b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// Stable id of the blocked thread.
    pub thread: u64,
    /// Nesting depth of this site on its thread (0 = outermost; a waiter
    /// that helps the pool and blocks again publishes depth 1, …).
    pub depth: u32,
    /// Which family of blocking wait.
    pub kind: StallKind,
    /// Raw id of the waiting tree (0 when not applicable).
    pub tree: u64,
    /// First kind-specific coordinate (lane / node / future id).
    pub a: u64,
    /// Second kind-specific coordinate (seq / nclock target).
    pub b: u64,
    /// How long the site had been occupied when the snapshot was cut.
    pub waited_ns: u64,
}

impl WaitEdge {
    /// The edge as one `waits[]` element of the metrics document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("thread".into(), Json::U64(self.thread)),
            ("depth".into(), Json::U64(u64::from(self.depth))),
            ("kind".into(), Json::str(self.kind.name())),
            ("tree".into(), Json::U64(self.tree)),
            ("a".into(), Json::U64(self.a)),
            ("b".into(), Json::U64(self.b)),
            ("waited_ns".into(), Json::U64(self.waited_ns)),
        ])
    }

    /// One human-readable line, e.g.
    /// `t3 ticket_wait lane 0 seq 42 (tree 7, 1.20ms)`.
    pub fn describe(&self) -> String {
        let what = match self.kind {
            StallKind::TicketWait => format!("lane {} seq {}", self.a, self.b),
            StallKind::WaitTurn => format!("node {} nclock>={}", self.a, self.b),
            StallKind::FutureWait | StallKind::AsyncWait => {
                format!("node {} awaits a future", self.a)
            }
            StallKind::Quiescence => format!("{} live tasks", self.a),
        };
        format!(
            "t{} {} {} (tree {}, {})",
            self.thread,
            self.kind.name(),
            what,
            self.tree,
            crate::report::fmt_ns(self.waited_ns)
        )
    }
}

/// The exact change between two [`MetricsSnapshot`]s of the same observer
/// (`later.diff_since(&earlier)`).
///
/// Every field is non-negative by construction: counters and histogram
/// buckets only grow, and the subtraction saturates. Fields that are
/// instantaneous gauges in a snapshot — wait edges, sampled gauges, the
/// truncated hotspot table — have no meaningful difference and are omitted.
#[derive(Clone, Debug, Default)]
pub struct SnapshotDiff {
    /// Per-counter difference.
    pub counters: StatSnapshot,
    /// Commit-latency samples recorded in the interval.
    pub commit: HistSnapshot,
    /// `waitTurn` samples recorded in the interval.
    pub wait_turn: HistSnapshot,
    /// Validation samples recorded in the interval.
    pub validation: HistSnapshot,
    /// Future-lifetime samples recorded in the interval.
    pub future_lifetime: HistSnapshot,
    /// Spans recorded into rings during the interval.
    pub spans_recorded: u64,
    /// Spans shed during the interval.
    pub spans_dropped: u64,
}

impl SnapshotDiff {
    /// Whether the interval saw no activity at all.
    pub fn is_empty(&self) -> bool {
        self.counters == StatSnapshot::default()
            && self.commit.count == 0
            && self.wait_turn.count == 0
            && self.validation.count == 0
            && self.future_lifetime.count == 0
            && self.spans_recorded == 0
            && self.spans_dropped == 0
    }
}

impl MetricsSnapshot {
    /// The activity between `earlier` and `self` (two snapshots of the same
    /// observer, `earlier` taken first). See [`SnapshotDiff`] for the
    /// guarantees.
    pub fn diff_since(&self, earlier: &MetricsSnapshot) -> SnapshotDiff {
        SnapshotDiff {
            counters: self.counters.since(&earlier.counters),
            commit: self.commit.since(&earlier.commit),
            wait_turn: self.wait_turn.since(&earlier.wait_turn),
            validation: self.validation.since(&earlier.validation),
            future_lifetime: self.future_lifetime.since(&earlier.future_lifetime),
            spans_recorded: self.spans_recorded.saturating_sub(earlier.spans_recorded),
            spans_dropped: self.spans_dropped.saturating_sub(earlier.spans_dropped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ObsConfig, TxObs};
    use rtf_txengine::Event;

    #[test]
    fn diff_between_live_snapshots_is_exact_and_non_negative() {
        let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
        let sink = obs.sink();
        sink.event(Event::TopCommit);
        sink.event(Event::TopCommitNs(1_000));
        let a = obs.metrics();
        sink.event(Event::TopCommit);
        sink.event(Event::TopCommit);
        sink.event(Event::TopCommitNs(2_000));
        sink.event(Event::SubCommit);
        let b = obs.metrics();
        let d = b.diff_since(&a);
        assert_eq!(d.counters.top_commits, 2);
        assert_eq!(d.counters.sub_commits, 1);
        assert_eq!(d.commit.count, 1);
        assert!(!d.is_empty());
        // Zero-activity interval.
        assert!(b.diff_since(&b).is_empty());
        // Intervals sum to the whole: base-from-empty plus both diffs.
        let whole = b.diff_since(&MetricsSnapshot::default());
        assert_eq!(whole.counters.top_commits, a.counters.top_commits + d.counters.top_commits);
        assert_eq!(whole.commit.count, a.commit.count + d.commit.count);
    }

    #[test]
    fn wait_edge_renders_kind_specific_targets() {
        let e = WaitEdge {
            thread: 3,
            depth: 0,
            kind: StallKind::TicketWait,
            tree: 7,
            a: 0,
            b: 42,
            waited_ns: 1_200_000,
        };
        assert_eq!(e.describe(), "t3 ticket_wait lane 0 seq 42 (tree 7, 1.20ms)");
        let j = e.to_json();
        assert_eq!(j.path(&["kind"]).unwrap().as_str(), Some("ticket_wait"));
        assert_eq!(j.path(&["b"]).unwrap().as_u64(), Some(42));
    }
}
