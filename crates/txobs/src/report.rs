//! Human-readable rendering of a [`MetricsSnapshot`].

use crate::hist::HistSnapshot;
use crate::obs::MetricsSnapshot;

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn hist_row(out: &mut String, name: &str, h: &HistSnapshot) {
    out.push_str(&format!(
        "  {name:<16} {:>10}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
        h.count,
        fmt_ns(h.mean as u64),
        fmt_ns(h.p50),
        fmt_ns(h.p95),
        fmt_ns(h.p99),
        fmt_ns(h.max),
    ));
}

/// Renders the full text report (`RTF_METRICS_TEXT` format).
pub fn text_report(m: &MetricsSnapshot) -> String {
    let c = &m.counters;
    let mut out = String::new();
    out.push_str("== rtf metrics ==\n");
    out.push_str("commits:\n");
    out.push_str(&format!(
        "  top rw {}  top ro {}  sub {}  futures {}\n",
        c.top_commits, c.top_ro_commits, c.sub_commits, c.futures_submitted
    ));
    out.push_str("aborts:\n");
    out.push_str(&format!(
        "  top validation {}  inter-tree {}  sub validation {}  cont restarts {}  fallback runs {}\n",
        c.top_validation_aborts,
        c.inter_tree_aborts,
        c.sub_validation_aborts,
        c.continuation_restarts,
        c.fallback_runs
    ));
    out.push_str(&format!(
        "  top abort rate {:.4}  executions/commit {:.3}\n",
        c.top_abort_rate(),
        c.executions_per_commit()
    ));
    out.push_str("robustness:\n");
    out.push_str(&format!(
        "  stalls detected {}  stall aborts {}  pool task panics {}  future panics {}  \
         retries exhausted {}  orec snapshot retries {}\n",
        c.stalls_detected,
        c.stall_aborts,
        c.pool_task_panics,
        c.future_panics,
        c.retries_exhausted,
        c.orec_snapshot_retries
    ));
    if c.tickets_issued > 0 {
        out.push_str("ordered lane:\n");
        out.push_str(&format!(
            "  tickets issued {}  ordered commits {}  abandoned {}  turn wait {}  \
             spurious wakes {}\n",
            c.tickets_issued,
            c.ordered_commits,
            c.tickets_abandoned,
            fmt_ns(c.ticket_wait_ns),
            c.ticket_spurious_wakes
        ));
    }
    if c.wakers_registered > 0 || c.async_polls > 0 {
        out.push_str("async:\n");
        out.push_str(&format!(
            "  polls {}  spurious polls {}  wakers registered {}  fired {}\n",
            c.async_polls, c.async_spurious_polls, c.wakers_registered, c.wakers_fired
        ));
    }
    let reads_total = c.read_fast + c.read_slow;
    let fast_pct =
        if reads_total == 0 { 0.0 } else { c.read_fast as f64 * 100.0 / reads_total as f64 };
    out.push_str(&format!(
        "reads: fast {}  slow {}  (fast-path {:.1}%)\n",
        c.read_fast, c.read_slow, fast_pct
    ));
    out.push_str("latency:\n");
    out.push_str(&format!(
        "  {:<16} {:>10}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
        "histogram", "count", "mean", "p50", "p95", "p99", "max"
    ));
    hist_row(&mut out, "commit", &m.commit);
    hist_row(&mut out, "wait_turn", &m.wait_turn);
    hist_row(&mut out, "validation", &m.validation);
    hist_row(&mut out, "future_lifetime", &m.future_lifetime);
    out.push_str(&format!(
        "spans: recorded {}  dropped {}  ring high-water {}\n",
        m.spans_recorded, m.spans_dropped, m.span_ring_high_water
    ));
    if !m.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &m.gauges {
            out.push_str(&format!("  {name} {value}\n"));
        }
    }
    if !m.waits.is_empty() {
        out.push_str("live waits (who waits on whom):\n");
        for edge in &m.waits {
            out.push_str(&format!("  {}\n", edge.describe()));
        }
    }
    if m.hotspots.is_empty() {
        out.push_str("abort hotspots: none attributed\n");
    } else {
        out.push_str("abort hotspots (cell: total = top-val + sub-val + inter-tree):\n");
        for h in &m.hotspots {
            out.push_str(&format!(
                "  cell@{:x}: {} = {} + {} + {}  (last writer tree t{})\n",
                h.cell,
                h.total(),
                h.top_validation,
                h.sub_validation,
                h.inter_tree,
                h.last_writer_tree
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflicts::Hotspot;

    #[test]
    fn report_mentions_every_section() {
        let mut m = MetricsSnapshot::default();
        m.counters.top_commits = 5;
        m.counters.read_fast = 8;
        m.counters.read_slow = 2;
        m.counters.tickets_issued = 6;
        m.counters.ordered_commits = 5;
        m.counters.async_polls = 11;
        m.counters.async_spurious_polls = 2;
        m.counters.wakers_registered = 4;
        m.counters.wakers_fired = 4;
        m.commit.count = 5;
        m.commit.p99 = 1_500;
        m.span_ring_high_water = 17;
        m.gauges.push(("pool_queue_depth".into(), 3));
        m.waits.push(crate::snapshot::WaitEdge {
            thread: 2,
            depth: 0,
            kind: rtf_txengine::StallKind::TicketWait,
            tree: 4,
            a: 1,
            b: 8,
            waited_ns: 7_000,
        });
        m.hotspots.push(Hotspot {
            cell: 0xff,
            top_validation: 1,
            sub_validation: 2,
            inter_tree: 0,
            last_writer_tree: 9,
        });
        let text = text_report(&m);
        for needle in [
            "commits",
            "aborts",
            "histogram",
            "wait_turn",
            "cell@ff",
            "spans",
            "fast-path 80.0%",
            "stalls detected",
            "ordered lane",
            "tickets issued 6",
            "async:",
            "polls 11  spurious polls 2  wakers registered 4  fired 4",
            "ring high-water 17",
            "gauges:",
            "pool_queue_depth 3",
            "live waits",
            "t2 ticket_wait lane 1 seq 8 (tree 4, 7.00us)",
        ] {
            assert!(text.contains(needle), "report missing {needle:?}:\n{text}");
        }
    }

    #[test]
    fn durations_humanize() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_000_000), "2.00ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.50s");
    }
}
