//! Bounded lock-free span storage.
//!
//! Each recording thread owns one [`SpanRing`]: a fixed-capacity Vyukov-style
//! queue whose slots carry a sequence word plus the span payload spread over
//! plain atomic words — no locks, no `unsafe`, no allocation after
//! construction. Producers that find the ring full *drop the record and bump
//! a counter* instead of blocking or growing: observability must never apply
//! backpressure to the transaction hot path. The sequence protocol
//! (claim slot → write payload → publish sequence with `Release`; consumers
//! read the sequence with `Acquire` before touching the payload) guarantees
//! a drained record is never torn even with concurrent producers.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use rtf_txengine::{SpanKind, SpanRec};

/// Number of atomic payload words per slot (see [`encode`]).
const WORDS: usize = 6;

struct Slot {
    seq: AtomicU64,
    data: [AtomicU64; WORDS],
}

fn encode(rec: &SpanRec) -> [u64; WORDS] {
    [
        rec.kind as u64 | (u64::from(rec.ok) << 8),
        rec.tree,
        rec.node,
        rec.parent,
        rec.start_ns,
        rec.end_ns,
    ]
}

fn decode(words: [u64; WORDS]) -> SpanRec {
    SpanRec {
        kind: SpanKind::from_u8((words[0] & 0xff) as u8).unwrap_or(SpanKind::TopLevel),
        ok: (words[0] >> 8) & 1 == 1,
        tree: words[1],
        node: words[2],
        parent: words[3],
        start_ns: words[4],
        end_ns: words[5],
    }
}

/// A bounded MPMC ring of [`SpanRec`]s that sheds load instead of blocking.
pub struct SpanRing {
    thread: u64,
    mask: u64,
    slots: Box<[Slot]>,
    enqueue_pos: CachePadded<AtomicU64>,
    dequeue_pos: CachePadded<AtomicU64>,
    pushed: CachePadded<AtomicU64>,
    dropped: CachePadded<AtomicU64>,
    high_water: CachePadded<AtomicU64>,
}

impl SpanRing {
    /// A ring holding up to `capacity` records (a power of two), tagged with
    /// the producing thread's stable id.
    pub fn new(capacity: usize, thread: u64) -> SpanRing {
        assert!(capacity.is_power_of_two() && capacity >= 2, "ring capacity must be a power of 2");
        let slots = (0..capacity)
            .map(|i| Slot { seq: AtomicU64::new(i as u64), data: Default::default() })
            .collect();
        SpanRing {
            thread,
            mask: capacity as u64 - 1,
            slots,
            enqueue_pos: CachePadded::new(AtomicU64::new(0)),
            dequeue_pos: CachePadded::new(AtomicU64::new(0)),
            pushed: CachePadded::new(AtomicU64::new(0)),
            dropped: CachePadded::new(AtomicU64::new(0)),
            high_water: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The stable id of the thread this ring records for.
    pub fn thread(&self) -> u64 {
        self.thread
    }

    /// Records pushed successfully over the ring's lifetime.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Records shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Peak occupancy (records resident at once) observed over the ring's
    /// lifetime — the operator's ring-sizing signal: a high-water mark
    /// approaching capacity predicts `dropped` before drops happen. Updated
    /// at push time from relaxed position reads, so concurrent traffic may
    /// under-report by a few slots; it never over-reports capacity.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Appends `rec`, or sheds it (bumping the drop counter) when the ring
    /// is full. Never blocks.
    pub fn push(&self, rec: &SpanRec) -> bool {
        let words = encode(rec);
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq.wrapping_sub(pos) as i64;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        for (w, v) in slot.data.iter().zip(words) {
                            w.store(v, Ordering::Relaxed);
                        }
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        self.pushed.fetch_add(1, Ordering::Relaxed);
                        let occupancy = pos
                            .wrapping_add(1)
                            .wrapping_sub(self.dequeue_pos.load(Ordering::Relaxed));
                        self.high_water.fetch_max(occupancy.min(self.mask + 1), Ordering::Relaxed);
                        return true;
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Removes the oldest record, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<SpanRec> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq.wrapping_sub(pos.wrapping_add(1)) as i64;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let mut words = [0u64; WORDS];
                        for (v, w) in words.iter_mut().zip(&slot.data) {
                            *v = w.load(Ordering::Relaxed);
                        }
                        slot.seq.store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(decode(words));
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains every currently-readable record.
    pub fn drain(&self) -> Vec<SpanRec> {
        std::iter::from_fn(|| self.pop()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rec(i: u64) -> SpanRec {
        SpanRec {
            kind: SpanKind::ALL[(i % 7) as usize],
            tree: i,
            node: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            parent: i ^ 0xffff,
            start_ns: i * 10,
            end_ns: i * 10 + 5,
            ok: i % 2 == 0,
        }
    }

    #[test]
    fn fifo_round_trip_preserves_every_field() {
        let ring = SpanRing::new(8, 3);
        for i in 0..5 {
            assert!(ring.push(&rec(i)));
        }
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(rec(i)));
        }
        assert_eq!(ring.pop(), None);
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_sheds_and_counts_drops() {
        let ring = SpanRing::new(4, 0);
        for i in 0..4 {
            assert!(ring.push(&rec(i)));
        }
        for i in 4..10 {
            assert!(!ring.push(&rec(i)));
        }
        assert_eq!(ring.dropped(), 6);
        // The four oldest records survive untouched.
        assert_eq!(ring.drain(), (0..4).map(rec).collect::<Vec<_>>());
        // Space freed: pushes succeed again.
        assert!(ring.push(&rec(99)));
        assert_eq!(ring.pop(), Some(rec(99)));
    }

    #[test]
    fn high_water_tracks_peak_occupancy_not_current() {
        let ring = SpanRing::new(8, 0);
        assert_eq!(ring.high_water(), 0);
        for i in 0..3 {
            assert!(ring.push(&rec(i)));
        }
        assert_eq!(ring.high_water(), 3);
        ring.pop();
        ring.pop();
        assert!(ring.push(&rec(9)));
        // Occupancy dropped to 2; the mark remembers the peak.
        assert_eq!(ring.high_water(), 3);
        for i in 10..18 {
            ring.push(&rec(i));
        }
        // Filled to capacity (2 resident + 6 accepted, 2 shed): the mark
        // saturates at capacity and the shed pushes do not inflate it.
        assert_eq!(ring.high_water(), 8);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn wraparound_many_times_stays_fifo() {
        let ring = SpanRing::new(4, 0);
        for round in 0..100u64 {
            for i in 0..3 {
                assert!(ring.push(&rec(round * 3 + i)));
            }
            for i in 0..3 {
                assert_eq!(ring.pop(), Some(rec(round * 3 + i)));
            }
        }
        assert_eq!(ring.pushed(), 300);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_writers_never_tear_records() {
        let ring = Arc::new(SpanRing::new(64, 0));
        let writers = 4;
        let per_writer = 20_000u64;
        let stop = Arc::new(AtomicU64::new(0));
        let mut seen = Vec::new();
        let drainer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    got.extend(ring.drain());
                    if stop.load(Ordering::Acquire) == 1 {
                        got.extend(ring.drain());
                        return got;
                    }
                }
            })
        };
        let hs: Vec<_> = (0..writers)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut pushed = 0;
                    for i in 0..per_writer {
                        // Self-checking payload: every word derives from `v`,
                        // so a torn record is detectable in the drained copy.
                        let v = w * per_writer + i;
                        if ring.push(&SpanRec {
                            kind: SpanKind::ALL[(v % 7) as usize],
                            tree: v,
                            node: v + 1,
                            parent: v + 2,
                            start_ns: v + 3,
                            end_ns: v + 4,
                            ok: v % 3 == 0,
                        }) {
                            pushed += 1;
                        }
                    }
                    pushed
                })
            })
            .collect();
        let pushed: u64 = hs.into_iter().map(|h| h.join().unwrap()).sum();
        stop.store(1, Ordering::Release);
        seen.extend(drainer.join().unwrap());

        for r in &seen {
            let v = r.tree;
            assert_eq!(r.kind, SpanKind::ALL[(v % 7) as usize], "torn record: {r:?}");
            assert_eq!(r.node, v + 1, "torn record: {r:?}");
            assert_eq!(r.parent, v + 2, "torn record: {r:?}");
            assert_eq!(r.start_ns, v + 3, "torn record: {r:?}");
            assert_eq!(r.end_ns, v + 4, "torn record: {r:?}");
            assert_eq!(r.ok, v % 3 == 0, "torn record: {r:?}");
        }
        // Conservation: every push was either drained or counted as a drop.
        assert_eq!(seen.len() as u64, pushed);
        assert_eq!(ring.pushed(), pushed);
        assert_eq!(ring.dropped(), writers * per_writer - pushed);
        // No record delivered twice.
        let mut ids: Vec<u64> = seen.iter().map(|r| r.tree).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
