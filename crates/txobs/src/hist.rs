//! Log-bucketed latency histograms (HdrHistogram-lite).
//!
//! The flat `TmStats` accumulators record only a *sum* of nanoseconds, which
//! cannot answer "what does the p99 `waitTurn` stall look like". [`LogHist`]
//! keeps a fixed array of atomic buckets: values below 16 get exact unit
//! buckets, and every power-of-two magnitude above that is split into 16
//! linear sub-buckets (4 significant bits), bounding the relative
//! quantization error at `1/16` ≈ 6%. Recording is one relaxed
//! `fetch_add` per value plus sum/max maintenance — wait-free and safe to
//! share across threads with no locking; percentiles are computed at
//! snapshot time by walking the cumulative distribution.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this get exact unit buckets.
const LINEAR_MAX: u64 = 16;
/// Linear sub-buckets per power-of-two magnitude (`2.pow(SUB_BITS)`).
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total bucket count: 16 unit buckets + 16 sub-buckets for each possible
/// most-significant-bit position 4..=63.
pub const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Index of the bucket covering `v`.
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = (v >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1);
        LINEAR_MAX as usize + (msb - SUB_BITS) as usize * SUB_COUNT + sub as usize
    }
}

/// Smallest value belonging to bucket `i` (inverse of [`bucket_of`]).
fn bucket_lower(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        i as u64
    } else {
        let msb = (i - LINEAR_MAX as usize) / SUB_COUNT + SUB_BITS as usize;
        let sub = ((i - LINEAR_MAX as usize) % SUB_COUNT) as u64;
        (1u64 << msb) + (sub << (msb - SUB_BITS as usize))
    }
}

/// Midpoint representative of bucket `i`, reported by percentile queries.
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_lower(i);
    let width = if i + 1 < NUM_BUCKETS { bucket_lower(i + 1) - lo } else { 1 };
    lo + (width - 1) / 2
}

/// A concurrent log-bucketed histogram of `u64` samples (nanoseconds here,
/// but the scale is the caller's business).
pub struct LogHist {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHist {
    fn default() -> LogHist {
        LogHist::new()
    }
}

impl LogHist {
    /// An empty histogram.
    pub fn new() -> LogHist {
        LogHist {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free; safe from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy with percentiles resolved.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut nonzero = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                nonzero.push((bucket_lower(i), c));
                count += c;
            }
        }
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
            let mut cum = 0u64;
            for &(lower, c) in &nonzero {
                cum += c;
                if cum >= target {
                    return bucket_mid(bucket_of(lower)).min(max);
                }
            }
            max
        };
        HistSnapshot {
            count,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max,
            buckets: nonzero,
        }
    }
}

/// A resolved copy of a [`LogHist`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean of all samples (exact — kept as a running sum).
    pub mean: f64,
    /// Median (bucket-midpoint estimate, ≤ ~6% relative error).
    pub p50: u64,
    /// 95th percentile estimate.
    pub p95: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Sparse `(bucket_lower_bound, count)` pairs for non-empty buckets, in
    /// ascending value order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// The histogram of samples recorded between `earlier` and `self`
    /// (both snapshots of the *same* [`LogHist`]).
    ///
    /// Bucket counts only grow, so the per-bucket saturating difference is
    /// exactly the interval's samples; `count` and `buckets` are exact and
    /// never negative. Percentiles are re-resolved from the interval's own
    /// distribution with the usual ≤ ~6% bucket-midpoint error. Two fields
    /// are bounds rather than exact interval values: `mean` is recovered
    /// from the running sums (float rounding only), and `max` is inherited
    /// from `self` — the largest sample *ever* seen, an upper bound on the
    /// interval's largest (exact whenever the interval contains it).
    pub fn since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        // Both bucket lists are sorted ascending by lower bound; merge with
        // two cursors.
        let mut buckets: Vec<(u64, u64)> = Vec::new();
        let mut count = 0u64;
        let mut ei = earlier.buckets.iter().peekable();
        for &(lo, c) in &self.buckets {
            let mut prev = 0u64;
            while let Some(&&(elo, ec)) = ei.peek() {
                match elo.cmp(&lo) {
                    std::cmp::Ordering::Less => {
                        ei.next();
                    }
                    std::cmp::Ordering::Equal => {
                        prev = ec;
                        ei.next();
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            let d = c.saturating_sub(prev);
            if d > 0 {
                buckets.push((lo, d));
                count += d;
            }
        }
        let sum = (self.mean * self.count as f64 - earlier.mean * earlier.count as f64).max(0.0);
        let max = self.max;
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
            let mut cum = 0u64;
            for &(lower, c) in &buckets {
                cum += c;
                if cum >= target {
                    return bucket_mid(bucket_of(lower)).min(max);
                }
            }
            max
        };
        HistSnapshot {
            count,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_32() {
        // Units 0..16 and the first split magnitude 16..32 both have
        // width-1 buckets, so small values are never distorted.
        for v in 0..32u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_self_inverse() {
        let probes: Vec<u64> = (0..64)
            .flat_map(|m: u32| {
                let base = 1u64.checked_shl(m).unwrap_or(0);
                [base.saturating_sub(1), base, base.saturating_add(base / 3)]
            })
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut last = 0;
        for &v in &probes {
            let b = bucket_of(v);
            assert!(b < NUM_BUCKETS);
            assert!(b >= last, "bucket index must not decrease: v={v} b={b} last={last}");
            last = b;
            let lo = bucket_lower(b);
            assert!(lo <= v, "lower bound above value: v={v} lo={lo}");
            assert_eq!(bucket_of(lo), b, "lower bound must map back to its bucket");
            if b + 1 < NUM_BUCKETS {
                assert!(v < bucket_lower(b + 1), "value must sit below the next bucket");
            }
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        for v in [100u64, 1_000, 12_345, 1 << 20, 987_654_321, u64::MAX / 7] {
            let mid = bucket_mid(bucket_of(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 16.0, "relative error {err} too large for {v}");
        }
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let h = LogHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        let within = |est: u64, exact: u64| {
            (est as f64 - exact as f64).abs() / exact as f64 <= 1.0 / 16.0 + 1e-9
        };
        assert!(within(s.p50, 500), "p50 estimate {} too far from 500", s.p50);
        assert!(within(s.p95, 950), "p95 estimate {} too far from 950", s.p95);
        assert!(within(s.p99, 990), "p99 estimate {} too far from 990", s.p99);
    }

    #[test]
    fn single_value_percentiles_are_exact_for_small_values() {
        let h = LogHist::new();
        for _ in 0..10 {
            h.record(17);
        }
        let s = h.snapshot();
        assert_eq!((s.p50, s.p95, s.p99, s.max), (17, 17, 17, 17));
        assert_eq!(s.buckets, vec![(17, 10)]);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LogHist::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn percentile_never_exceeds_observed_max() {
        let h = LogHist::new();
        // A power of two sits at its bucket's lower bound, so the midpoint
        // estimate overshoots the real sample; the snapshot clamps to the
        // exact max.
        h.record(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.p99, 1 << 20);
    }

    #[test]
    fn interval_since_is_exact_on_counts_and_buckets() {
        let h = LogHist::new();
        for v in [3u64, 3, 17, 1000] {
            h.record(v);
        }
        let a = h.snapshot();
        for v in [3u64, 42, 42, 1 << 20] {
            h.record(v);
        }
        let b = h.snapshot();
        let d = b.since(&a);
        assert_eq!(d.count, 4);
        // Reconciliation: earlier + interval == later, bucket by bucket.
        let mut merged: std::collections::BTreeMap<u64, u64> = a.buckets.iter().copied().collect();
        for (lo, c) in &d.buckets {
            *merged.entry(*lo).or_insert(0) += c;
        }
        assert_eq!(merged.into_iter().collect::<Vec<_>>(), b.buckets);
        // The interval's own distribution drives its percentiles.
        assert!(d.p50 <= d.p95 && d.p95 <= d.p99 && d.p99 <= d.max);
        // Interval mean recovered from the running sums.
        assert!((d.mean - (3.0 + 42.0 + 42.0 + (1u64 << 20) as f64) / 4.0).abs() < 1e-6);
        // Degenerate interval: nothing recorded.
        assert_eq!(b.since(&b).count, 0);
        assert!(b.since(&b).buckets.is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHist::new());
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in hs {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 40_000);
    }
}
