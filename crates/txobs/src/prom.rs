//! Prometheus text exposition (format 0.0.4) for a [`MetricsSnapshot`].
//!
//! [`render_prometheus`] is the pure serve-ready renderer: hand it the
//! latest snapshot and write the string to any transport. Monotone event
//! counters become `rtf_*_total` counters; latency histograms become
//! summaries (`quantile` series plus `_sum`/`_count`, the natural fit for
//! percentiles that are already resolved at snapshot time); sampled gauges,
//! the span-ring high-water mark and the live wait edges become gauges.
//! Abort hotspots export per-cell counters for the `top_n` cells the
//! snapshot retained — a deliberate truncation, flagged by the
//! `rtf_abort_hotspots_truncated` gauge.
//!
//! With the `live-tcp` feature, [`PromServer`] adds a deliberately tiny
//! blocking HTTP/1.0 endpoint (one thread, one connection at a time) that
//! renders a fresh snapshot per scrape — enough for a Prometheus scraper or
//! `curl`, with no dependency on an HTTP stack.

use std::fmt::Write as _;

use crate::hist::HistSnapshot;
use crate::obs::MetricsSnapshot;

fn counter(out: &mut String, name: &str, help: &str, v: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {v}");
}

fn gauge(out: &mut String, name: &str, help: &str, v: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {v}");
}

fn summary(out: &mut String, name: &str, help: &str, h: &HistSnapshot) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} summary");
    let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.p50);
    let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", h.p95);
    let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.p99);
    let _ = writeln!(out, "{name}_sum {}", (h.mean * h.count as f64) as u64);
    let _ = writeln!(out, "{name}_count {}", h.count);
    let _ = writeln!(out, "{name}_max {}", h.max);
}

/// Renders `snap` as one Prometheus text-exposition document.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let c = &snap.counters;
    let mut out = String::new();
    for (name, help, v) in [
        ("top_commits", "Top-level read-write commits", c.top_commits),
        ("top_ro_commits", "Top-level read-only commits", c.top_ro_commits),
        ("top_validation_aborts", "Top-level validation aborts", c.top_validation_aborts),
        ("inter_tree_aborts", "Whole-tree inter-tree aborts", c.inter_tree_aborts),
        ("fallback_runs", "Sequential fallback executions", c.fallback_runs),
        ("sub_commits", "Sub-transaction commits", c.sub_commits),
        ("sub_validation_aborts", "Sub-transaction validation aborts", c.sub_validation_aborts),
        ("continuation_restarts", "Continuation-driven full restarts", c.continuation_restarts),
        ("futures_submitted", "Transactional futures submitted", c.futures_submitted),
        ("ro_validation_skips", "Read-only validation skips", c.ro_validation_skips),
        ("ro_validation_taken", "Read-only validations taken", c.ro_validation_taken),
        ("helped_writebacks", "Commit records written back by helpers", c.helped_writebacks),
        ("versions_gced", "Permanent versions trimmed by GC", c.versions_gced),
        ("wait_turn_ns", "Nanoseconds blocked in waitTurn", c.wait_turn_ns),
        ("validation_ns", "Nanoseconds validating read sets", c.validation_ns),
        ("pool_helped_tasks", "Pool tasks run inline by helpers", c.pool_helped_tasks),
        ("pool_fence_deferrals", "Helping attempts deferred by fences", c.pool_fence_deferrals),
        ("read_fast", "Wait-free fast-path reads", c.read_fast),
        ("read_slow", "Version-list walk reads", c.read_slow),
        ("stalls_detected", "Waits flagged by the stall watchdog", c.stalls_detected),
        ("stall_aborts", "Stalled waits converted to aborts", c.stall_aborts),
        ("pool_task_panics", "Pool task panics contained", c.pool_task_panics),
        ("future_panics", "Future panics converted to cancellations", c.future_panics),
        ("retries_exhausted", "Retry budgets exhausted", c.retries_exhausted),
        ("orec_snapshot_retries", "orec snapshot re-reads", c.orec_snapshot_retries),
        ("tickets_issued", "Ordered-lane tickets issued", c.tickets_issued),
        ("ordered_commits", "Commits through the ordered lane", c.ordered_commits),
        ("tickets_abandoned", "Ordered-lane tickets abandoned", c.tickets_abandoned),
        ("ticket_wait_ns", "Nanoseconds waiting for ticket turns", c.ticket_wait_ns),
        ("ticket_spurious_wakes", "Ordered-lane spurious wakeups", c.ticket_spurious_wakes),
        ("wakers_registered", "Async wakers registered", c.wakers_registered),
        ("wakers_fired", "Async wakers fired", c.wakers_fired),
        ("async_polls", "Async transaction future polls", c.async_polls),
        (
            "async_spurious_polls",
            "Polls that found the result still pending",
            c.async_spurious_polls,
        ),
    ] {
        counter(&mut out, &format!("rtf_{name}_total"), help, v);
    }
    summary(&mut out, "rtf_commit_latency_ns", "Top-level commit-chain latency", &snap.commit);
    summary(&mut out, "rtf_wait_turn_latency_ns", "waitTurn blocking time", &snap.wait_turn);
    summary(&mut out, "rtf_validation_latency_ns", "Validation time", &snap.validation);
    summary(
        &mut out,
        "rtf_future_lifetime_ns",
        "Future submission-to-completion latency",
        &snap.future_lifetime,
    );
    counter(&mut out, "rtf_spans_recorded_total", "Spans recorded into rings", snap.spans_recorded);
    counter(&mut out, "rtf_spans_dropped_total", "Spans shed by full rings", snap.spans_dropped);
    gauge(
        &mut out,
        "rtf_span_ring_high_water",
        "Peak single-ring span occupancy",
        snap.span_ring_high_water,
    );
    for (name, v) in &snap.gauges {
        gauge(&mut out, &format!("rtf_{name}"), "Registered live gauge", *v);
    }
    if !snap.hotspots.is_empty() {
        let name = "rtf_cell_aborts_total";
        let _ = writeln!(out, "# HELP {name} Attributed aborts on the most-conflicted cells");
        let _ = writeln!(out, "# TYPE {name} counter");
        for h in &snap.hotspots {
            for (kind, v) in [
                ("top_validation", h.top_validation),
                ("sub_validation", h.sub_validation),
                ("inter_tree", h.inter_tree),
            ] {
                if v > 0 {
                    let _ = writeln!(out, "{name}{{cell=\"{:x}\",kind=\"{kind}\"}} {v}", h.cell);
                }
            }
        }
        gauge(
            &mut out,
            "rtf_abort_hotspots_truncated",
            "1 when the per-cell abort series covers only the top-N cells",
            1,
        );
    }
    let name = "rtf_wait_sites";
    let _ = writeln!(out, "# HELP {name} Threads currently blocked, by wait kind");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for kind in ["wait_turn", "quiescence", "future_wait", "ticket_wait", "async_wait"] {
        let n = snap.waits.iter().filter(|w| w.kind.name() == kind).count();
        let _ = writeln!(out, "{name}{{kind=\"{kind}\"}} {n}");
    }
    out
}

/// A minimal blocking scrape endpoint serving [`render_prometheus`] over
/// HTTP (feature `live-tcp`).
#[cfg(feature = "live-tcp")]
pub use tcp::PromServer;

#[cfg(feature = "live-tcp")]
mod tcp {
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream, ToSocketAddrs};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use super::render_prometheus;
    use crate::obs::TxObs;

    /// One background thread accepting scrapes sequentially; every request
    /// (whatever the path) gets a fresh snapshot as `text/plain`.
    pub struct PromServer {
        addr: std::net::SocketAddr,
        stop: Arc<AtomicBool>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl PromServer {
        /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving scrapes
        /// of `obs`.
        pub fn start(addr: impl ToSocketAddrs, obs: Arc<TxObs>) -> std::io::Result<PromServer> {
            let listener = TcpListener::bind(addr)?;
            let addr = listener.local_addr()?;
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let thread = std::thread::Builder::new().name("rtf-prom".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    if let Ok(stream) = conn {
                        // Scrape errors (a disconnecting client) are the
                        // client's problem; the server must keep serving.
                        let _ = serve_one(stream, &obs);
                    }
                }
            })?;
            Ok(PromServer { addr, stop, thread: Some(thread) })
        }

        /// The bound address (useful with port 0).
        pub fn local_addr(&self) -> std::net::SocketAddr {
            self.addr
        }

        /// Stops the accept loop and joins the serving thread.
        pub fn stop(&mut self) {
            if let Some(thread) = self.thread.take() {
                self.stop.store(true, Ordering::Release);
                // Unblock the accept with one last local connection.
                let _ = TcpStream::connect(self.addr);
                let _ = thread.join();
            }
        }
    }

    impl Drop for PromServer {
        fn drop(&mut self) {
            self.stop();
        }
    }

    fn serve_one(mut stream: TcpStream, obs: &Arc<TxObs>) -> std::io::Result<()> {
        // Read (and discard) the request head; a scraper sends little.
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf)?;
        let body = render_prometheus(&obs.metrics());
        let head = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_covers_counters_summaries_and_gauges() {
        let mut m = MetricsSnapshot::default();
        m.counters.top_commits = 12;
        m.counters.async_polls = 3;
        m.commit = HistSnapshot {
            count: 2,
            mean: 1_500.0,
            p50: 1_000,
            p95: 2_000,
            p99: 2_000,
            max: 2_000,
            buckets: vec![(1_000, 1), (2_000, 1)],
        };
        m.span_ring_high_water = 9;
        m.gauges.push(("pool_queue_depth".into(), 4));
        m.hotspots.push(crate::conflicts::Hotspot {
            cell: 0xff,
            top_validation: 2,
            sub_validation: 0,
            inter_tree: 1,
            last_writer_tree: 3,
        });
        m.waits.push(crate::snapshot::WaitEdge {
            thread: 1,
            depth: 0,
            kind: rtf_txengine::StallKind::TicketWait,
            tree: 2,
            a: 0,
            b: 5,
            waited_ns: 10,
        });
        let text = render_prometheus(&m);
        for needle in [
            "# TYPE rtf_top_commits_total counter",
            "rtf_top_commits_total 12",
            "rtf_async_polls_total 3",
            "# TYPE rtf_commit_latency_ns summary",
            "rtf_commit_latency_ns{quantile=\"0.5\"} 1000",
            "rtf_commit_latency_ns_sum 3000",
            "rtf_commit_latency_ns_count 2",
            "rtf_span_ring_high_water 9",
            "rtf_pool_queue_depth 4",
            "rtf_cell_aborts_total{cell=\"ff\",kind=\"top_validation\"} 2",
            "rtf_cell_aborts_total{cell=\"ff\",kind=\"inter_tree\"} 1",
            "rtf_abort_hotspots_truncated 1",
            "rtf_wait_sites{kind=\"ticket_wait\"} 1",
            "rtf_wait_sites{kind=\"quiescence\"} 0",
        ] {
            assert!(text.contains(needle), "exposition missing {needle:?}:\n{text}");
        }
        // Every HELP has a TYPE and every series line parses as name value.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP") || line.starts_with("# TYPE"));
            } else {
                let (_, value) = line.rsplit_once(' ').expect("series line");
                value.parse::<f64>().expect("numeric sample value");
            }
        }
    }

    #[cfg(feature = "live-tcp")]
    #[test]
    fn tcp_endpoint_serves_scrapes() {
        use std::io::{Read, Write};
        let obs = crate::obs::TxObs::new(crate::obs::ObsConfig::default());
        use rtf_txengine::{Event, EventSink};
        obs.event(Event::TopCommit);
        let mut server = PromServer::start("127.0.0.1:0", std::sync::Arc::clone(&obs)).unwrap();
        for _ in 0..2 {
            let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
            conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.0 200 OK"));
            assert!(response.contains("rtf_top_commits_total 1"));
        }
        server.stop();
    }
}
