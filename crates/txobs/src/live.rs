//! The live exporter: a background sampler turning an observer into a
//! telemetry stream while the workload runs.
//!
//! [`LiveExporter::start`] spawns one sampler thread that cuts a
//! [`MetricsSnapshot`] on a configurable interval and drives every
//! configured [`LiveSink`]: the JSONL time-series sink (schema
//! [`STREAM_SCHEMA`], one snapshot per line — the `txtop` dashboard and the
//! soak tooling consume this), the Prometheus text-file sink (the latest
//! exposition document, rewritten per tick), and — with the `live-tcp`
//! feature — the [`PromServer`](crate::prom::PromServer) scrape endpoint.
//!
//! Lifecycle contract: the sampler emits one line at start, one per
//! interval, and one final line inside [`LiveExporter::stop`] *after* the
//! caller has stopped producing events. Because snapshots are monotone cuts
//! (see [`crate::snapshot`]), the stream's per-line deltas are non-negative
//! and the final line reconciles exactly with an on-drop export taken after
//! `stop` — the property `metrics_check --require-live` enforces in CI.
//!
//! Sampler cost: one `metrics()` call per tick (a few µs of relaxed loads
//! plus the hotspot table lock) and one buffered write per sink — none of
//! it on a transaction's path. EXPERIMENTS.md §O2 measures the end-to-end
//! overhead on a contended workload.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use rtf_txengine::obs_now_ns;

use crate::json::Json;
use crate::obs::{MetricsSnapshot, TxObs};
use crate::prom::render_prometheus;

/// Schema tag of every JSONL stream line.
pub const STREAM_SCHEMA: &str = "rtf-metrics-stream-v1";

/// One pluggable destination driven by the sampler thread.
pub trait LiveSink: Send {
    /// Consumes the `seq`-th snapshot, cut at `t_ns` ([`obs_now_ns`] clock).
    fn tick(&mut self, seq: u64, t_ns: u64, snap: &MetricsSnapshot) -> io::Result<()>;
}

/// Builds one stream line (without the trailing newline): the full
/// `rtf-metrics-v1` document wrapped with the stream envelope.
pub fn stream_line(seq: u64, t_ns: u64, snap: &MetricsSnapshot) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str(STREAM_SCHEMA)),
        ("seq".into(), Json::U64(seq)),
        ("t_ns".into(), Json::U64(t_ns)),
        ("metrics".into(), snap.to_json()),
    ])
}

/// Appends one compact JSON document per snapshot to a writer (the
/// time-series stream).
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
}

impl JsonlSink {
    /// Streams to `path` (truncating; parent directories created).
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        Ok(JsonlSink::new(Box::new(io::BufWriter::new(std::fs::File::create(path)?))))
    }

    /// Streams to an arbitrary writer (tests, sockets).
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink { out }
    }
}

impl LiveSink for JsonlSink {
    fn tick(&mut self, seq: u64, t_ns: u64, snap: &MetricsSnapshot) -> io::Result<()> {
        let line = stream_line(seq, t_ns, snap).render();
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        // Flush per tick so followers (txtop) see whole lines promptly.
        self.out.flush()
    }
}

/// Rewrites a file with the latest Prometheus exposition document per tick
/// (pull-style exposition without a TCP listener).
pub struct PromTextSink {
    path: PathBuf,
}

impl PromTextSink {
    /// Exposes at `path` (parent directories created on first tick).
    pub fn new(path: PathBuf) -> PromTextSink {
        PromTextSink { path }
    }
}

impl LiveSink for PromTextSink {
    fn tick(&mut self, _seq: u64, _t_ns: u64, snap: &MetricsSnapshot) -> io::Result<()> {
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&self.path, render_prometheus(snap))
    }
}

/// What [`LiveExporter::start`] should run.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Sampling interval.
    pub interval: Duration,
    /// JSONL time-series destination ([`STREAM_SCHEMA`]).
    pub jsonl: Option<PathBuf>,
    /// Prometheus text-file destination (rewritten per tick).
    pub prom_text: Option<PathBuf>,
    /// Prometheus TCP scrape address (e.g. `127.0.0.1:9464`). Requires the
    /// `live-tcp` feature; warned about and ignored without it.
    pub prom_addr: Option<String>,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            interval: Duration::from_millis(250),
            jsonl: None,
            prom_text: None,
            prom_addr: None,
        }
    }
}

impl LiveConfig {
    /// A config from the environment, or `None` when no live destination is
    /// requested: `RTF_METRICS_STREAM=<path>` (JSONL),
    /// `RTF_PROM_TEXT=<path>`, `RTF_PROM_ADDR=<addr>` and
    /// `RTF_METRICS_STREAM_MS=<n>` (interval, default 250).
    pub fn from_env() -> Option<LiveConfig> {
        fn path(var: &str) -> Option<PathBuf> {
            std::env::var_os(var).filter(|v| !v.is_empty()).map(PathBuf::from)
        }
        let config = LiveConfig {
            interval: std::env::var("RTF_METRICS_STREAM_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .map(Duration::from_millis)
                .unwrap_or(LiveConfig::default().interval),
            jsonl: path("RTF_METRICS_STREAM"),
            prom_text: path("RTF_PROM_TEXT"),
            prom_addr: std::env::var("RTF_PROM_ADDR").ok().filter(|v| !v.is_empty()),
        };
        if config.jsonl.is_none() && config.prom_text.is_none() && config.prom_addr.is_none() {
            return None;
        }
        Some(config)
    }
}

/// Handle to a running sampler. Call [`LiveExporter::stop`] (or drop it)
/// after the workload quiesces and before reading any final export the
/// stream must reconcile with.
pub struct LiveExporter {
    stop: Option<mpsc::Sender<()>>,
    thread: Option<std::thread::JoinHandle<()>>,
    #[cfg(feature = "live-tcp")]
    server: Option<crate::prom::PromServer>,
}

impl LiveExporter {
    /// Starts the sampler described by `config` over `obs`.
    pub fn start(obs: Arc<TxObs>, config: LiveConfig) -> io::Result<LiveExporter> {
        let mut sinks: Vec<Box<dyn LiveSink>> = Vec::new();
        if let Some(path) = &config.jsonl {
            sinks.push(Box::new(JsonlSink::create(path)?));
        }
        if let Some(path) = &config.prom_text {
            sinks.push(Box::new(PromTextSink::new(path.clone())));
        }
        #[cfg(feature = "live-tcp")]
        let server = match &config.prom_addr {
            Some(addr) => Some(crate::prom::PromServer::start(addr.as_str(), Arc::clone(&obs))?),
            None => None,
        };
        #[cfg(not(feature = "live-tcp"))]
        if config.prom_addr.is_some() {
            eprintln!(
                "[rtf txobs] RTF_PROM_ADDR ignored: rtf-txobs built without the `live-tcp` feature"
            );
        }
        #[cfg_attr(not(feature = "live-tcp"), allow(unused_mut))]
        let mut exporter = LiveExporter::with_sinks(obs, config.interval, sinks);
        #[cfg(feature = "live-tcp")]
        {
            exporter.server = server;
        }
        Ok(exporter)
    }

    /// Starts a sampler over custom sinks.
    pub fn with_sinks(
        obs: Arc<TxObs>,
        interval: Duration,
        mut sinks: Vec<Box<dyn LiveSink>>,
    ) -> LiveExporter {
        let (stop, rx) = mpsc::channel::<()>();
        let thread = std::thread::Builder::new()
            .name("rtf-live".into())
            .spawn(move || {
                let mut seq = 0u64;
                let tick = |seq: u64, sinks: &mut Vec<Box<dyn LiveSink>>| {
                    let snap = obs.metrics();
                    let t_ns = obs_now_ns();
                    // A sink that errors (disk full, closed pipe) is warned
                    // about once and retired; the others keep streaming.
                    sinks.retain_mut(|sink| match sink.tick(seq, t_ns, &snap) {
                        Ok(()) => true,
                        Err(e) => {
                            eprintln!("[rtf txobs] live sink failed, disabling: {e}");
                            false
                        }
                    });
                };
                loop {
                    tick(seq, &mut sinks);
                    seq += 1;
                    match rx.recv_timeout(interval) {
                        Err(mpsc::RecvTimeoutError::Timeout) => {}
                        // Stop requested (or the handle vanished): cut the
                        // final reconciling snapshot and exit.
                        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                            tick(seq, &mut sinks);
                            return;
                        }
                    }
                }
            })
            .expect("spawn rtf-live sampler thread");
        LiveExporter {
            stop: Some(stop),
            thread: Some(thread),
            #[cfg(feature = "live-tcp")]
            server: None,
        }
    }

    /// Emits the final snapshot, stops the sampler and joins its thread.
    /// Idempotent.
    pub fn stop(&mut self) {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        #[cfg(feature = "live-tcp")]
        if let Some(mut server) = self.server.take() {
            server.stop();
        }
    }
}

impl Drop for LiveExporter {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsConfig;
    use rtf_txengine::Event;

    fn counters_of(line: &Json) -> Vec<(String, u64)> {
        match line.path(&["metrics", "counters"]).unwrap() {
            Json::Obj(fields) => {
                fields.iter().map(|(k, v)| (k.clone(), v.as_u64().unwrap())).collect()
            }
            other => panic!("counters not an object: {other:?}"),
        }
    }

    #[test]
    fn stream_reconciles_with_a_final_snapshot() {
        use rtf_txengine::EventSink;
        let dir = std::env::temp_dir().join(format!("rtf-live-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
        let config = LiveConfig {
            interval: Duration::from_millis(5),
            jsonl: Some(path.clone()),
            ..LiveConfig::default()
        };
        let mut exporter = LiveExporter::start(Arc::clone(&obs), config).unwrap();
        for i in 0..50 {
            obs.event(Event::TopCommit);
            obs.event(Event::TopCommitNs(1_000 + i));
            if i % 10 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        exporter.stop();
        let final_snap = obs.metrics();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert!(lines.len() >= 3, "expected >=3 stream lines, got {}", lines.len());
        let mut prev: Option<Vec<(String, u64)>> = None;
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.path(&["schema"]).unwrap().as_str(), Some(STREAM_SCHEMA));
            assert_eq!(line.path(&["seq"]).unwrap().as_u64(), Some(i as u64));
            let counters = counters_of(line);
            if let Some(prev) = &prev {
                // Monotone: every counter is non-decreasing along the stream.
                for ((name, now), (_, before)) in counters.iter().zip(prev) {
                    assert!(now >= before, "counter {name} went backwards: {before} -> {now}");
                }
            }
            prev = Some(counters);
        }
        // The final line reconciles exactly with a snapshot taken after stop.
        let last = lines.last().unwrap();
        assert_eq!(
            last.path(&["metrics", "counters", "top_commits"]).unwrap().as_u64(),
            Some(final_snap.counters.top_commits)
        );
        assert_eq!(
            last.path(&["metrics", "histograms_ns", "commit", "count"]).unwrap().as_u64(),
            Some(final_snap.commit.count)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prom_text_sink_rewrites_latest_exposition() {
        use rtf_txengine::EventSink;
        let dir = std::env::temp_dir().join(format!("rtf-live-prom-{}", std::process::id()));
        let path = dir.join("prom.txt");
        let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
        obs.event(Event::TopCommit);
        let mut sink = PromTextSink::new(path.clone());
        sink.tick(0, 1, &obs.metrics()).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("rtf_top_commits_total 1"));
        obs.event(Event::TopCommit);
        sink.tick(1, 2, &obs.metrics()).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("rtf_top_commits_total 2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_env_requires_a_destination() {
        // Destination vars are absent in the test environment unless the
        // harness exports them; guard to keep the test hermetic.
        if std::env::var_os("RTF_METRICS_STREAM").is_none()
            && std::env::var_os("RTF_PROM_TEXT").is_none()
            && std::env::var_os("RTF_PROM_ADDR").is_none()
        {
            assert!(LiveConfig::from_env().is_none());
        }
    }
}
