//! The observer: one [`TxObs`] aggregates everything the instrumentation
//! seam emits.
//!
//! A `TxObs` is itself an [`EventSink`]; attach it (alongside the usual
//! `StatsSink`) to any TM instance and it accumulates:
//!
//! * counters — its own [`TmStats`], so one observer can aggregate across
//!   many TM instances (e.g. every cell of a benchmark sweep);
//! * latency histograms — commit, `waitTurn`, validation and future
//!   submission-to-completion, log-bucketed ([`LogHist`]);
//! * abort attribution — a per-cell [`ConflictTable`];
//! * spans — per-thread lock-free [`SpanRing`]s, drained on demand.
//!
//! [`TxObs::from_env`] builds an observer from the `RTF_METRICS`,
//! `RTF_METRICS_TEXT` and `RTF_CHROME_TRACE` environment variables;
//! [`TxObs::global_from_env`] memoizes one process-wide instance so every TM
//! created during a run feeds the same exported files.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use rtf_txbase::{FxHashMap, StatSnapshot, TmStats};
use rtf_txengine::{obs_now_ns, stable_thread_id, Event, EventSink, SpanRec, StatsSink};

use crate::chrome::chrome_trace;
use crate::conflicts::{ConflictTable, Hotspot};
use crate::hist::{HistSnapshot, LogHist};
use crate::json::Json;
use crate::report;
use crate::ring::SpanRing;
use crate::snapshot::WaitEdge;

/// Observer tunables.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Whether to capture lifecycle spans (histograms and attribution are
    /// always on — they are O(1) per event).
    pub spans: bool,
    /// Capacity of each per-thread span ring (a power of two). When a ring
    /// fills, new spans are shed and counted, never blocked on.
    pub ring_capacity: usize,
    /// Rows in the exported conflict-hotspot report.
    pub top_n: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig { spans: true, ring_capacity: 8192, top_n: 16 }
    }
}

/// Where [`TxObs::export_or_warn`] writes its documents.
#[derive(Clone, Debug, Default)]
pub struct ExportPaths {
    /// Machine-readable metrics snapshot (`RTF_METRICS`).
    pub metrics_json: Option<PathBuf>,
    /// Human-readable text report (`RTF_METRICS_TEXT`).
    pub text: Option<PathBuf>,
    /// Chrome trace-event document (`RTF_CHROME_TRACE`).
    pub chrome_trace: Option<PathBuf>,
}

/// One drained span plus the stable id of the thread that recorded it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanObs {
    /// The lifecycle record.
    pub rec: SpanRec,
    /// Stable id of the recording thread.
    pub thread: u64,
}

/// A point-in-time copy of everything a [`TxObs`] has aggregated.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Flat event counters (summed across every attached TM).
    pub counters: StatSnapshot,
    /// Successful top-level commit-chain latency.
    pub commit: HistSnapshot,
    /// `waitTurn` blocking time (strong ordering's direct cost).
    pub wait_turn: HistSnapshot,
    /// Sub-transaction validation time.
    pub validation: HistSnapshot,
    /// Future submission-to-completion latency.
    pub future_lifetime: HistSnapshot,
    /// Most-conflicted cells, descending.
    pub hotspots: Vec<Hotspot>,
    /// Spans successfully recorded into rings.
    pub spans_recorded: u64,
    /// Spans shed because a ring was full.
    pub spans_dropped: u64,
    /// Peak single-ring occupancy over the run — the ring-sizing signal
    /// that predicts `spans_dropped` before drops happen.
    pub span_ring_high_water: u64,
    /// Instantaneous values of every registered gauge (`(name, value)`,
    /// sorted by name), sampled when the snapshot was cut.
    pub gauges: Vec<(String, u64)>,
    /// Live blocked-on edges (who waits on whom), sorted by
    /// `(thread, depth)`, as of when the snapshot was cut.
    pub waits: Vec<WaitEdge>,
}

fn hist_json(h: &HistSnapshot) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::U64(h.count)),
        ("mean_ns".into(), Json::F64(h.mean)),
        ("p50_ns".into(), Json::U64(h.p50)),
        ("p95_ns".into(), Json::U64(h.p95)),
        ("p99_ns".into(), Json::U64(h.p99)),
        ("max_ns".into(), Json::U64(h.max)),
        (
            "buckets".into(),
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(lo, c)| Json::Arr(vec![Json::U64(lo), Json::U64(c)]))
                    .collect(),
            ),
        ),
    ])
}

impl MetricsSnapshot {
    /// The machine-readable export document (`RTF_METRICS` format).
    pub fn to_json(&self) -> Json {
        let c = &self.counters;
        let counters = Json::Obj(vec![
            ("top_commits".into(), Json::U64(c.top_commits)),
            ("top_ro_commits".into(), Json::U64(c.top_ro_commits)),
            ("top_validation_aborts".into(), Json::U64(c.top_validation_aborts)),
            ("inter_tree_aborts".into(), Json::U64(c.inter_tree_aborts)),
            ("fallback_runs".into(), Json::U64(c.fallback_runs)),
            ("sub_commits".into(), Json::U64(c.sub_commits)),
            ("sub_validation_aborts".into(), Json::U64(c.sub_validation_aborts)),
            ("continuation_restarts".into(), Json::U64(c.continuation_restarts)),
            ("futures_submitted".into(), Json::U64(c.futures_submitted)),
            ("ro_validation_skips".into(), Json::U64(c.ro_validation_skips)),
            ("ro_validation_taken".into(), Json::U64(c.ro_validation_taken)),
            ("helped_writebacks".into(), Json::U64(c.helped_writebacks)),
            ("versions_gced".into(), Json::U64(c.versions_gced)),
            ("wait_turn_ns".into(), Json::U64(c.wait_turn_ns)),
            ("validation_ns".into(), Json::U64(c.validation_ns)),
            ("pool_helped_tasks".into(), Json::U64(c.pool_helped_tasks)),
            ("pool_fence_deferrals".into(), Json::U64(c.pool_fence_deferrals)),
            ("read_fast".into(), Json::U64(c.read_fast)),
            ("read_slow".into(), Json::U64(c.read_slow)),
            ("stalls_detected".into(), Json::U64(c.stalls_detected)),
            ("stall_aborts".into(), Json::U64(c.stall_aborts)),
            ("pool_task_panics".into(), Json::U64(c.pool_task_panics)),
            ("future_panics".into(), Json::U64(c.future_panics)),
            ("retries_exhausted".into(), Json::U64(c.retries_exhausted)),
            ("orec_snapshot_retries".into(), Json::U64(c.orec_snapshot_retries)),
            ("tickets_issued".into(), Json::U64(c.tickets_issued)),
            ("ordered_commits".into(), Json::U64(c.ordered_commits)),
            ("tickets_abandoned".into(), Json::U64(c.tickets_abandoned)),
            ("ticket_wait_ns".into(), Json::U64(c.ticket_wait_ns)),
            ("ticket_spurious_wakes".into(), Json::U64(c.ticket_spurious_wakes)),
            ("wakers_registered".into(), Json::U64(c.wakers_registered)),
            ("wakers_fired".into(), Json::U64(c.wakers_fired)),
            ("async_polls".into(), Json::U64(c.async_polls)),
            ("async_spurious_polls".into(), Json::U64(c.async_spurious_polls)),
        ]);
        let derived = Json::Obj(vec![
            ("commits".into(), Json::U64(c.commits())),
            ("top_aborts".into(), Json::U64(c.top_aborts())),
            ("top_abort_rate".into(), Json::F64(c.top_abort_rate())),
            ("executions_per_commit".into(), Json::F64(c.executions_per_commit())),
        ]);
        let hotspots = Json::Arr(
            self.hotspots
                .iter()
                .map(|h| {
                    Json::Obj(vec![
                        ("cell".into(), Json::U64(h.cell)),
                        ("total".into(), Json::U64(h.total())),
                        ("top_validation".into(), Json::U64(h.top_validation)),
                        ("sub_validation".into(), Json::U64(h.sub_validation)),
                        ("inter_tree".into(), Json::U64(h.inter_tree)),
                        ("last_writer_tree".into(), Json::U64(h.last_writer_tree)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("schema".into(), Json::str("rtf-metrics-v1")),
            ("counters".into(), counters),
            ("derived".into(), derived),
            (
                "histograms_ns".into(),
                Json::Obj(vec![
                    ("commit".into(), hist_json(&self.commit)),
                    ("wait_turn".into(), hist_json(&self.wait_turn)),
                    ("validation".into(), hist_json(&self.validation)),
                    ("future_lifetime".into(), hist_json(&self.future_lifetime)),
                ]),
            ),
            ("abort_hotspots".into(), hotspots),
            (
                "spans".into(),
                Json::Obj(vec![
                    ("recorded".into(), Json::U64(self.spans_recorded)),
                    ("dropped".into(), Json::U64(self.spans_dropped)),
                    ("high_water".into(), Json::U64(self.span_ring_high_water)),
                ]),
            ),
            (
                "gauges".into(),
                Json::Obj(self.gauges.iter().map(|(n, v)| (n.clone(), Json::U64(*v))).collect()),
            ),
            ("waits".into(), Json::Arr(self.waits.iter().map(WaitEdge::to_json).collect())),
        ])
    }

    /// The human-readable report (`RTF_METRICS_TEXT` format).
    pub fn text_report(&self) -> String {
        report::text_report(self)
    }
}

static OBS_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of (observer id → this thread's ring). Observers
    /// are few and long-lived; a linear scan beats hashing.
    static TLS_RINGS: std::cell::RefCell<Vec<(u64, Arc<SpanRing>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// What one thread published on entering a wait site (the live half of a
/// [`WaitEdge`]; `waited_ns` is resolved at snapshot time).
#[derive(Clone, Copy)]
struct WaitStart {
    kind: rtf_txengine::StallKind,
    tree: u64,
    a: u64,
    b: u64,
    since_ns: u64,
}

/// A registered live gauge: sampled (not accumulated) at snapshot time.
type GaugeFn = Box<dyn Fn() -> u64 + Send + Sync>;

/// The observability aggregate (see module docs). Create with
/// [`TxObs::new`] and attach via [`TxObs::sink`]; it is an [`EventSink`].
pub struct TxObs {
    id: u64,
    config: ObsConfig,
    exports: ExportPaths,
    stats: Arc<TmStats>,
    stats_sink: StatsSink,
    hist_commit: LogHist,
    hist_wait_turn: LogHist,
    hist_validation: LogHist,
    hist_future: LogHist,
    conflicts: ConflictTable,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    collected: Mutex<Vec<SpanObs>>,
    // Wait sites and gauges are slow-path state (threads touch `waits` only
    // when they are about to park; gauges only at snapshot time), so plain
    // mutex-guarded maps are plenty — same reasoning as `ConflictTable`.
    waits: Mutex<FxHashMap<u64, Vec<WaitStart>>>,
    gauges: Mutex<Vec<(String, GaugeFn)>>,
}

impl fmt::Debug for TxObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxObs").field("id", &self.id).field("config", &self.config).finish()
    }
}

impl TxObs {
    /// A fresh observer with no export paths (snapshot programmatically).
    pub fn new(config: ObsConfig) -> Arc<TxObs> {
        TxObs::with_exports(config, ExportPaths::default())
    }

    /// A fresh observer that [`TxObs::export_or_warn`] will write out.
    pub fn with_exports(config: ObsConfig, exports: ExportPaths) -> Arc<TxObs> {
        let stats = Arc::new(TmStats::default());
        Arc::new(TxObs {
            id: OBS_IDS.fetch_add(1, Ordering::Relaxed),
            config,
            exports,
            stats_sink: StatsSink::new(Arc::clone(&stats)),
            stats,
            hist_commit: LogHist::new(),
            hist_wait_turn: LogHist::new(),
            hist_validation: LogHist::new(),
            hist_future: LogHist::new(),
            conflicts: ConflictTable::default(),
            rings: Mutex::new(Vec::new()),
            collected: Mutex::new(Vec::new()),
            waits: Mutex::new(FxHashMap::default()),
            gauges: Mutex::new(Vec::new()),
        })
    }

    /// An observer configured from the environment, or `None` when no
    /// export variable is set. `RTF_METRICS=<path>` requests the JSON
    /// snapshot, `RTF_METRICS_TEXT=<path>` the text report, and
    /// `RTF_CHROME_TRACE=<path>` the trace (which also switches span
    /// capture on).
    pub fn from_env() -> Option<Arc<TxObs>> {
        fn path(var: &str) -> Option<PathBuf> {
            std::env::var_os(var).filter(|v| !v.is_empty()).map(PathBuf::from)
        }
        let exports = ExportPaths {
            metrics_json: path("RTF_METRICS"),
            text: path("RTF_METRICS_TEXT"),
            chrome_trace: path("RTF_CHROME_TRACE"),
        };
        if exports.metrics_json.is_none()
            && exports.text.is_none()
            && exports.chrome_trace.is_none()
        {
            return None;
        }
        let config = ObsConfig { spans: exports.chrome_trace.is_some(), ..ObsConfig::default() };
        Some(TxObs::with_exports(config, exports))
    }

    /// The process-wide env-configured observer (memoized [`TxObs::from_env`]),
    /// so every TM instance created during a run aggregates into the same
    /// exported files.
    pub fn global_from_env() -> Option<Arc<TxObs>> {
        static GLOBAL: OnceLock<Option<Arc<TxObs>>> = OnceLock::new();
        GLOBAL.get_or_init(TxObs::from_env).clone()
    }

    /// This observer as an attachable sink.
    pub fn sink(self: &Arc<Self>) -> Arc<dyn EventSink> {
        Arc::clone(self) as Arc<dyn EventSink>
    }

    /// The observer's tunables.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// The configured export destinations.
    pub fn exports(&self) -> &ExportPaths {
        &self.exports
    }

    fn ring_for_this_thread(&self) -> Arc<SpanRing> {
        TLS_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(SpanRing::new(self.config.ring_capacity, stable_thread_id()));
            self.rings.lock().push(Arc::clone(&ring));
            cache.push((self.id, Arc::clone(&ring)));
            ring
        })
    }

    /// Drains every thread's ring into the retained span list and returns a
    /// copy of everything collected so far, ordered by start time.
    pub fn collected_spans(&self) -> Vec<SpanObs> {
        let mut collected = self.collected.lock();
        for ring in self.rings.lock().iter() {
            let thread = ring.thread();
            collected.extend(ring.drain().into_iter().map(|rec| SpanObs { rec, thread }));
        }
        collected.sort_by_key(|s| (s.rec.start_ns, s.rec.end_ns, s.rec.node));
        collected.clone()
    }

    /// Registers a live gauge sampled into every snapshot's `gauges` list.
    /// Re-registering a name replaces the previous closure, so a sequence
    /// of TM instances sharing one observer (a benchmark sweep) always
    /// reports the newest instance and drops the stale capture.
    pub fn register_gauge(
        &self,
        name: impl Into<String>,
        sample: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        let name = name.into();
        let mut gauges = self.gauges.lock();
        if let Some(slot) = gauges.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = Box::new(sample);
        } else {
            gauges.push((name, Box::new(sample)));
        }
    }

    /// The live blocked-on edges as of now (see [`WaitEdge`]), sorted by
    /// `(thread, depth)`.
    pub fn active_waits(&self) -> Vec<WaitEdge> {
        let now = obs_now_ns();
        let mut edges: Vec<WaitEdge> = self
            .waits
            .lock()
            .iter()
            .flat_map(|(&thread, stack)| {
                stack.iter().enumerate().map(move |(depth, w)| WaitEdge {
                    thread,
                    depth: depth as u32,
                    kind: w.kind,
                    tree: w.tree,
                    a: w.a,
                    b: w.b,
                    waited_ns: now.saturating_sub(w.since_ns),
                })
            })
            .collect();
        edges.sort_by_key(|e| (e.thread, e.depth));
        edges
    }

    /// A point-in-time copy of all aggregates (does not drain spans).
    pub fn metrics(&self) -> MetricsSnapshot {
        let (mut recorded, mut dropped, mut high_water) = (0, 0, 0);
        for ring in self.rings.lock().iter() {
            recorded += ring.pushed();
            dropped += ring.dropped();
            high_water = high_water.max(ring.high_water());
        }
        let mut gauges: Vec<(String, u64)> =
            self.gauges.lock().iter().map(|(n, f)| (n.clone(), f())).collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters: self.stats.snapshot(),
            commit: self.hist_commit.snapshot(),
            wait_turn: self.hist_wait_turn.snapshot(),
            validation: self.hist_validation.snapshot(),
            future_lifetime: self.hist_future.snapshot(),
            hotspots: self.conflicts.top_n(self.config.top_n),
            spans_recorded: recorded,
            spans_dropped: dropped,
            span_ring_high_water: high_water,
            gauges,
            waits: self.active_waits(),
        }
    }

    /// Writes every configured export document, returning the paths
    /// written.
    pub fn export_configured(&self) -> std::io::Result<Vec<PathBuf>> {
        fn write(path: &Path, contents: String, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
            std::fs::write(path, contents)?;
            out.push(path.to_path_buf());
            Ok(())
        }
        let mut written = Vec::new();
        if self.exports.metrics_json.is_some() || self.exports.text.is_some() {
            let snap = self.metrics();
            if let Some(p) = &self.exports.metrics_json {
                write(p, snap.to_json().pretty(), &mut written)?;
            }
            if let Some(p) = &self.exports.text {
                write(p, snap.text_report(), &mut written)?;
            }
        }
        if let Some(p) = &self.exports.chrome_trace {
            write(p, chrome_trace(&self.collected_spans()).pretty(), &mut written)?;
        }
        Ok(written)
    }

    /// [`TxObs::export_configured`], downgrading IO failures to a stderr
    /// warning (the drop path must not panic).
    pub fn export_or_warn(&self) {
        if let Err(e) = self.export_configured() {
            eprintln!("[rtf txobs] metrics export failed: {e}");
        }
    }
}

impl EventSink for TxObs {
    fn event(&self, event: Event) {
        self.stats_sink.event(event);
        match event {
            Event::TopCommitNs(ns) => self.hist_commit.record(ns),
            Event::WaitTurnNs(ns) => self.hist_wait_turn.record(ns),
            Event::ValidationNs(ns) => self.hist_validation.record(ns),
            Event::FutureLifetimeNs(ns) => self.hist_future.record(ns),
            Event::Conflict { kind, cell, writer_tree } => {
                self.conflicts.record(kind, cell.raw() as u64, writer_tree.0);
            }
            Event::WaitBegin { kind, tree, a, b } => {
                self.waits.lock().entry(stable_thread_id()).or_default().push(WaitStart {
                    kind,
                    tree,
                    a,
                    b,
                    since_ns: obs_now_ns(),
                });
            }
            Event::WaitEnd => {
                let mut waits = self.waits.lock();
                let tid = stable_thread_id();
                if let Some(stack) = waits.get_mut(&tid) {
                    stack.pop();
                    if stack.is_empty() {
                        waits.remove(&tid);
                    }
                }
            }
            _ => {}
        }
    }

    fn spans_enabled(&self) -> bool {
        self.config.spans
    }

    fn span(&self, rec: SpanRec) {
        // A full ring sheds the record (and counts it) rather than blocking.
        self.ring_for_this_thread().push(&rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_txengine::{ConflictKind, SpanKind};

    fn cell_id(raw: usize) -> rtf_txengine::CellId {
        // CellId wraps a raw pointer-derived usize; any value works for
        // attribution bookkeeping.
        rtf_txengine::CellId::from_raw(raw)
    }

    #[test]
    fn events_feed_counters_histograms_and_hotspots() {
        let obs = TxObs::new(ObsConfig::default());
        let sink = obs.sink();
        sink.event(Event::TopCommit);
        sink.event(Event::TopCommitNs(1_000));
        sink.event(Event::TopCommitNs(2_000));
        sink.event(Event::WaitTurnNs(500));
        sink.event(Event::ValidationNs(50));
        sink.event(Event::FutureLifetimeNs(9_999));
        sink.event(Event::Conflict {
            kind: ConflictKind::SubValidation,
            cell: cell_id(0xabc),
            writer_tree: rtf_txbase::TreeId(7),
        });
        let m = obs.metrics();
        assert_eq!(m.counters.top_commits, 1);
        assert_eq!(m.commit.count, 2);
        assert_eq!(m.wait_turn.count, 1);
        assert_eq!(m.validation.count, 1);
        assert_eq!(m.future_lifetime.count, 1);
        assert_eq!(m.hotspots.len(), 1);
        assert_eq!(m.hotspots[0].cell, 0xabc);
        assert_eq!(m.hotspots[0].last_writer_tree, 7);
    }

    #[test]
    fn spans_round_trip_through_rings() {
        let obs = TxObs::new(ObsConfig { spans: true, ring_capacity: 8, top_n: 4 });
        let sink = obs.sink();
        assert!(sink.spans_enabled());
        let rec = SpanRec {
            kind: SpanKind::Future,
            tree: 1,
            node: 2,
            parent: 3,
            start_ns: 100,
            end_ns: 200,
            ok: true,
        };
        sink.span(rec);
        let spans = obs.collected_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].rec, rec);
        assert_eq!(spans[0].thread, stable_thread_id());
        // Collected spans are retained across repeated drains.
        assert_eq!(obs.collected_spans().len(), 1);
        let m = obs.metrics();
        assert_eq!(m.spans_recorded, 1);
        assert_eq!(m.spans_dropped, 0);
    }

    #[test]
    fn span_capture_can_be_disabled() {
        let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
        assert!(!obs.sink().spans_enabled());
    }

    #[test]
    fn multi_thread_spans_carry_their_thread_ids() {
        let obs = TxObs::new(ObsConfig::default());
        let hs: Vec<_> = (0..3)
            .map(|i| {
                let obs = Arc::clone(&obs);
                std::thread::spawn(move || {
                    obs.span(SpanRec {
                        kind: SpanKind::WaitTurn,
                        tree: i,
                        node: 0,
                        parent: 0,
                        start_ns: i,
                        end_ns: i + 1,
                        ok: true,
                    });
                    stable_thread_id()
                })
            })
            .collect();
        let mut tids: Vec<u64> = hs.into_iter().map(|h| h.join().unwrap()).collect();
        let spans = obs.collected_spans();
        let mut seen: Vec<u64> = spans.iter().map(|s| s.thread).collect();
        tids.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, tids);
    }

    #[test]
    fn wait_begin_end_maintains_a_per_thread_stack_of_edges() {
        use rtf_txengine::StallKind;
        let obs = TxObs::new(ObsConfig::default());
        let sink = obs.sink();
        sink.event(Event::WaitBegin { kind: StallKind::TicketWait, tree: 7, a: 0, b: 42 });
        sink.event(Event::WaitBegin { kind: StallKind::WaitTurn, tree: 7, a: 3, b: 9 });
        let m = obs.metrics();
        assert_eq!(m.waits.len(), 2);
        assert_eq!(m.waits[0].depth, 0);
        assert_eq!(m.waits[0].kind, StallKind::TicketWait);
        assert_eq!((m.waits[0].a, m.waits[0].b), (0, 42));
        assert_eq!(m.waits[1].depth, 1);
        assert_eq!(m.waits[1].kind, StallKind::WaitTurn);
        assert_eq!(m.waits[0].thread, stable_thread_id());
        // LIFO: the inner site clears first.
        sink.event(Event::WaitEnd);
        let m = obs.metrics();
        assert_eq!(m.waits.len(), 1);
        assert_eq!(m.waits[0].kind, StallKind::TicketWait);
        sink.event(Event::WaitEnd);
        assert!(obs.metrics().waits.is_empty());
        // A stray WaitEnd with no open site is ignored.
        sink.event(Event::WaitEnd);
        assert!(obs.metrics().waits.is_empty());
    }

    #[test]
    fn gauges_are_sampled_at_snapshot_time_and_replace_by_name() {
        let obs = TxObs::new(ObsConfig::default());
        let v = Arc::new(AtomicU64::new(5));
        let v2 = Arc::clone(&v);
        obs.register_gauge("queue_depth", move || v2.load(Ordering::Relaxed));
        obs.register_gauge("lane_depth", || 3);
        let m = obs.metrics();
        // Sorted by name.
        assert_eq!(m.gauges, vec![("lane_depth".into(), 3), ("queue_depth".into(), 5)]);
        v.store(9, Ordering::Relaxed);
        assert_eq!(obs.metrics().gauges[1], ("queue_depth".into(), 9));
        // Re-registration replaces rather than duplicates.
        obs.register_gauge("lane_depth", || 4);
        let m = obs.metrics();
        assert_eq!(m.gauges.len(), 2);
        assert_eq!(m.gauges[0], ("lane_depth".into(), 4));
    }

    #[test]
    fn export_writes_all_configured_documents() {
        let dir = std::env::temp_dir().join(format!("rtf-txobs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let exports = ExportPaths {
            metrics_json: Some(dir.join("m.json")),
            text: Some(dir.join("m.txt")),
            chrome_trace: Some(dir.join("t.json")),
        };
        let obs = TxObs::with_exports(ObsConfig::default(), exports);
        obs.event(Event::TopCommit);
        obs.event(Event::TopCommitNs(123));
        obs.span(SpanRec {
            kind: SpanKind::TopLevel,
            tree: 1,
            node: 1,
            parent: 0,
            start_ns: 0,
            end_ns: 10,
            ok: true,
        });
        let written = obs.export_configured().unwrap();
        assert_eq!(written.len(), 3);
        let metrics = Json::parse(&std::fs::read_to_string(dir.join("m.json")).unwrap()).unwrap();
        assert_eq!(metrics.path(&["counters", "top_commits"]).unwrap().as_u64(), Some(1));
        assert_eq!(metrics.path(&["histograms_ns", "commit", "count"]).unwrap().as_u64(), Some(1));
        let trace = Json::parse(&std::fs::read_to_string(dir.join("t.json")).unwrap()).unwrap();
        assert_eq!(trace.get("traceEvents").unwrap().as_arr().unwrap().len(), 2);
        assert!(std::fs::read_to_string(dir.join("m.txt")).unwrap().contains("commits"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
