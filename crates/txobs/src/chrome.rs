//! Chrome trace-event export (`chrome://tracing` / Perfetto).
//!
//! Transaction-*tree* lifecycle spans (top-level attempt, future body,
//! continuation segment) become **async nestable** events (`"b"`/`"e"`)
//! keyed by the tree id, so a future executing on a pool thread still nests
//! under the top-level transaction that submitted it — a contended run
//! renders as a flamegraph of futures overlapping their continuations.
//! Thread-scoped phases (`waitTurn`, validation, the top commit chain, pool
//! helping) become **complete** events (`"X"`) on the recording thread's
//! track. Timestamps are microseconds (fractional) against the shared
//! [`obs_now_ns`](rtf_txengine::obs_now_ns) epoch.

use rtf_txengine::SpanKind;

use crate::json::Json;
use crate::obs::SpanObs;

const PROCESS_ID: u64 = 1;

fn micros(ns: u64) -> Json {
    // Integral microsecond values stay exact integers, which keeps golden
    // files readable; sub-microsecond precision falls back to fractions.
    if ns % 1000 == 0 {
        Json::U64(ns / 1000)
    } else {
        Json::F64(ns as f64 / 1000.0)
    }
}

fn args(span: &SpanObs) -> Json {
    Json::Obj(vec![
        ("tree".into(), Json::U64(span.rec.tree)),
        ("node".into(), Json::U64(span.rec.node)),
        ("parent".into(), Json::U64(span.rec.parent)),
        ("ok".into(), Json::Bool(span.rec.ok)),
    ])
}

fn base_fields(span: &SpanObs, phase: &str, ts_ns: u64) -> Vec<(String, Json)> {
    vec![
        ("name".into(), Json::str(span.rec.kind.name())),
        ("cat".into(), Json::str("rtf")),
        ("ph".into(), Json::str(phase)),
        ("ts".into(), micros(ts_ns)),
        ("pid".into(), Json::U64(PROCESS_ID)),
        ("tid".into(), Json::U64(span.thread)),
    ]
}

/// Renders spans as a Chrome trace-event document
/// (`{"traceEvents": [...]}`), loadable by Perfetto.
pub fn chrome_trace(spans: &[SpanObs]) -> Json {
    // (sort key ns, phase rank for stable zero-width ordering, event)
    let mut events: Vec<(u64, u8, Json)> = Vec::with_capacity(spans.len() * 2);
    for span in spans {
        match span.rec.kind {
            SpanKind::TopLevel | SpanKind::Future | SpanKind::Continuation => {
                // Async nestable pair keyed by the tree: Perfetto nests the
                // begin/end pairs sharing one id by their timestamps, which
                // reconstructs the tree across threads.
                let id = Json::str(format!("tree-{}", span.rec.tree));
                let mut b = base_fields(span, "b", span.rec.start_ns);
                b.push(("id".into(), id.clone()));
                b.push(("args".into(), args(span)));
                events.push((span.rec.start_ns, 1, Json::Obj(b)));
                let mut e = base_fields(span, "e", span.rec.end_ns);
                e.push(("id".into(), id));
                events.push((span.rec.end_ns, 0, Json::Obj(e)));
            }
            SpanKind::WaitTurn
            | SpanKind::Validation
            | SpanKind::TopCommit
            | SpanKind::PoolHelp => {
                let mut x = base_fields(span, "X", span.rec.start_ns);
                x.push(("dur".into(), micros(span.rec.end_ns.saturating_sub(span.rec.start_ns))));
                x.push(("args".into(), args(span)));
                events.push((span.rec.start_ns, 2, Json::Obj(x)));
            }
        }
    }
    // Ascending time; at equal timestamps close async spans before opening
    // new ones so zero-width traces still nest.
    events.sort_by_key(|e| (e.0, e.1));
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events.into_iter().map(|(_, _, e)| e).collect())),
        ("displayTimeUnit".into(), Json::str("ns")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_txengine::SpanRec;

    fn span(kind: SpanKind, tree: u64, node: u64, start_ns: u64, end_ns: u64) -> SpanObs {
        SpanObs {
            rec: SpanRec { kind, tree, node, parent: 0, start_ns, end_ns, ok: true },
            thread: 1,
        }
    }

    #[test]
    fn lifecycle_spans_become_async_pairs_sharing_the_tree_id() {
        let doc = chrome_trace(&[
            span(SpanKind::TopLevel, 5, 10, 0, 9_000),
            span(SpanKind::Future, 5, 11, 1_000, 4_000),
        ]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> =
            events.iter().map(|e| e.get("ph").unwrap().as_str().unwrap()).collect();
        assert_eq!(phases, vec!["b", "b", "e", "e"]);
        for e in events {
            assert_eq!(e.get("id").unwrap().as_str(), Some("tree-5"));
        }
        // The future opens after its parent and closes before it: nested.
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("future"));
        assert_eq!(events[2].get("name").unwrap().as_str(), Some("future"));
    }

    #[test]
    fn phase_spans_become_complete_events_with_duration() {
        let doc = chrome_trace(&[span(SpanKind::WaitTurn, 5, 10, 2_000, 3_500)]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(e.get("ts").unwrap().as_u64(), Some(2));
        assert_eq!(e.get("dur").unwrap().as_f64(), Some(1.5));
        assert_eq!(e.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(e.path(&["args", "node"]).unwrap().as_u64(), Some(10));
    }

    #[test]
    fn output_parses_as_json_and_orders_by_time() {
        let doc = chrome_trace(&[
            span(SpanKind::Validation, 1, 2, 7_000, 8_000),
            span(SpanKind::TopLevel, 1, 1, 0, 10_000),
        ]);
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        let events = reparsed.get("traceEvents").unwrap().as_arr().unwrap();
        let ts: Vec<f64> = events.iter().map(|e| e.get("ts").unwrap().as_f64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
