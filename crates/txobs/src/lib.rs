//! Observability for the `rtf` transactional-memory stack.
//!
//! The runtime reports everything it does through the [`EventSink`] seam of
//! `rtf-txengine`; this crate is the sink that turns those reports into
//! answers. One [`TxObs`] attached to a TM instance (or shared by many)
//! aggregates:
//!
//! * **spans** — per-transaction lifecycle intervals (top-level attempts,
//!   future/continuation bodies, `waitTurn`, validation, the commit chain,
//!   pool helping) captured into bounded lock-free per-thread ring buffers
//!   ([`ring`]) that shed load (with an explicit drop counter) instead of
//!   ever blocking the hot path;
//! * **latency histograms** — log-bucketed p50/p95/p99/max for commit,
//!   `waitTurn`, validation and future submission-to-completion ([`hist`]),
//!   replacing the lossy flat nanosecond accumulators;
//! * **abort attribution** — per-cell conflict counts with the conflicting
//!   writer tree, ranked into a hotspot report ([`conflicts`]);
//! * **exports** — a dependency-free JSON snapshot ([`json`]), a
//!   human-readable report ([`report`]), and a Chrome trace-event document
//!   ([`chrome`]) that renders the transaction tree in Perfetto;
//! * **live telemetry** — monotone snapshot deltas ([`snapshot`]), a
//!   background sampler streaming JSONL and Prometheus documents while the
//!   workload runs ([`live`]), and the exposition renderer plus optional
//!   scrape endpoint ([`prom`]).
//!
//! Everything is opt-in: with no observer attached the runtime pays one
//! virtual `spans_enabled()` call per potential span and nothing else.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chrome;
pub mod conflicts;
pub mod hist;
pub mod json;
pub mod live;
pub mod obs;
pub mod prom;
pub mod replay;
pub mod report;
pub mod ring;
pub mod snapshot;

pub use chrome::chrome_trace;
pub use conflicts::{ConflictTable, Hotspot};
pub use hist::{HistSnapshot, LogHist};
pub use json::{Json, ParseError};
pub use live::{JsonlSink, LiveConfig, LiveExporter, LiveSink, PromTextSink, STREAM_SCHEMA};
pub use obs::{ExportPaths, MetricsSnapshot, ObsConfig, SpanObs, TxObs};
pub use prom::render_prometheus;
#[cfg(feature = "live-tcp")]
pub use prom::PromServer;
pub use replay::{state_hash, CommitLog, ReplayArtifact, ReplayCounters, REPLAY_SCHEMA};
pub use ring::SpanRing;
pub use snapshot::{SnapshotDiff, WaitEdge};

// Re-exported so observer clients need not depend on the engine crate for
// the sink vocabulary.
pub use rtf_txengine::{
    obs_now_ns, stable_thread_id, Event, EventSink, SpanKind, SpanRec, StallKind,
};
