//! A minimal, dependency-free JSON document model.
//!
//! The exporters need to *write* JSON and the CI smoke / golden tests need
//! to *read it back*; the build environment vendors no serde, so both
//! directions live here. Objects preserve insertion order (fields are a
//! `Vec`, not a map) so exported documents are byte-stable and golden tests
//! can compare whole files. The parser is a straightforward recursive
//! descent over the full JSON grammar — integers that fit `u64` stay exact
//! ([`Json::U64`]); everything else numeric becomes an `f64`.

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` exactly (ids, counters).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builder shorthand for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Field lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested field lookup: `doc.path(&["histograms_ns", "commit", "p99"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's ordered field list.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (the export format —
    /// byte-stable, diff-friendly).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest round-trippable form; pin
                    // integral floats to `x.0` so the type survives reparse.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&v.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(src: &str) -> Result<Json, ParseError> {
        let mut p = Parser { src: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the source text.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte-level continuation handling is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.src.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.src[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("rtf")),
            ("count".into(), Json::U64(3)),
            ("rate".into(), Json::F64(0.25)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"rtf","count":3,"rate":0.25,"flags":[true,null],"empty":{}}"#
        );
        assert_eq!(
            doc.pretty(),
            "{\n  \"name\": \"rtf\",\n  \"count\": 3,\n  \"rate\": 0.25,\n  \"flags\": [\n    true,\n    null\n  ],\n  \"empty\": {}\n}\n"
        );
    }

    #[test]
    fn round_trips_through_parser() {
        let doc = Json::Obj(vec![
            ("esc\"aped\n".into(), Json::str("tab\there")),
            ("big".into(), Json::U64(u64::MAX)),
            ("neg".into(), Json::F64(-2.5)),
            ("int_float".into(), Json::F64(4.0)),
            ("nested".into(), Json::Arr(vec![Json::Obj(vec![("k".into(), Json::U64(1))])])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn parses_foreign_documents() {
        let doc =
            Json::parse(r#" { "a" : [ 1 , 2.5e3 , -4 ], "b" : { "c" : "A\t" }, "d": false } "#)
                .unwrap();
        assert_eq!(doc.path(&["a"]).unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.path(&["a"]).unwrap().as_arr().unwrap()[1].as_f64(), Some(2500.0));
        assert_eq!(doc.path(&["b", "c"]).unwrap().as_str(), Some("A\t"));
        assert_eq!(doc.get("d"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn integers_stay_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::U64(u64::MAX));
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
        let err = Json::parse("[1, oops]").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }
}
