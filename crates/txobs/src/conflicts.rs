//! Abort attribution: which cells conflicts concentrate on.
//!
//! Every attributed abort ([`Event::Conflict`]) names the cell whose read
//! was displaced (or whose tentative entry was foreign) and, when known, the
//! tree owning the displacing write. This table aggregates them per cell so
//! a run can be summarized as a *conflict-hotspot report* — the site-level
//! profile that contention-aware scheduling and data-mapping work needs.
//! Aborts are orders of magnitude rarer than reads, so a plain mutex-guarded
//! map is plenty; the hot commit path never touches it.

use parking_lot::Mutex;
use rtf_txbase::FxHashMap;
use rtf_txengine::ConflictKind;

#[derive(Default, Clone, Copy)]
struct CellCounts {
    top_validation: u64,
    sub_validation: u64,
    inter_tree: u64,
    last_writer_tree: u64,
}

/// One row of the hotspot report: a cell and its attributed abort counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hotspot {
    /// Raw id of the conflicted cell (stable within one process run).
    pub cell: u64,
    /// Aborts attributed at top-level commit validation.
    pub top_validation: u64,
    /// Aborts attributed at sub-transaction (Alg 4) validation.
    pub sub_validation: u64,
    /// Whole-tree aborts from foreign tentative entries.
    pub inter_tree: u64,
    /// Raw id of the most recent known conflicting writer tree (0 when the
    /// displacement was an already-permanent commit).
    pub last_writer_tree: u64,
}

impl Hotspot {
    /// Total attributed aborts on this cell.
    pub fn total(&self) -> u64 {
        self.top_validation + self.sub_validation + self.inter_tree
    }
}

/// Per-cell conflict counters (see module docs).
#[derive(Default)]
pub struct ConflictTable {
    map: Mutex<FxHashMap<u64, CellCounts>>,
}

impl ConflictTable {
    /// Records one attributed abort.
    pub fn record(&self, kind: ConflictKind, cell: u64, writer_tree: u64) {
        let mut map = self.map.lock();
        let c = map.entry(cell).or_default();
        match kind {
            ConflictKind::TopValidation => c.top_validation += 1,
            ConflictKind::SubValidation => c.sub_validation += 1,
            ConflictKind::InterTree => c.inter_tree += 1,
        }
        if writer_tree != 0 {
            c.last_writer_tree = writer_tree;
        }
    }

    /// Total attributed aborts across all cells.
    pub fn total(&self) -> u64 {
        self.map.lock().values().map(|c| c.top_validation + c.sub_validation + c.inter_tree).sum()
    }

    /// The `n` most-conflicted cells, descending by total attributed aborts
    /// (ties broken by cell id for deterministic reports).
    pub fn top_n(&self, n: usize) -> Vec<Hotspot> {
        let mut rows: Vec<Hotspot> = self
            .map
            .lock()
            .iter()
            .map(|(&cell, c)| Hotspot {
                cell,
                top_validation: c.top_validation,
                sub_validation: c.sub_validation,
                inter_tree: c.inter_tree,
                last_writer_tree: c.last_writer_tree,
            })
            .collect();
        rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.cell.cmp(&b.cell)));
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_cell_and_ranks_by_total() {
        let t = ConflictTable::default();
        for _ in 0..3 {
            t.record(ConflictKind::SubValidation, 7, 40);
        }
        t.record(ConflictKind::TopValidation, 7, 0);
        t.record(ConflictKind::InterTree, 9, 41);
        assert_eq!(t.total(), 5);
        let top = t.top_n(10);
        assert_eq!(top.len(), 2);
        assert_eq!(
            top[0],
            Hotspot {
                cell: 7,
                top_validation: 1,
                sub_validation: 3,
                inter_tree: 0,
                last_writer_tree: 40,
            }
        );
        assert_eq!(top[0].total(), 4);
        assert_eq!(top[1].cell, 9);
        // Truncation honours n.
        assert_eq!(t.top_n(1).len(), 1);
    }

    #[test]
    fn permanent_displacements_do_not_clobber_known_writers() {
        let t = ConflictTable::default();
        t.record(ConflictKind::SubValidation, 1, 55);
        t.record(ConflictKind::TopValidation, 1, 0);
        assert_eq!(t.top_n(1)[0].last_writer_tree, 55);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let t = ConflictTable::default();
        t.record(ConflictKind::InterTree, 30, 0);
        t.record(ConflictKind::InterTree, 10, 0);
        t.record(ConflictKind::InterTree, 20, 0);
        let cells: Vec<u64> = t.top_n(3).iter().map(|h| h.cell).collect();
        assert_eq!(cells, vec![10, 20, 30]);
    }
}
