//! Commit-order record/replay (`rtf-replay-v1`).
//!
//! In ordered mode the runtime emits one [`Event::TicketCommit`] per
//! committed top-level transaction, *while the committer still holds its
//! lane's turn* — so the event stream of one lane is strictly ascending in
//! `seq` and, per lane, totally ordered. [`CommitLog`] is the sink that
//! captures this stream; [`ReplayArtifact`] freezes a finished run (commit
//! order per lane, final state hash, and the deterministic counter subset)
//! into a schema-versioned JSON document that a replay run re-derives and
//! compares bit-for-bit.
//!
//! ## What is (and is not) deterministic
//!
//! With a fixed ticket-issue order and a fixed txfault seed whose plan
//! injects only *aborts/delays/spurious wakeups* (no panics — a panic kills
//! whichever transaction the scheduler happens to hand the fault, which is
//! a scheduling-dependent choice), every retried transaction converges and
//! commits at its reserved position: the commit log, the final state, and
//! the lifecycle counters `{tickets_issued, ordered_commits,
//! tickets_abandoned}` are run-invariant. Raw *attempt* counters
//! (validation aborts, helped writebacks, wait times) remain
//! scheduling-dependent and are deliberately excluded, as are tree ids
//! (process-global, not reproducible across runs).

use std::sync::Arc;

use parking_lot::Mutex;
use rtf_txbase::StatSnapshot;
use rtf_txengine::{Event, EventSink};

use crate::json::Json;

/// Schema tag of the replay artifact document.
pub const REPLAY_SCHEMA: &str = "rtf-replay-v1";

/// An [`EventSink`] recording the ordered lane's commit order: one
/// `(lane, seq)` entry per [`Event::TicketCommit`], in emission order.
/// Attach via `RtfBuilder::event_sink` (or any sink tee).
#[derive(Default)]
pub struct CommitLog {
    entries: Mutex<Vec<(u32, u64)>>,
}

impl CommitLog {
    /// A fresh, shareable log.
    pub fn new() -> Arc<CommitLog> {
        Arc::new(CommitLog::default())
    }

    /// The recorded `(lane, seq)` entries, in emission order.
    pub fn entries(&self) -> Vec<(u32, u64)> {
        self.entries.lock().clone()
    }

    /// Number of recorded commits.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drops all recorded entries (for log reuse across runs).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

impl EventSink for CommitLog {
    fn event(&self, event: Event) {
        if let Event::TicketCommit { lane, seq, .. } = event {
            self.entries.lock().push((lane, seq));
        }
    }
}

/// Order-independent hash of a final state: fold each value with its index
/// so permutations differ, using FNV-1a over the little-endian bytes.
/// Stable across runs, platforms and (unlike `DefaultHasher`) Rust
/// versions — artifact hashes must be comparable across recordings.
pub fn state_hash(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for (i, v) in values.into_iter().enumerate() {
        fold(i as u64);
        fold(v);
    }
    h
}

/// The deterministic counter subset of a [`StatSnapshot`] (see module docs
/// for why only lifecycle counters qualify).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayCounters {
    /// Tickets drawn from the dispenser.
    pub tickets_issued: u64,
    /// Commits through the ordered lane.
    pub ordered_commits: u64,
    /// Tickets abandoned before commit.
    pub tickets_abandoned: u64,
}

impl ReplayCounters {
    /// Extracts the deterministic subset from a full snapshot.
    pub fn from_stats(s: &StatSnapshot) -> ReplayCounters {
        ReplayCounters {
            tickets_issued: s.tickets_issued,
            ordered_commits: s.ordered_commits,
            tickets_abandoned: s.tickets_abandoned,
        }
    }
}

/// One recorded ordered-mode run, comparable across record and replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayArtifact {
    /// Workload name (free-form; names the (workload, seed) pair).
    pub workload: String,
    /// The txfault seed the run was recorded under (0 = no fault plan).
    pub seed: u64,
    /// Dispenser shard count the run used.
    pub shards: u32,
    /// Per-lane commit order: `lanes[l]` is the ascending list of committed
    /// seqs of lane `l`. Grouping by lane makes the artifact deterministic
    /// for any shard count (cross-lane interleaving is scheduling noise).
    pub lanes: Vec<Vec<u64>>,
    /// Order-independent hash of the final transactional state.
    pub state_hash: u64,
    /// Deterministic lifecycle counters.
    pub counters: ReplayCounters,
}

impl ReplayArtifact {
    /// Builds the artifact from a finished run's raw commit log.
    pub fn from_run(
        workload: impl Into<String>,
        seed: u64,
        shards: u32,
        log: &CommitLog,
        state_hash: u64,
        stats: &StatSnapshot,
    ) -> ReplayArtifact {
        let mut lanes: Vec<Vec<u64>> = vec![Vec::new(); shards.max(1) as usize];
        for (lane, seq) in log.entries() {
            if let Some(l) = lanes.get_mut(lane as usize) {
                l.push(seq);
            }
        }
        ReplayArtifact {
            workload: workload.into(),
            seed,
            shards: shards.max(1),
            lanes,
            state_hash,
            counters: ReplayCounters::from_stats(stats),
        }
    }

    /// The `rtf-replay-v1` JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(REPLAY_SCHEMA)),
            ("workload".into(), Json::str(&self.workload)),
            ("seed".into(), Json::U64(self.seed)),
            ("shards".into(), Json::U64(self.shards as u64)),
            (
                "lanes".into(),
                Json::Arr(
                    self.lanes
                        .iter()
                        .map(|l| Json::Arr(l.iter().map(|&s| Json::U64(s)).collect()))
                        .collect(),
                ),
            ),
            ("state_hash".into(), Json::U64(self.state_hash)),
            (
                "counters".into(),
                Json::Obj(vec![
                    ("tickets_issued".into(), Json::U64(self.counters.tickets_issued)),
                    ("ordered_commits".into(), Json::U64(self.counters.ordered_commits)),
                    ("tickets_abandoned".into(), Json::U64(self.counters.tickets_abandoned)),
                ]),
            ),
        ])
    }

    /// Parses a serialized artifact, checking the schema tag.
    pub fn parse(text: &str) -> Result<ReplayArtifact, String> {
        let doc = Json::parse(text).map_err(|e| format!("replay artifact: {e:?}"))?;
        let schema = doc.path(&["schema"]).and_then(Json::as_str).unwrap_or_default();
        if schema != REPLAY_SCHEMA {
            return Err(format!("unsupported replay schema {schema:?} (want {REPLAY_SCHEMA})"));
        }
        let u64_at = |p: &[&str]| {
            doc.path(p).and_then(Json::as_u64).ok_or_else(|| format!("missing field {p:?}"))
        };
        let workload = doc
            .path(&["workload"])
            .and_then(Json::as_str)
            .ok_or("missing field workload")?
            .to_string();
        let lanes = doc
            .path(&["lanes"])
            .and_then(Json::as_arr)
            .ok_or("missing field lanes")?
            .iter()
            .map(|l| {
                l.as_arr()
                    .ok_or_else(|| "lane is not an array".to_string())
                    .map(|seqs| seqs.iter().filter_map(Json::as_u64).collect())
            })
            .collect::<Result<Vec<Vec<u64>>, String>>()?;
        Ok(ReplayArtifact {
            workload,
            seed: u64_at(&["seed"])?,
            shards: u64_at(&["shards"])? as u32,
            lanes,
            state_hash: u64_at(&["state_hash"])?,
            counters: ReplayCounters {
                tickets_issued: u64_at(&["counters", "tickets_issued"])?,
                ordered_commits: u64_at(&["counters", "ordered_commits"])?,
                tickets_abandoned: u64_at(&["counters", "tickets_abandoned"])?,
            },
        })
    }

    /// `None` when the runs are identical; otherwise a description of the
    /// *first* divergence (the replayable repro pointer).
    pub fn diff(&self, other: &ReplayArtifact) -> Option<String> {
        if self.shards != other.shards {
            return Some(format!("shard count {} != {}", self.shards, other.shards));
        }
        if self.seed != other.seed {
            return Some(format!("seed {:#x} != {:#x}", self.seed, other.seed));
        }
        for (l, (a, b)) in self.lanes.iter().zip(&other.lanes).enumerate() {
            if let Some(i) = (0..a.len().min(b.len())).find(|&i| a[i] != b[i]) {
                return Some(format!("lane {l}: commit #{i} is seq {} vs seq {}", a[i], b[i]));
            }
            if a.len() != b.len() {
                return Some(format!("lane {l}: {} commits vs {}", a.len(), b.len()));
            }
        }
        if self.lanes.len() != other.lanes.len() {
            return Some(format!("lane count {} != {}", self.lanes.len(), other.lanes.len()));
        }
        if self.state_hash != other.state_hash {
            return Some(format!(
                "state hash {:#018x} != {:#018x}",
                self.state_hash, other.state_hash
            ));
        }
        if self.counters != other.counters {
            return Some(format!("counters {:?} != {:?}", self.counters, other.counters));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayArtifact {
        let log = CommitLog::new();
        log.event(Event::TicketCommit { lane: 0, seq: 0, tree: 11 });
        log.event(Event::TicketCommit { lane: 1, seq: 0, tree: 12 });
        log.event(Event::TicketCommit { lane: 0, seq: 1, tree: 13 });
        log.event(Event::TicketIssued); // ignored by the log
        let stats = StatSnapshot { tickets_issued: 4, ordered_commits: 3, ..Default::default() };
        ReplayArtifact::from_run("unit", 0xC0FFEE, 2, &log, state_hash([1, 2, 3]), &stats)
    }

    #[test]
    fn log_captures_only_ticket_commits_in_order() {
        let log = CommitLog::new();
        assert!(log.is_empty());
        log.event(Event::TopCommit);
        log.event(Event::TicketCommit { lane: 0, seq: 0, tree: 1 });
        log.event(Event::TicketAbandoned { lane: 0, seq: 1 });
        log.event(Event::TicketCommit { lane: 0, seq: 2, tree: 2 });
        assert_eq!(log.entries(), vec![(0, 0), (0, 2)]);
        assert_eq!(log.len(), 2);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let a = sample();
        assert_eq!(a.lanes, vec![vec![0, 1], vec![0]]);
        let text = a.to_json().pretty();
        let b = ReplayArtifact::parse(&text).expect("parse back");
        assert_eq!(a, b);
        assert_eq!(a.diff(&b), None);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = r#"{"schema": "rtf-metrics-v1"}"#;
        let err = ReplayArtifact::parse(text).unwrap_err();
        assert!(err.contains("rtf-replay-v1"), "{err}");
    }

    #[test]
    fn diff_names_first_divergence() {
        let a = sample();
        let mut b = a.clone();
        b.lanes[0][1] = 9;
        let d = a.diff(&b).expect("must diverge");
        assert!(d.contains("lane 0") && d.contains("commit #1"), "{d}");

        let mut c = a.clone();
        c.lanes[1].push(7);
        let d = a.diff(&c).expect("length divergence");
        assert!(d.contains("lane 1"), "{d}");

        let mut e = a.clone();
        e.state_hash ^= 1;
        assert!(a.diff(&e).expect("hash divergence").contains("state hash"));

        let mut f = a.clone();
        f.counters.tickets_abandoned = 5;
        assert!(a.diff(&f).expect("counter divergence").contains("counters"));
    }

    #[test]
    fn state_hash_is_order_sensitive_and_stable() {
        assert_eq!(state_hash([1, 2, 3]), state_hash([1, 2, 3]));
        assert_ne!(state_hash([1, 2, 3]), state_hash([3, 2, 1]));
        assert_ne!(state_hash([0]), state_hash([0, 0]));
        assert_ne!(state_hash([]), state_hash([0]));
    }
}
