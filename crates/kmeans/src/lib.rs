//! **KMeans** clustering over `rtf` transactional futures, in the style of
//! the STAMP benchmark suite the paper draws Vacation from.
//!
//! Shared state: one box per cluster holding its running accumulator
//! (coordinate sums + membership count) plus a box with the current
//! centroids. Worker transactions process a chunk of points each: the
//! *assignment* loop — find the nearest centroid per point and build local
//! per-cluster aggregates — is the long read-only cycle, parallelized
//! across transactional futures exactly like the paper's long
//! transactions; the continuation folds the local aggregates into the
//! cluster accumulator boxes (the contended writes).
//!
//! Strong ordering makes the parallel assignment equivalent to the
//! sequential loop, so for a fixed iteration structure the clustering is
//! bit-for-bit deterministic regardless of the futures count — asserted by
//! the tests.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtf::{Rtf, VBox};
use std::sync::Arc;

/// A flat point set (immutable input data; needs no boxes).
#[derive(Clone)]
pub struct Points {
    dims: usize,
    data: Arc<[f32]>,
}

impl Points {
    /// Generates `n` points in `dims` dimensions from `clusters` Gaussian
    /// blobs (deterministic in `seed`).
    pub fn synthetic(n: usize, dims: usize, clusters: usize, seed: u64) -> Points {
        let mut rng = StdRng::seed_from_u64(seed);
        let blob_centers: Vec<f32> =
            (0..clusters * dims).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
        let mut data = Vec::with_capacity(n * dims);
        for i in 0..n {
            let blob = i % clusters;
            for d in 0..dims {
                let jitter: f32 = rng.gen_range(-5.0..5.0);
                data.push(blob_centers[blob * dims + d] + jitter);
            }
        }
        Points { dims, data: data.into() }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Coordinates of point `i`.
    pub fn point(&self, i: usize) -> &[f32] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }
}

/// Per-cluster accumulator for one iteration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterAcc {
    /// Sum of member coordinates.
    pub sums: Vec<f64>,
    /// Number of members.
    pub count: u64,
}

/// The clustering state shared between worker transactions.
pub struct KMeans {
    points: Points,
    k: usize,
    /// Current centroids (read by every assignment, replaced per iteration).
    centroids: VBox<Vec<f32>>,
    /// Per-cluster accumulators (the contended hot spots).
    accs: Arc<[VBox<ClusterAcc>]>,
}

impl Clone for KMeans {
    fn clone(&self) -> Self {
        KMeans {
            points: self.points.clone(),
            k: self.k,
            centroids: self.centroids.clone(),
            accs: Arc::clone(&self.accs),
        }
    }
}

fn dist2(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum()
}

impl KMeans {
    /// Initializes with the first `k` points as centroids (deterministic).
    pub fn new(points: Points, k: usize) -> KMeans {
        assert!(k > 0 && points.len() >= k, "need at least k points");
        let dims = points.dims;
        let centroids: Vec<f32> = (0..k).flat_map(|i| points.point(i).to_vec()).collect();
        let accs: Vec<VBox<ClusterAcc>> =
            (0..k).map(|_| VBox::new(ClusterAcc { sums: vec![0.0; dims], count: 0 })).collect();
        KMeans { points, k, centroids: VBox::new(centroids), accs: accs.into() }
    }

    /// Nearest centroid of `p` under the given centroid snapshot.
    fn nearest(&self, centroids: &[f32], p: &[f32]) -> usize {
        let dims = self.points.dims;
        (0..self.k)
            .min_by(|&a, &b| {
                dist2(&centroids[a * dims..(a + 1) * dims], p)
                    .total_cmp(&dist2(&centroids[b * dims..(b + 1) * dims], p))
            })
            .expect("k > 0")
    }

    /// Processes points `[lo, hi)` as one transaction: assignment
    /// parallelized across `futures` transactional futures, accumulator
    /// updates in the continuation. Returns the chunk's contribution count.
    pub fn assign_chunk(&self, tm: &Rtf, lo: usize, hi: usize, futures: usize) -> u64 {
        let this = self.clone();
        tm.atomic(move |tx| {
            let centroids = tx.read(&this.centroids);
            // ---- long read-only cycle (parallelized) -------------------
            let locals: Vec<Vec<ClusterAcc>> = if futures == 0 || hi - lo < futures + 1 {
                vec![local_assign(&this, &centroids, lo, hi)]
            } else {
                let span = (hi - lo).div_ceil(futures + 1);
                let mut handles = Vec::new();
                for f in 1..=futures {
                    let this2 = this.clone();
                    let c2 = Arc::clone(&centroids);
                    let (flo, fhi) = (lo + f * span, (lo + (f + 1) * span).min(hi));
                    handles.push(tx.submit(move |_tx| local_assign(&this2, &c2, flo, fhi)));
                }
                let mut all = vec![local_assign(&this, &centroids, lo, (lo + span).min(hi))];
                for h in &handles {
                    all.push((*tx.eval(h)).clone());
                }
                all
            };
            // ---- contended accumulator updates (continuation) ----------
            let mut contributed = 0u64;
            for c in 0..this.k {
                let mut merged = ClusterAcc { sums: vec![0.0; this.points.dims], count: 0 };
                for l in &locals {
                    merged.count += l[c].count;
                    for (m, v) in merged.sums.iter_mut().zip(&l[c].sums) {
                        *m += v;
                    }
                }
                if merged.count == 0 {
                    continue;
                }
                contributed += merged.count;
                let mut acc = (*tx.read(&this.accs[c])).clone();
                acc.count += merged.count;
                for (a, v) in acc.sums.iter_mut().zip(&merged.sums) {
                    *a += v;
                }
                tx.write(&this.accs[c], acc);
            }
            contributed
        })
    }

    /// Finishes an iteration: recomputes centroids from the accumulators,
    /// resets them, and returns the largest centroid movement (squared).
    pub fn finish_iteration(&self, tm: &Rtf) -> f64 {
        let this = self.clone();
        tm.atomic(move |tx| {
            let dims = this.points.dims;
            let old = tx.read(&this.centroids);
            let mut new_centroids = (*old).clone();
            let mut moved = 0.0f64;
            for c in 0..this.k {
                let acc = tx.read(&this.accs[c]);
                if acc.count > 0 {
                    for d in 0..dims {
                        new_centroids[c * dims + d] = (acc.sums[d] / acc.count as f64) as f32;
                    }
                }
                moved = moved.max(dist2(
                    &old[c * dims..(c + 1) * dims],
                    &new_centroids[c * dims..(c + 1) * dims],
                ));
                tx.write(&this.accs[c], ClusterAcc { sums: vec![0.0; dims], count: 0 });
            }
            tx.write(&this.centroids, new_centroids);
            moved
        })
    }

    /// Runs up to `max_iters` full iterations with `clients` worker threads
    /// and `futures` futures per transaction; stops when no centroid moves
    /// more than `eps` (squared distance). Returns (iterations, final max
    /// movement).
    pub fn run(
        &self,
        tm: &Rtf,
        clients: usize,
        chunk: usize,
        futures: usize,
        max_iters: usize,
        eps: f64,
    ) -> (usize, f64) {
        let n = self.points.len();
        for iter in 1..=max_iters {
            // Chunked assignment, fanned out over worker threads.
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..clients.max(1) {
                    let next = &next;
                    let tm = tm.clone();
                    let this = self.clone();
                    s.spawn(move || loop {
                        let lo = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        this.assign_chunk(&tm, lo, (lo + chunk).min(n), futures);
                    });
                }
            });
            let moved = self.finish_iteration(tm);
            if moved <= eps {
                return (iter, moved);
            }
        }
        (max_iters, f64::INFINITY)
    }

    /// Current centroids (outside transactions; quiescent use).
    pub fn centroids(&self) -> Vec<f32> {
        (*self.centroids.read_committed()).clone()
    }

    /// Total membership currently accumulated (diagnostics).
    pub fn accumulated(&self, tm: &Rtf) -> u64 {
        let this = self.clone();
        tm.atomic_ro(move |tx| this.accs.iter().map(|a| tx.read(a).count).sum())
    }
}

/// Assigns points `[lo, hi)` to their nearest centroid, building local
/// per-cluster aggregates (no shared writes — safe inside futures).
fn local_assign(km: &KMeans, centroids: &[f32], lo: usize, hi: usize) -> Vec<ClusterAcc> {
    let dims = km.points.dims;
    let mut locals = vec![ClusterAcc { sums: vec![0.0; dims], count: 0 }; km.k];
    for i in lo..hi {
        let p = km.points.point(i);
        let c = km.nearest(centroids, p);
        locals[c].count += 1;
        for (s, v) in locals[c].sums.iter_mut().zip(p) {
            *s += *v as f64;
        }
    }
    locals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Points {
        Points::synthetic(300, 4, 3, 42)
    }

    #[test]
    fn synthetic_points_shape() {
        let p = small();
        assert_eq!(p.len(), 300);
        assert!(!p.is_empty());
        assert_eq!(p.point(7).len(), 4);
    }

    #[test]
    fn converges_on_blobs() {
        let tm = Rtf::builder().workers(2).build();
        let km = KMeans::new(small(), 3);
        let (iters, moved) = km.run(&tm, 2, 64, 2, 50, 1e-6);
        assert!(iters < 50, "should converge, took {iters}");
        assert!(moved <= 1e-6);
        // All accumulators were reset by finish_iteration.
        assert_eq!(km.accumulated(&tm), 0);
    }

    #[test]
    fn parallel_equals_sequential_per_iteration() {
        // One full iteration, sequential vs future-parallel, must produce
        // identical centroids (strong ordering: floating-point adds happen
        // in the same order as the sequential chunk loop).
        let run_one = |futures: usize| {
            let tm = Rtf::builder().workers(4).build();
            let km = KMeans::new(small(), 3);
            // Single client so chunk order is deterministic.
            km.run(&tm, 1, 50, futures, 1, f64::INFINITY);
            km.centroids()
        };
        assert_eq!(run_one(0), run_one(3));
    }

    #[test]
    fn multi_client_conserves_membership() {
        let tm = Rtf::builder().workers(3).build();
        let km = KMeans::new(small(), 3);
        // Assignment only (no finish): every point lands in some cluster.
        std::thread::scope(|s| {
            for t in 0..3 {
                let tm = tm.clone();
                let km = km.clone();
                s.spawn(move || {
                    for chunk_lo in (t * 100..(t + 1) * 100).step_by(25) {
                        km.assign_chunk(&tm, chunk_lo, chunk_lo + 25, 2);
                    }
                });
            }
        });
        assert_eq!(km.accumulated(&tm), 300);
    }
}
