//! Model-check-style tests for the lock-free `VBoxCell` permanent list:
//! CAS prepend vs. concurrent snapshot readers vs. GC trim vs. lagging
//! out-of-order write-back.
//!
//! Compiled only under `--cfg loom` so the tier-1 `cargo test` run is
//! unaffected:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p rtf-txengine --test loom_cell --release
//! ```
//!
//! The vendored `loom` is an offline shim (randomized stress scheduling over
//! the loom API, not exhaustive DPOR — see `vendor/loom/src/lib.rs` for the
//! fidelity caveats); swapping in the real crate requires no changes here.
//! Each `loom::model` closure is one small, fixed interleaving scenario with
//! full-state assertions, exactly the shape real loom wants.

#![cfg(loom)]

use loom::thread;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rtf_txbase::new_write_token;
use rtf_txengine::{downcast, erase, ReadPath, VBox, VBoxCell};

/// The invariant every scenario checks: a read at snapshot `s` returns the
/// value committed by the newest version at or below `s` (values mirror
/// version numbers in these tests).
fn assert_snapshot_read(cell: &Arc<VBoxCell>, snapshot: u64) {
    let (val, _) = cell.read_at(snapshot);
    let got = *downcast::<u64>(val);
    assert!(got <= snapshot, "read at {snapshot} returned future version {got}");
}

/// CAS prepends race a snapshot reader: the reader must always observe the
/// exact newest version at or below its (published) snapshot.
#[test]
fn prepend_vs_reader() {
    loom::model(|| {
        let b = VBox::new(0u64);
        let cell = Arc::clone(b.cell());
        let published = Arc::new(AtomicU64::new(0));

        let writer = {
            let cell = Arc::clone(&cell);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                for v in 1..=6u64 {
                    cell.apply_commit(v, erase(v), new_write_token(), 0);
                    published.store(v, Ordering::Release);
                    thread::yield_now();
                }
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                for _ in 0..12 {
                    let snap = published.load(Ordering::Acquire);
                    let (val, _) = cell.read_at(snap);
                    // No trimming here: the newest version <= snap is snap.
                    assert_eq!(*downcast::<u64>(val), snap);
                    thread::yield_now();
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(cell.permanent_len(), 7);
        assert_eq!(cell.read_at_traced(6).2, ReadPath::Fast);
        assert_eq!(cell.read_at_traced(3).2, ReadPath::Slow);
    });
}

/// Prepends with an aggressively advancing GC watermark race a reader whose
/// snapshot is covered by that watermark: the trim must never detach a
/// version the reader can still need, and the reader must never observe a
/// torn or future value.
#[test]
fn prepend_vs_reader_vs_trim() {
    loom::model(|| {
        let b = VBox::new(0u64);
        let cell = Arc::clone(b.cell());
        let published = Arc::new(AtomicU64::new(0));

        let writer = {
            let cell = Arc::clone(&cell);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                for v in 1..=8u64 {
                    // Watermark trails the published version by 2 — the
                    // reader below only ever reads at published snapshots,
                    // so everything below (published - 2) is dead.
                    let watermark = published.load(Ordering::Relaxed).saturating_sub(2);
                    cell.apply_commit(v, erase(v), new_write_token(), watermark);
                    published.store(v, Ordering::Release);
                    thread::yield_now();
                }
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            let published = Arc::clone(&published);
            thread::spawn(move || {
                for _ in 0..16 {
                    let snap = published.load(Ordering::Acquire);
                    let (val, _) = cell.read_at(snap);
                    assert_eq!(*downcast::<u64>(val), snap);
                    thread::yield_now();
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        // Everything below the final keep node is eventually trimmed.
        let final_trim = cell.apply_commit(9, erase(9u64), new_write_token(), 9);
        let _ = final_trim;
        assert!(cell.permanent_len() <= 2, "list not trimmed: {:?}", cell);
        assert_snapshot_read(&cell, 9);
    });
}

/// A lagging helper splices an old version mid-list while a newer prepend
/// and a trim run concurrently (the write-back race of the helping commit
/// chain): the list stays sorted, idempotent, and every live snapshot
/// remains readable.
#[test]
fn lagging_splice_vs_prepend_vs_trim() {
    loom::model(|| {
        let b = VBox::new(0u64);
        let cell = Arc::clone(b.cell());
        cell.apply_commit(2, erase(2u64), new_write_token(), 0);

        // Helper A lags with version 3; helper B races ahead with 4 and 5
        // (trimming below 2 at the end); both replay version 3 — the
        // idempotence the helping write-back relies on.
        let a = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                thread::yield_now();
                cell.apply_commit(3, erase(3u64), new_write_token(), 0);
            })
        };
        let bt = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.apply_commit(4, erase(4u64), new_write_token(), 0);
                thread::yield_now();
                cell.apply_commit(3, erase(3u64), new_write_token(), 0);
                cell.apply_commit(5, erase(5u64), new_write_token(), 2);
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for _ in 0..8 {
                    // Snapshot 2 is protected by every watermark used above.
                    let (val, _) = cell.read_at(2);
                    assert_eq!(*downcast::<u64>(val), 2);
                    thread::yield_now();
                }
            })
        };
        a.join().unwrap();
        bt.join().unwrap();
        reader.join().unwrap();

        // Quiescent state: exactly one node per version, descending.
        for snap in 2..=5u64 {
            let (val, _) = cell.read_at(snap);
            assert_eq!(*downcast::<u64>(val), snap);
        }
        assert!(cell.permanent_len() <= 4, "duplicate or untrimmed nodes: {:?}", cell);
    });
}

/// Two helpers replay the same commit record concurrently (same version,
/// token, value): exactly one node is installed.
#[test]
fn racing_helpers_are_idempotent() {
    loom::model(|| {
        let b = VBox::new(0u64);
        let cell = Arc::clone(b.cell());
        let token = new_write_token();
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    thread::yield_now();
                    cell.apply_commit(1, erase(1u64), token, 0);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(cell.permanent_len(), 2, "double-applied version: {:?}", cell);
        assert_eq!(cell.latest_token(), token);
        assert_snapshot_read(&cell, 1);
    });
}
