//! Typed read- and write-set containers shared by the top-level and
//! sub-transaction paths.
//!
//! Both paths log the same facts — "I observed write `token` of cell X" and
//! "I intend to install `value` over cell X" — but with different shapes:
//! a top-level transaction keys its read-set by cell (first read wins, later
//! reads of the same cell add no information at snapshot isolation), while a
//! sub-transaction keeps an append-only log (the same cell can be re-read in
//! a later epoch, after more submit points, with a different validation
//! cutoff). The write-set is keyed in both cases; overwriting keeps the
//! original [`WriteToken`] so the write retains one identity for the whole
//! transaction.

use std::sync::Arc;

use rtf_txbase::{new_write_token, FxHashMap, WriteToken};

use crate::cell::{CellId, VBoxCell};
use crate::value::Val;

/// Where a resolved read was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The permanent (committed) version list, at the policy's snapshot.
    Permanent,
    /// A local buffer consulted between the tentative walk and the
    /// permanent list: the top-level write-set, or the tree's root
    /// write-set in sequential-fallback mode.
    Local,
    /// A tentative entry of another sub-transaction made visible by the
    /// policy (committed-and-propagated descendant, ordered predecessor, or
    /// an adopted child write).
    Tentative,
    /// The reader's own tentative write — exempt from validation: it cannot
    /// be invalidated by anyone else and is re-confirmed by the reader's own
    /// commit.
    OwnWrite,
}

/// One observed read: which cell, which write identity was seen, where it
/// came from, and (for sub-transactions) the reader's epoch — its
/// `fork_count` at the time of the read, which determines the serialization
/// position the read must be validated at.
pub struct ReadRecord {
    /// The cell that was read.
    pub cell: Arc<VBoxCell>,
    /// Identity of the write that was observed.
    pub token: WriteToken,
    /// Where the read was served from.
    pub source: Source,
    /// Reader's submit-point count at the read (0 for top-level reads).
    pub epoch: u32,
}

/// Keyed read-set for top-level transactions: first read of a cell wins,
/// because under snapshot isolation every later read of the same cell within
/// the transaction observes the same write.
#[derive(Default)]
pub struct ReadSet {
    map: FxHashMap<CellId, ReadRecord>,
}

impl ReadSet {
    /// An empty read-set.
    pub fn new() -> ReadSet {
        ReadSet::default()
    }

    /// Records a read unless the cell was already observed.
    pub fn record(&mut self, record: ReadRecord) {
        self.map.entry(record.cell.id()).or_insert(record);
    }

    /// Whether `id` has been observed.
    pub fn contains(&self, id: CellId) -> bool {
        self.map.contains_key(&id)
    }

    /// Iterates the recorded reads (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &ReadRecord> {
        self.map.values()
    }

    /// Number of distinct cells observed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no read was recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Append-only read log for sub-transaction frames: duplicates are kept
/// because the same cell re-read in a later epoch validates at a different
/// serialization position.
#[derive(Default)]
pub struct ReadLog {
    records: Vec<ReadRecord>,
}

impl ReadLog {
    /// An empty log.
    pub fn new() -> ReadLog {
        ReadLog::default()
    }

    /// Appends one read.
    pub fn push(&mut self, record: ReadRecord) {
        self.records.push(record);
    }

    /// Iterates the log in recording order.
    pub fn iter(&self) -> impl Iterator<Item = &ReadRecord> {
        self.records.iter()
    }

    /// Number of recorded reads (including duplicates).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Moves every record out, leaving the log empty.
    pub fn drain(&mut self) -> impl Iterator<Item = ReadRecord> + '_ {
        self.records.drain(..)
    }
}

/// One buffered write: the cell, the new value, and the stable identity the
/// write will commit under.
pub struct WriteEntry {
    /// The written cell.
    pub cell: Arc<VBoxCell>,
    /// The buffered value.
    pub value: Val,
    /// Identity the write keeps across overwrites and into the permanent
    /// version list.
    pub token: WriteToken,
}

/// Keyed write-set (top-level transactions and the tree root write-set of
/// the sequential fallback). Overwrites replace the value but keep the
/// original token.
#[derive(Default)]
pub struct WriteSet {
    map: FxHashMap<CellId, WriteEntry>,
}

impl WriteSet {
    /// An empty write-set.
    pub fn new() -> WriteSet {
        WriteSet::default()
    }

    /// Buffers `value` for `cell`, minting a fresh token on the first write
    /// and keeping the existing one on overwrite.
    pub fn put(&mut self, cell: &Arc<VBoxCell>, value: Val) {
        match self.map.get_mut(&cell.id()) {
            Some(e) => e.value = value,
            None => {
                self.map.insert(
                    cell.id(),
                    WriteEntry { cell: Arc::clone(cell), value, token: new_write_token() },
                );
            }
        }
    }

    /// Inserts a fully-formed entry (explicit token), replacing any buffered
    /// write of the same cell — used when consolidating tentative writes
    /// that already own a token.
    pub fn insert(&mut self, entry: WriteEntry) {
        self.map.insert(entry.cell.id(), entry);
    }

    /// The buffered value and token for `id`, if any.
    pub fn get(&self, id: CellId) -> Option<(Val, WriteToken)> {
        self.map.get(&id).map(|e| (e.value.clone(), e.token))
    }

    /// Whether `id` has a buffered write.
    pub fn contains(&self, id: CellId) -> bool {
        self.map.contains_key(&id)
    }

    /// Iterates the buffered writes (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &WriteEntry> {
        self.map.values()
    }

    /// Number of distinct cells written.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no write is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Moves the entries out as a vector, leaving the set empty.
    pub fn into_writes(self) -> Vec<WriteEntry> {
        self.map.into_values().collect()
    }

    /// Drains the entries, leaving the set empty but reusable.
    pub fn drain(&mut self) -> impl Iterator<Item = WriteEntry> + '_ {
        self.map.drain().map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{downcast, erase};

    fn cell(v: u32) -> Arc<VBoxCell> {
        VBoxCell::new(erase(v))
    }

    #[test]
    fn read_set_first_read_wins() {
        let c = cell(1);
        let mut rs = ReadSet::new();
        let t1 = new_write_token();
        let t2 = new_write_token();
        rs.record(ReadRecord {
            cell: Arc::clone(&c),
            token: t1,
            source: Source::Permanent,
            epoch: 0,
        });
        rs.record(ReadRecord {
            cell: Arc::clone(&c),
            token: t2,
            source: Source::Permanent,
            epoch: 0,
        });
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.iter().next().unwrap().token, t1);
        assert!(rs.contains(c.id()));
    }

    #[test]
    fn read_log_keeps_duplicates_in_order() {
        let c = cell(1);
        let mut log = ReadLog::new();
        for epoch in 0..3 {
            log.push(ReadRecord {
                cell: Arc::clone(&c),
                token: new_write_token(),
                source: Source::Tentative,
                epoch,
            });
        }
        assert_eq!(log.len(), 3);
        let epochs: Vec<u32> = log.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, [0, 1, 2]);
    }

    #[test]
    fn write_set_overwrite_keeps_token() {
        let c = cell(0);
        let mut ws = WriteSet::new();
        ws.put(&c, erase(1u32));
        let (_, tok1) = ws.get(c.id()).unwrap();
        ws.put(&c, erase(2u32));
        let (v, tok2) = ws.get(c.id()).unwrap();
        assert_eq!(tok1, tok2, "overwrite must keep the write's identity");
        assert_eq!(*downcast::<u32>(v), 2);
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn write_set_insert_replaces_with_explicit_token() {
        let c = cell(0);
        let mut ws = WriteSet::new();
        ws.put(&c, erase(1u32));
        let tok = new_write_token();
        ws.insert(WriteEntry { cell: Arc::clone(&c), value: erase(9u32), token: tok });
        let (v, got) = ws.get(c.id()).unwrap();
        assert_eq!(got, tok);
        assert_eq!(*downcast::<u32>(v), 9);
        let writes = ws.into_writes();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].token, tok);
    }
}
