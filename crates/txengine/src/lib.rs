//! The unified transactional access engine of the `rtf` stack.
//!
//! Both transaction shapes in this workspace — flat top-level transactions
//! (the `rtf-mvstm` substrate) and the sub-transaction trees of
//! transactional futures (the `rtf` core) — run the same generic pipeline:
//!
//! * versioned storage — [`VBox`]/[`VBoxCell`] with a permanent version list
//!   and a tentative list ([`cell`]);
//! * typed access sets — [`ReadSet`]/[`ReadLog`]/[`WriteSet`] ([`readset`]);
//! * one read-resolution walk and one validation loop, parameterized by a
//!   [`Visibility`] policy ([`access`]);
//! * retry pacing for optimistic re-execution ([`retry`]);
//! * instrumentation through an [`EventSink`] ([`events`]).
//!
//! The client crates contribute only their *policies* (which tentative
//! entries a reader may observe, which snapshot bounds permanent reads) and
//! their *commit protocols* (the helping commit chain for top-level
//! transactions; Alg 4 propagation for sub-transactions). Everything the
//! two paths share lives here, exactly once.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod access;
pub mod cell;
pub mod events;
pub mod readset;
pub mod retry;
pub mod value;

pub use access::{
    resolve_read, validate_reads, validate_reads_detailed, ConflictSite, Resolution, Visibility,
};
pub use cell::{
    read_pin, tentative_insert, CellId, PermVersion, ReadPath, ReadPin, TentativeEntry,
    TentativeGuard, VBox, VBoxCell,
};
pub use events::{
    obs_now_ns, stable_thread_id, ConflictKind, Event, EventSink, NullSink, SpanKind, SpanRec,
    StallKind, StatsSink, TeeSink, TraceSink, WaitSiteGuard,
};
pub use readset::{ReadLog, ReadRecord, ReadSet, Source, WriteEntry, WriteSet};
pub use retry::{retry_backoff, ExpBackoff, RetryBudget, RetryDriver, RetryExhausted, RetryPolicy};
pub use value::{downcast, erase, TxData, Val};
