//! Type-erased value storage.
//!
//! Version lists must be monomorphic so the whole concurrency-control
//! machinery is instantiated once. Values are stored as
//! `Arc<dyn Any + Send + Sync>`; the typed [`crate::VBox`] wrapper performs
//! the (infallible when used through the typed API) downcasts.

use std::any::Any;
use std::sync::Arc;

/// Bound required of every value stored in a versioned box.
///
/// Boxes hold immutable *snapshots*: to change a value a transaction writes
/// a new one (copy-on-write). Cloning of values themselves is never needed
/// by the runtime — readers receive `Arc`s.
pub trait TxData: Any + Send + Sync {}
impl<T: Any + Send + Sync> TxData for T {}

/// A type-erased, immutable, shareable value snapshot.
pub type Val = Arc<dyn Any + Send + Sync>;

/// Erases a typed value.
#[inline]
pub fn erase<T: TxData>(value: T) -> Val {
    Arc::new(value)
}

/// Recovers the typed value. Panics on type mismatch, which is unreachable
/// through the typed `VBox<T>` API.
#[inline]
pub fn downcast<T: TxData>(val: Val) -> Arc<T> {
    val.downcast::<T>().unwrap_or_else(|_| {
        panic!(
            "rtf internal error: versioned box holds a value of unexpected type (expected {})",
            std::any::type_name::<T>()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erase_downcast_roundtrip() {
        let v = erase(41u64);
        assert_eq!(*downcast::<u64>(v), 41);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn downcast_wrong_type_panics() {
        let v = erase(41u64);
        let _ = downcast::<String>(v);
    }

    #[test]
    fn arc_sharing_without_clone() {
        // Values need not be Clone: Arc sharing suffices.
        struct NotClone(#[allow(dead_code)] u32);
        let v = erase(NotClone(7));
        let a = downcast::<NotClone>(v.clone());
        let b = downcast::<NotClone>(v);
        assert_eq!(a.0 + b.0, 14);
    }
}
