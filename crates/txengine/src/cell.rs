//! Versioned boxes (`VBox`), the paper's transactional data containers.
//!
//! A `VBox` stores every committed (*permanent*) version of a value that may
//! still be required by a running transaction, in a list sorted by descending
//! commit version (paper §III-A, Fig 3b), plus a second, *tentative* list
//! holding the in-flight writes of sub-transactions of (at most) one
//! transaction tree, sorted by descending serialization order (§IV-A).
//!
//! The structural operations on both lists live here; the *policies*
//! (snapshot selection for top-level reads, visibility and ownership rules
//! for sub-transactions) are supplied by the client crates through the
//! [`crate::Visibility`] trait and consumed by [`crate::resolve_read`].
//!
//! Lock substitution (DESIGN.md D2): the paper manipulates the tentative
//! list with CAS; we guard it with a short `parking_lot::Mutex` critical
//! section while keeping the same list ordering, ownership-record and
//! visibility semantics. The permanent list uses an `RwLock` (read-mostly).

use parking_lot::{Mutex, MutexGuard, RwLock};
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use rtf_txbase::{new_write_token, OrderKey, Orec, TreeId, Version, WriteToken};

use crate::value::{downcast, erase, TxData, Val};

/// One committed version of a box's value.
pub struct PermVersion {
    /// Global commit version that produced this value (0 = initial value).
    pub version: Version,
    /// Unique identity of this write.
    pub token: WriteToken,
    /// The value snapshot.
    pub value: Val,
}

/// One in-flight write by a sub-transaction of the tree currently owning
/// this box's tentative list.
pub struct TentativeEntry {
    /// Serialization-order key of the write (strong ordering semantics).
    pub key: OrderKey,
    /// Unique identity of this write.
    pub token: WriteToken,
    /// The value snapshot.
    pub value: Val,
    /// Ownership record of the execution that created the write.
    pub orec: Arc<Orec>,
    /// Tree the writer belongs to (paper: the root of the writer's
    /// transaction tree, compared to detect inter-tree conflicts).
    pub tree: TreeId,
}

/// Stable identity of a box, used as read-/write-set key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(usize);

impl CellId {
    /// The raw identity value (stable for the box's lifetime within one
    /// process — the observability layer exports it in hotspot reports).
    pub fn raw(self) -> usize {
        self.0
    }

    /// Rebuilds an id from [`CellId::raw`] output (tests and tooling; a
    /// fabricated id never matches a live box unless the raw value came
    /// from one).
    pub fn from_raw(raw: usize) -> CellId {
        CellId(raw)
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell@{:x}", self.0)
    }
}

/// The untyped storage shared by all views of one `VBox`.
pub struct VBoxCell {
    permanent: RwLock<Vec<PermVersion>>,
    tentative: Mutex<Vec<TentativeEntry>>,
}

impl VBoxCell {
    /// Creates a cell whose initial value committed at version 0.
    pub fn new(initial: Val) -> Arc<VBoxCell> {
        Arc::new(VBoxCell {
            permanent: RwLock::new(vec![PermVersion {
                version: 0,
                token: new_write_token(),
                value: initial,
            }]),
            tentative: Mutex::new(Vec::new()),
        })
    }

    /// Identity of this cell.
    #[inline]
    pub fn id(self: &Arc<Self>) -> CellId {
        CellId(Arc::as_ptr(self) as usize)
    }

    /// Returns the most recent committed version at or below `snapshot`
    /// (the top-level read rule of §III-A).
    ///
    /// # Panics
    /// If the snapshot predates every retained version, which the version GC
    /// watermark makes unreachable for registered transactions.
    pub fn read_at(&self, snapshot: Version) -> (Val, WriteToken) {
        let list = self.permanent.read();
        for v in list.iter() {
            if v.version <= snapshot {
                return (v.value.clone(), v.token);
            }
        }
        panic!(
            "rtf internal error: no committed version <= {snapshot} retained \
             (GC watermark violated)"
        );
    }

    /// Token of the newest committed version.
    pub fn latest_token(&self) -> WriteToken {
        self.permanent.read()[0].token
    }

    /// Version number of the newest committed version.
    pub fn latest_version(&self) -> Version {
        self.permanent.read()[0].version
    }

    /// Newest committed value (diagnostic / quiescent use).
    pub fn latest_value(&self) -> Val {
        self.permanent.read()[0].value.clone()
    }

    /// Installs the write of a committed top-level transaction.
    ///
    /// Idempotent per `version`, so helping threads may race on the same
    /// commit record (paper §III-A: JVSTM's helping write-back). Returns the
    /// number of versions trimmed by the garbage collector (versions older
    /// than the newest version at or below `watermark` can no longer be read
    /// by any live transaction).
    pub fn apply_commit(
        &self,
        version: Version,
        value: Val,
        token: WriteToken,
        watermark: Version,
    ) -> usize {
        let mut list = self.permanent.write();
        // Insert in descending position unless already present.
        match list.binary_search_by(|p| version.cmp(&p.version)) {
            Ok(_) => {} // another helper already wrote this version back
            Err(pos) => list.insert(pos, PermVersion { version, token, value }),
        }
        // GC: keep everything newer than the watermark plus the single
        // newest entry at or below it.
        if let Some(keep_from) = list.iter().position(|p| p.version <= watermark) {
            let trimmed = list.len() - keep_from - 1;
            list.truncate(keep_from + 1);
            trimmed
        } else {
            0
        }
    }

    /// Number of retained committed versions (diagnostics).
    pub fn permanent_len(&self) -> usize {
        self.permanent.read().len()
    }

    /// Locks the tentative list for structural manipulation.
    pub fn tentative_lock(&self) -> MutexGuard<'_, Vec<TentativeEntry>> {
        self.tentative.lock()
    }

    /// Whether the tentative list is (currently) empty, without blocking:
    /// used by the top-level fast read path (Alg 2 line 6's cheap case).
    pub fn tentative_is_empty(&self) -> bool {
        match self.tentative.try_lock() {
            Some(g) => g.is_empty(),
            None => false,
        }
    }
}

impl fmt::Debug for VBoxCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let perm = self.permanent.read();
        write!(f, "VBoxCell{{versions: {}, head_v{}}}", perm.len(), perm[0].version)
    }
}

/// Inserts `entry` into a tentative list kept in *descending* serialization
/// order, as required so reads stop at the first visible entry and the
/// top-level write-back takes the head (§IV-A).
///
/// If an entry with the same order key owned by the same orec exists, the
/// write overwrites it in place (Alg 1 line 7: a transaction re-writing a
/// box updates its own tentative version).
pub fn tentative_insert(list: &mut Vec<TentativeEntry>, entry: TentativeEntry) {
    for (i, e) in list.iter_mut().enumerate() {
        if Arc::ptr_eq(&e.orec, &entry.orec) && e.key == entry.key {
            *e = entry;
            return;
        }
        if entry.key > e.key {
            list.insert(i, entry);
            return;
        }
    }
    list.push(entry);
}

/// A typed, shareable handle to a versioned box.
///
/// `VBox` is the only container whose accesses the TM tracks, mirroring the
/// JTF programming model (§III): programs put shared state into boxes and
/// read/write them through a transaction handle.
pub struct VBox<T: TxData> {
    cell: Arc<VBoxCell>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: TxData> VBox<T> {
    /// Creates a box whose initial value is committed at version 0 (visible
    /// to every transaction).
    pub fn new(initial: T) -> Self {
        VBox { cell: VBoxCell::new(erase(initial)), _marker: PhantomData }
    }

    /// The untyped cell (runtime use).
    #[inline]
    pub fn cell(&self) -> &Arc<VBoxCell> {
        &self.cell
    }

    /// Identity of this box.
    #[inline]
    pub fn id(&self) -> CellId {
        self.cell.id()
    }

    /// Reads the latest committed value outside any transaction.
    ///
    /// Only meaningful when no transaction is running (tests, reporting
    /// after a benchmark); transactional code must go through a transaction
    /// handle.
    pub fn read_committed(&self) -> Arc<T> {
        downcast(self.cell.latest_value())
    }
}

impl<T: TxData> Clone for VBox<T> {
    fn clone(&self) -> Self {
        VBox { cell: Arc::clone(&self.cell), _marker: PhantomData }
    }
}

impl<T: TxData> fmt::Debug for VBox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VBox<{}>({:?})", std::any::type_name::<T>(), self.cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_txbase::new_node_id;

    #[test]
    fn initial_version_readable_at_any_snapshot() {
        let b = VBox::new(7u32);
        let (v, _) = b.cell().read_at(0);
        assert_eq!(*downcast::<u32>(v), 7);
        let (v, _) = b.cell().read_at(1_000_000);
        assert_eq!(*downcast::<u32>(v), 7);
    }

    #[test]
    fn read_at_picks_snapshot_version() {
        let b = VBox::new(0u32);
        let c = b.cell();
        c.apply_commit(5, erase(50u32), new_write_token(), 0);
        c.apply_commit(9, erase(90u32), new_write_token(), 0);
        assert_eq!(*downcast::<u32>(c.read_at(0).0), 0);
        assert_eq!(*downcast::<u32>(c.read_at(4).0), 0);
        assert_eq!(*downcast::<u32>(c.read_at(5).0), 50);
        assert_eq!(*downcast::<u32>(c.read_at(8).0), 50);
        assert_eq!(*downcast::<u32>(c.read_at(9).0), 90);
        assert_eq!(*downcast::<u32>(c.read_at(100).0), 90);
        assert_eq!(c.latest_version(), 9);
    }

    #[test]
    fn apply_commit_is_idempotent_per_version() {
        let b = VBox::new(0u32);
        let c = b.cell();
        let tok = new_write_token();
        c.apply_commit(3, erase(30u32), tok, 0);
        // A helping thread replays the same record.
        c.apply_commit(3, erase(30u32), tok, 0);
        assert_eq!(c.permanent_len(), 2);
        assert_eq!(c.latest_token(), tok);
    }

    #[test]
    fn gc_trims_below_watermark_keeping_one_readable() {
        let b = VBox::new(0u32);
        let c = b.cell();
        for v in 1..=10u64 {
            c.apply_commit(v, erase(v as u32), new_write_token(), 0);
        }
        assert_eq!(c.permanent_len(), 11);
        // Oldest live transaction started at version 7.
        let trimmed = c.apply_commit(11, erase(110u32), new_write_token(), 7);
        // Keep versions 11..=8 plus the newest <= 7 (version 7 itself).
        assert_eq!(trimmed, 7);
        assert_eq!(c.permanent_len(), 5);
        assert_eq!(*downcast::<u32>(c.read_at(7).0), 7);
        assert_eq!(*downcast::<u32>(c.read_at(100).0), 110);
    }

    #[test]
    #[should_panic(expected = "GC watermark violated")]
    fn reading_below_retained_panics() {
        let b = VBox::new(0u32);
        let c = b.cell();
        c.apply_commit(5, erase(1u32), new_write_token(), 5);
        c.apply_commit(6, erase(2u32), new_write_token(), 6);
        // Versions 0 and 5 trimmed; snapshot 3 unreadable.
        let _ = c.read_at(3);
    }

    #[test]
    fn tentative_insert_keeps_descending_order_and_overwrites() {
        let root = OrderKey::root();
        let o1 = Arc::new(Orec::new(new_node_id()));
        let o2 = Arc::new(Orec::new(new_node_id()));
        let mut list = Vec::new();
        let tree = rtf_txbase::new_tree_id();
        let entry = |key: OrderKey, orec: &Arc<Orec>, val: u32| TentativeEntry {
            key,
            token: new_write_token(),
            value: erase(val),
            orec: Arc::clone(orec),
            tree,
        };
        tentative_insert(&mut list, entry(root.child_future(0).write_key(0), &o1, 1));
        tentative_insert(&mut list, entry(root.child_cont(0).write_key(0), &o2, 2));
        tentative_insert(&mut list, entry(root.write_key(0), &o1, 3));
        let keys: Vec<_> = list.iter().map(|e| e.key.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(keys, sorted, "list must be descending");
        assert_eq!(list.len(), 3);

        // Overwrite: same orec, same key.
        tentative_insert(&mut list, entry(root.write_key(0), &o1, 30));
        assert_eq!(list.len(), 3);
        let tail = &list[2];
        assert_eq!(*downcast::<u32>(tail.value.clone()), 30);
    }

    #[test]
    fn cell_ids_are_distinct_and_stable() {
        let a = VBox::new(1u8);
        let b = VBox::new(1u8);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), a.clone().id());
    }

    #[test]
    fn read_committed_outside_txn() {
        let b = VBox::new(String::from("hi"));
        assert_eq!(&*b.read_committed(), "hi");
    }
}
