//! Versioned boxes (`VBox`), the paper's transactional data containers.
//!
//! A `VBox` stores every committed (*permanent*) version of a value that may
//! still be required by a running transaction, in a list sorted by descending
//! commit version (paper §III-A, Fig 3b), plus a second, *tentative* list
//! holding the in-flight writes of sub-transactions of (at most) one
//! transaction tree, sorted by descending serialization order (§IV-A).
//!
//! The structural operations on both lists live here; the *policies*
//! (snapshot selection for top-level reads, visibility and ownership rules
//! for sub-transactions) are supplied by the client crates through the
//! [`crate::Visibility`] trait and consumed by [`crate::resolve_read`].
//!
//! # Permanent list: lock-free cons list (DESIGN.md D2)
//!
//! The permanent versions form a JVSTM-style **immutable cons list with an
//! atomic head**: each [`PermVersion`] node links to the next-older version
//! through an epoch-managed atomic pointer, commits prepend with CAS, and
//! readers traverse with zero locks. The head node *is* the latest committed
//! version, so the common read (snapshot at or above the head version) is
//! wait-free: one `Acquire` load of the head plus one dereference
//! ([`ReadPath::Fast`]). Older snapshots walk the `next` links
//! ([`ReadPath::Slow`]); the walk is lock-free and never blocks on writers.
//!
//! Two structural mutations cannot be expressed as a head CAS and are
//! serialized per cell by a tiny spin flag that readers never touch:
//!
//! * **out-of-order write-back** — a lagging helper replaying an old commit
//!   record after newer versions already landed must splice mid-list;
//! * **GC trim** — detaching the suffix below the keep node (the newest
//!   version at or below the watermark) and retiring it through
//!   `crossbeam-epoch`, so concurrent readers still inside the suffix stay
//!   valid until they unpin.
//!
//! Reclamation protocol: trim unlinks the suffix (`keep.next := null`)
//! *before* retiring its nodes, and retirement is era-stamped, so any reader
//! that could still reach a retired node pinned before the unlink and blocks
//! its reclamation until it unpins. Mid-list splices hold the same flag as
//! trims, so an insert can never target a pointer inside a detached suffix.
//!
//! # Tentative list
//!
//! The paper manipulates the tentative list with CAS; we keep a short
//! `parking_lot::Mutex` critical section for its *structural* updates while
//! preserving the same ordering, ownership-record and visibility semantics —
//! but readers skip the mutex entirely unless the list may hold entries of
//! their own tree: an atomic owner tag ([`VBoxCell::tentative_scan_needed`])
//! names the tree whose entries currently occupy the list, maintained when
//! the [`TentativeGuard`] unlocks. Top-level readers and sub-transactions of
//! other trees therefore never contend on the mutex.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use crossbeam_utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rtf_txbase::{new_write_token, OrderKey, Orec, TreeId, Version, WriteToken};

use crate::value::{downcast, erase, TxData, Val};

/// One committed version of a box's value — a node of the cell's lock-free
/// cons list, linked newest-to-oldest.
pub struct PermVersion {
    /// Global commit version that produced this value (0 = initial value).
    pub version: Version,
    /// Unique identity of this write.
    pub token: WriteToken,
    /// The value snapshot.
    pub value: Val,
    /// Next-older version (null at the tail). Readers traverse with
    /// `Acquire` loads under an epoch pin.
    next: Atomic<PermVersion>,
}

/// A thread-level epoch pin amortized across many reads.
///
/// Every permanent-list read pins the epoch for the duration of its pointer
/// walk. Pinning is reentrant: while any guard is held by the current
/// thread, nested pins are a thread-local depth bump with no atomic
/// operations at all. A transaction (or a benchmark loop) that holds a
/// `ReadPin` across its lifetime therefore pays the pin's ordering cost —
/// the store/load fence that makes the era advertisement visible to the
/// collector — once, instead of once per read.
///
/// Holding a pin delays reclamation of every version retired while it is
/// held (they are freed at the next collection after the outermost unpin),
/// which mirrors — and is bounded by — the retention the GC watermark
/// already grants the oldest registered transaction.
pub struct ReadPin {
    _guard: Guard,
}

/// Pins the current thread for a batch of reads (see [`ReadPin`]).
pub fn read_pin() -> ReadPin {
    ReadPin { _guard: epoch::pin() }
}

/// Which permanent-list path served a read (exported through the
/// `read_fast`/`read_slow` stats counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadPath {
    /// The wait-free fast path: the head version was already at or below
    /// the snapshot — one atomic load, one dereference.
    Fast,
    /// The lock-free slow path: the snapshot predates the head version, so
    /// the read walked the version list.
    Slow,
}

/// One in-flight write by a sub-transaction of the tree currently owning
/// this box's tentative list.
pub struct TentativeEntry {
    /// Serialization-order key of the write (strong ordering semantics).
    pub key: OrderKey,
    /// Unique identity of this write.
    pub token: WriteToken,
    /// The value snapshot.
    pub value: Val,
    /// Ownership record of the execution that created the write.
    pub orec: Arc<Orec>,
    /// Tree the writer belongs to (paper: the root of the writer's
    /// transaction tree, compared to detect inter-tree conflicts).
    pub tree: TreeId,
}

/// Stable identity of a box, used as read-/write-set key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(usize);

impl CellId {
    /// The raw identity value (stable for the box's lifetime within one
    /// process — the observability layer exports it in hotspot reports).
    pub fn raw(self) -> usize {
        self.0
    }

    /// Rebuilds an id from [`CellId::raw`] output (tests and tooling; a
    /// fabricated id never matches a live box unless the raw value came
    /// from one).
    pub fn from_raw(raw: usize) -> CellId {
        CellId(raw)
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell@{:x}", self.0)
    }
}

/// Owner-tag value when the tentative list is empty ([`TreeId::NONE`]).
const TENTATIVE_NONE: u64 = 0;
/// Owner-tag value when entries of more than one tree are present (only
/// transiently possible, while aborted foreign entries await scrubbing).
const TENTATIVE_MIXED: u64 = u64::MAX;

/// RAII holder of the per-cell structural-operation flag, serializing GC
/// trims and out-of-order mid-list splices against each other. Readers and
/// in-order (prepending) commits never touch it.
struct ListOpGuard<'a>(&'a AtomicBool);

impl<'a> ListOpGuard<'a> {
    /// Spin-acquires the flag (used by mid-list splices, which must run).
    fn acquire(flag: &'a AtomicBool) -> ListOpGuard<'a> {
        loop {
            if let Some(g) = ListOpGuard::try_acquire(flag) {
                return g;
            }
            std::hint::spin_loop();
        }
    }

    /// Acquires the flag only if free (trims are skippable optimizations).
    fn try_acquire(flag: &'a AtomicBool) -> Option<ListOpGuard<'a>> {
        flag.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
            .then_some(ListOpGuard(flag))
    }
}

impl Drop for ListOpGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// The untyped storage shared by all views of one `VBox`.
pub struct VBoxCell {
    /// Newest committed version; never null. Cache-padded so the hot read
    /// load does not false-share with the tentative mutex or owner tag.
    head: CachePadded<Atomic<PermVersion>>,
    /// Serializes GC trims and out-of-order splices (see module docs).
    list_op: AtomicBool,
    /// Tree whose entries currently occupy the tentative list:
    /// [`TENTATIVE_NONE`] when empty, the tree's raw id when uniform,
    /// [`TENTATIVE_MIXED`] otherwise. Maintained by [`TentativeGuard`].
    tentative_owner: AtomicU64,
    tentative: Mutex<Vec<TentativeEntry>>,
}

/// Guard over the tentative list. Dereferences to the entry vector;
/// recomputes the cell's owner tag when dropped, so lock-free readers
/// always observe a tag at least as fresh as the last structural change.
pub struct TentativeGuard<'a> {
    list: MutexGuard<'a, Vec<TentativeEntry>>,
    owner: &'a AtomicU64,
}

impl std::ops::Deref for TentativeGuard<'_> {
    type Target = Vec<TentativeEntry>;
    fn deref(&self) -> &Vec<TentativeEntry> {
        &self.list
    }
}

impl std::ops::DerefMut for TentativeGuard<'_> {
    fn deref_mut(&mut self) -> &mut Vec<TentativeEntry> {
        &mut self.list
    }
}

impl Drop for TentativeGuard<'_> {
    fn drop(&mut self) {
        let mut tag = TENTATIVE_NONE;
        for e in self.list.iter() {
            if tag == TENTATIVE_NONE {
                tag = e.tree.0;
            } else if tag != e.tree.0 {
                tag = TENTATIVE_MIXED;
                break;
            }
        }
        // Release: a reader that is obliged to see an entry (its own write,
        // or a propagated write it witnessed through `nClock`) synchronizes
        // with this store through the same chain that publishes the entry,
        // so it can never skip the mutex while a visible entry is inside.
        self.owner.store(tag, Ordering::Release);
    }
}

impl VBoxCell {
    /// Creates a cell whose initial value committed at version 0.
    pub fn new(initial: Val) -> Arc<VBoxCell> {
        Arc::new(VBoxCell {
            head: CachePadded::new(Atomic::new(PermVersion {
                version: 0,
                token: new_write_token(),
                value: initial,
                next: Atomic::null(),
            })),
            list_op: AtomicBool::new(false),
            tentative_owner: AtomicU64::new(TENTATIVE_NONE),
            tentative: Mutex::new(Vec::new()),
        })
    }

    /// Identity of this cell.
    #[inline]
    pub fn id(self: &Arc<Self>) -> CellId {
        CellId(Arc::as_ptr(self) as usize)
    }

    /// Returns the most recent committed version at or below `snapshot`
    /// (the top-level read rule of §III-A).
    ///
    /// # Panics
    /// If the snapshot predates every retained version, which the version GC
    /// watermark makes unreachable for registered transactions.
    #[inline]
    pub fn read_at(&self, snapshot: Version) -> (Val, WriteToken) {
        let (value, token, _) = self.read_at_traced(snapshot);
        (value, token)
    }

    /// [`VBoxCell::read_at`], also reporting which path served the read —
    /// the wait-free head check or the lock-free list walk.
    pub fn read_at_traced(&self, snapshot: Version) -> (Val, WriteToken, ReadPath) {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: `head` is never null (cells are born with their initial
        // version and trims always retain the keep node) and is protected by
        // the pin above.
        let node = unsafe { head.deref() };
        if node.version <= snapshot {
            return (node.value.clone(), node.token, ReadPath::Fast);
        }
        let mut cur = node.next.load(Ordering::Acquire, &guard);
        // SAFETY: loaded under the pin from a reachable node; trimmed
        // suffixes are retired, not freed, until every pin of their era ends.
        while let Some(n) = unsafe { cur.as_ref() } {
            if n.version <= snapshot {
                return (n.value.clone(), n.token, ReadPath::Slow);
            }
            cur = n.next.load(Ordering::Acquire, &guard);
        }
        panic!(
            "rtf internal error: no committed version <= {snapshot} retained \
             (GC watermark violated)"
        );
    }

    /// The head node (never null) under `guard`'s protection.
    fn head_ref<'g>(&self, guard: &'g Guard) -> &'g PermVersion {
        let head = self.head.load(Ordering::Acquire, guard);
        // SAFETY: the head is never null and `guard` pins the epoch.
        unsafe { head.deref() }
    }

    /// Token of the newest committed version.
    pub fn latest_token(&self) -> WriteToken {
        self.head_ref(&epoch::pin()).token
    }

    /// Version number of the newest committed version.
    pub fn latest_version(&self) -> Version {
        self.head_ref(&epoch::pin()).version
    }

    /// Newest committed value (diagnostic / quiescent use).
    pub fn latest_value(&self) -> Val {
        self.head_ref(&epoch::pin()).value.clone()
    }

    /// Installs the write of a committed top-level transaction.
    ///
    /// Idempotent per `version`, so helping threads may race on the same
    /// commit record (paper §III-A: JVSTM's helping write-back). The common
    /// case — this version is newer than the head — is a lock-free CAS
    /// prepend; a lagging helper replaying an older record splices mid-list
    /// under the per-cell structural flag. Returns the number of versions
    /// trimmed by the garbage collector (versions older than the newest
    /// version at or below `watermark` can no longer be read by any live
    /// transaction).
    pub fn apply_commit(
        &self,
        version: Version,
        value: Val,
        token: WriteToken,
        watermark: Version,
    ) -> usize {
        let guard = epoch::pin();
        let mut new = Owned::new(PermVersion { version, token, value, next: Atomic::null() });
        'install: loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: head is never null; protected by `guard`.
            let h = unsafe { head.deref() };
            if h.version == version {
                break 'install; // another helper already wrote this version back
            }
            if h.version < version {
                // In-order write-back: prepend. Release publishes the fully
                // initialized node (including its `next` link) to readers'
                // Acquire head loads.
                rtf_txfault::fail_point!("txengine.cell.prepend");
                new.next.store(head, Ordering::Relaxed);
                match self.head.compare_exchange(
                    head,
                    new,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                ) {
                    Ok(_) => break 'install,
                    Err(e) => {
                        new = e.new;
                        continue 'install;
                    }
                }
            }
            // Out-of-order write-back (lagging helper): splice mid-list,
            // serialized with trims so the walk cannot enter a suffix that a
            // concurrent trim detaches.
            rtf_txfault::fail_point!("txengine.cell.splice");
            let _lk = ListOpGuard::acquire(&self.list_op);
            // Re-read the head under the flag: head versions only grow, so
            // it still precedes our splice position, and no node reachable
            // from it can be detached while we hold the flag.
            let mut prev = self.head_ref(&guard);
            loop {
                let nxt = prev.next.load(Ordering::Acquire, &guard);
                // SAFETY: reachable under the pin; trim is excluded by the flag.
                match unsafe { nxt.as_ref() } {
                    Some(n) if n.version > version => prev = n,
                    Some(n) if n.version == version => break 'install,
                    _ => {
                        new.next.store(nxt, Ordering::Relaxed);
                        // Plain store: the flag excludes other splices and
                        // trims, and prepends never touch interior links.
                        prev.next.store(new, Ordering::Release);
                        break 'install;
                    }
                }
            }
        }
        self.trim(watermark, &guard)
    }

    /// Detaches and retires every version older than the keep node (the
    /// newest version at or below `watermark`). Returns the number of nodes
    /// retired; skips (returning 0) when another structural operation is in
    /// flight — trimming is an optimization, not an obligation.
    fn trim(&self, watermark: Version, guard: &Guard) -> usize {
        let Some(_lk) = ListOpGuard::try_acquire(&self.list_op) else {
            return 0;
        };
        // Trims are skippable: an injected abort models "GC lost the flag
        // race" and exercises the no-trim path under load.
        if rtf_txfault::fail_point!("txengine.cell.trim").is_abort() {
            return 0;
        }
        let mut keep = self.head_ref(guard);
        while keep.version > watermark {
            let nxt = keep.next.load(Ordering::Acquire, guard);
            // SAFETY: reachable under the pin; splices are excluded by the flag.
            match unsafe { nxt.as_ref() } {
                Some(n) => keep = n,
                // Nothing at or below the watermark: nothing to anchor a trim.
                None => return 0,
            }
        }
        let mut cur = keep.next.load(Ordering::Acquire, guard);
        if cur.is_null() {
            return 0;
        }
        // Unlink first, then retire: readers that can still reach the suffix
        // pinned before this store and hold reclamation back until they
        // unpin (see module docs for the full protocol).
        keep.next.store(Shared::<PermVersion>::null(), Ordering::Release);
        let mut trimmed = 0;
        // SAFETY: the suffix is now unreachable from the cell; each node is
        // read before retirement and freed only after all current pins end.
        while let Some(n) = unsafe { cur.as_ref() } {
            let next = n.next.load(Ordering::Acquire, guard);
            unsafe { guard.defer_destroy(cur) };
            trimmed += 1;
            cur = next;
        }
        trimmed
    }

    /// Number of retained committed versions (diagnostics).
    pub fn permanent_len(&self) -> usize {
        let guard = epoch::pin();
        let mut len = 0;
        let mut cur = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: reachable nodes under the pin.
        while let Some(n) = unsafe { cur.as_ref() } {
            len += 1;
            cur = n.next.load(Ordering::Acquire, &guard);
        }
        len
    }

    /// Locks the tentative list for structural manipulation. The returned
    /// guard maintains the cell's owner tag on unlock.
    pub fn tentative_lock(&self) -> TentativeGuard<'_> {
        TentativeGuard { list: self.tentative.lock(), owner: &self.tentative_owner }
    }

    /// Whether a reader must take the tentative-list mutex at all: `false`
    /// when the list is empty, or when it holds only entries of trees other
    /// than `reader` (which that reader can never observe — entries are
    /// filtered by tree before any ownership reasoning). `reader = None`
    /// means an unrestricted policy: scan unless empty.
    ///
    /// Memory ordering: the tag is written (`Release`) after the entries,
    /// under the same mutex; a reader that must see an entry — its own
    /// write (program order) or a propagated write it witnessed (the
    /// `propagate_to`/`nClock` Release/Acquire chain) — is downstream of
    /// that unlock, so it observes a tag that routes it into the scan.
    pub fn tentative_scan_needed(&self, reader: Option<TreeId>) -> bool {
        let tag = self.tentative_owner.load(Ordering::Acquire);
        if tag == TENTATIVE_NONE {
            return false;
        }
        match reader {
            None => true,
            Some(t) => tag == TENTATIVE_MIXED || tag == t.0,
        }
    }

    /// Whether the tentative list is (currently) empty, without blocking:
    /// used by the top-level fast read path (Alg 2 line 6's cheap case).
    pub fn tentative_is_empty(&self) -> bool {
        self.tentative_owner.load(Ordering::Acquire) == TENTATIVE_NONE
    }
}

impl Drop for VBoxCell {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): walk and free the version list.
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, guard);
        while !cur.is_null() {
            // SAFETY: exclusive access; every node was allocated by Owned.
            let owned = unsafe { cur.into_owned() };
            cur = owned.next.load(Ordering::Relaxed, guard);
        }
    }
}

impl fmt::Debug for VBoxCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VBoxCell{{versions: {}, head_v{}}}", self.permanent_len(), self.latest_version())
    }
}

/// Inserts `entry` into a tentative list kept in *descending* serialization
/// order, as required so reads stop at the first visible entry and the
/// top-level write-back takes the head (§IV-A).
///
/// If an entry with the same order key owned by the same orec exists, the
/// write overwrites it in place (Alg 1 line 7: a transaction re-writing a
/// box updates its own tentative version).
pub fn tentative_insert(list: &mut Vec<TentativeEntry>, entry: TentativeEntry) {
    for (i, e) in list.iter_mut().enumerate() {
        if Arc::ptr_eq(&e.orec, &entry.orec) && e.key == entry.key {
            *e = entry;
            return;
        }
        if entry.key > e.key {
            list.insert(i, entry);
            return;
        }
    }
    list.push(entry);
}

/// A typed, shareable handle to a versioned box.
///
/// `VBox` is the only container whose accesses the TM tracks, mirroring the
/// JTF programming model (§III): programs put shared state into boxes and
/// read/write them through a transaction handle.
pub struct VBox<T: TxData> {
    cell: Arc<VBoxCell>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: TxData> VBox<T> {
    /// Creates a box whose initial value is committed at version 0 (visible
    /// to every transaction).
    pub fn new(initial: T) -> Self {
        VBox { cell: VBoxCell::new(erase(initial)), _marker: PhantomData }
    }

    /// The untyped cell (runtime use).
    #[inline]
    pub fn cell(&self) -> &Arc<VBoxCell> {
        &self.cell
    }

    /// Identity of this box.
    #[inline]
    pub fn id(&self) -> CellId {
        self.cell.id()
    }

    /// Reads the latest committed value outside any transaction.
    ///
    /// Only meaningful when no transaction is running (tests, reporting
    /// after a benchmark); transactional code must go through a transaction
    /// handle.
    pub fn read_committed(&self) -> Arc<T> {
        downcast(self.cell.latest_value())
    }
}

impl<T: TxData> Clone for VBox<T> {
    fn clone(&self) -> Self {
        VBox { cell: Arc::clone(&self.cell), _marker: PhantomData }
    }
}

impl<T: TxData> fmt::Debug for VBox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VBox<{}>({:?})", std::any::type_name::<T>(), self.cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_txbase::new_node_id;

    #[test]
    fn initial_version_readable_at_any_snapshot() {
        let b = VBox::new(7u32);
        let (v, _) = b.cell().read_at(0);
        assert_eq!(*downcast::<u32>(v), 7);
        let (v, _) = b.cell().read_at(1_000_000);
        assert_eq!(*downcast::<u32>(v), 7);
    }

    #[test]
    fn read_at_picks_snapshot_version() {
        let b = VBox::new(0u32);
        let c = b.cell();
        c.apply_commit(5, erase(50u32), new_write_token(), 0);
        c.apply_commit(9, erase(90u32), new_write_token(), 0);
        assert_eq!(*downcast::<u32>(c.read_at(0).0), 0);
        assert_eq!(*downcast::<u32>(c.read_at(4).0), 0);
        assert_eq!(*downcast::<u32>(c.read_at(5).0), 50);
        assert_eq!(*downcast::<u32>(c.read_at(8).0), 50);
        assert_eq!(*downcast::<u32>(c.read_at(9).0), 90);
        assert_eq!(*downcast::<u32>(c.read_at(100).0), 90);
        assert_eq!(c.latest_version(), 9);
    }

    #[test]
    fn read_paths_are_attributed() {
        let b = VBox::new(0u32);
        let c = b.cell();
        c.apply_commit(5, erase(50u32), new_write_token(), 0);
        // Snapshot at or above the head: wait-free fast path.
        assert_eq!(c.read_at_traced(5).2, ReadPath::Fast);
        assert_eq!(c.read_at_traced(100).2, ReadPath::Fast);
        // Older snapshot: list walk.
        assert_eq!(c.read_at_traced(4).2, ReadPath::Slow);
        assert_eq!(*downcast::<u32>(c.read_at_traced(4).0), 0);
    }

    #[test]
    fn apply_commit_is_idempotent_per_version() {
        let b = VBox::new(0u32);
        let c = b.cell();
        let tok = new_write_token();
        c.apply_commit(3, erase(30u32), tok, 0);
        // A helping thread replays the same record.
        c.apply_commit(3, erase(30u32), tok, 0);
        assert_eq!(c.permanent_len(), 2);
        assert_eq!(c.latest_token(), tok);
    }

    #[test]
    fn out_of_order_writeback_splices_mid_list() {
        // A lagging helper applies version 4 after 6 and 8 already landed:
        // the splice must keep the list sorted and every snapshot readable.
        let b = VBox::new(0u32);
        let c = b.cell();
        c.apply_commit(6, erase(60u32), new_write_token(), 0);
        c.apply_commit(8, erase(80u32), new_write_token(), 0);
        c.apply_commit(4, erase(40u32), new_write_token(), 0);
        assert_eq!(c.permanent_len(), 4);
        assert_eq!(*downcast::<u32>(c.read_at(3).0), 0);
        assert_eq!(*downcast::<u32>(c.read_at(4).0), 40);
        assert_eq!(*downcast::<u32>(c.read_at(5).0), 40);
        assert_eq!(*downcast::<u32>(c.read_at(7).0), 60);
        assert_eq!(*downcast::<u32>(c.read_at(9).0), 80);
        // Replaying the spliced version is still idempotent.
        c.apply_commit(4, erase(40u32), new_write_token(), 0);
        assert_eq!(c.permanent_len(), 4);
    }

    #[test]
    fn gc_trims_below_watermark_keeping_one_readable() {
        let b = VBox::new(0u32);
        let c = b.cell();
        for v in 1..=10u64 {
            c.apply_commit(v, erase(v as u32), new_write_token(), 0);
        }
        assert_eq!(c.permanent_len(), 11);
        // Oldest live transaction started at version 7.
        let trimmed = c.apply_commit(11, erase(110u32), new_write_token(), 7);
        // Keep versions 11..=8 plus the newest <= 7 (version 7 itself).
        assert_eq!(trimmed, 7);
        assert_eq!(c.permanent_len(), 5);
        assert_eq!(*downcast::<u32>(c.read_at(7).0), 7);
        assert_eq!(*downcast::<u32>(c.read_at(100).0), 110);
    }

    #[test]
    #[should_panic(expected = "GC watermark violated")]
    fn reading_below_retained_panics() {
        let b = VBox::new(0u32);
        let c = b.cell();
        c.apply_commit(5, erase(1u32), new_write_token(), 5);
        c.apply_commit(6, erase(2u32), new_write_token(), 6);
        // Versions 0 and 5 trimmed; snapshot 3 unreadable.
        let _ = c.read_at(3);
    }

    #[test]
    fn tentative_insert_keeps_descending_order_and_overwrites() {
        let root = OrderKey::root();
        let o1 = Arc::new(Orec::new(new_node_id()));
        let o2 = Arc::new(Orec::new(new_node_id()));
        let mut list = Vec::new();
        let tree = rtf_txbase::new_tree_id();
        let entry = |key: OrderKey, orec: &Arc<Orec>, val: u32| TentativeEntry {
            key,
            token: new_write_token(),
            value: erase(val),
            orec: Arc::clone(orec),
            tree,
        };
        tentative_insert(&mut list, entry(root.child_future(0).write_key(0), &o1, 1));
        tentative_insert(&mut list, entry(root.child_cont(0).write_key(0), &o2, 2));
        tentative_insert(&mut list, entry(root.write_key(0), &o1, 3));
        let keys: Vec<_> = list.iter().map(|e| e.key.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(keys, sorted, "list must be descending");
        assert_eq!(list.len(), 3);

        // Overwrite: same orec, same key.
        tentative_insert(&mut list, entry(root.write_key(0), &o1, 30));
        assert_eq!(list.len(), 3);
        let tail = &list[2];
        assert_eq!(*downcast::<u32>(tail.value.clone()), 30);
    }

    #[test]
    fn owner_tag_tracks_tentative_occupancy() {
        let b = VBox::new(0u32);
        let c = b.cell();
        let mine = rtf_txbase::new_tree_id();
        let other = rtf_txbase::new_tree_id();
        assert!(c.tentative_is_empty());
        assert!(!c.tentative_scan_needed(Some(mine)));
        assert!(!c.tentative_scan_needed(None));

        let entry = |tree| TentativeEntry {
            key: OrderKey::root().write_key(0),
            token: new_write_token(),
            value: erase(1u32),
            orec: Arc::new(Orec::new(new_node_id())),
            tree,
        };
        tentative_insert(&mut c.tentative_lock(), entry(other));
        assert!(!c.tentative_is_empty());
        // Another tree's entries can never be visible to `mine`: skip.
        assert!(!c.tentative_scan_needed(Some(mine)));
        assert!(c.tentative_scan_needed(Some(other)));
        // Unrestricted policies scan whenever the list is non-empty.
        assert!(c.tentative_scan_needed(None));

        // Mixed occupancy (foreign aborted leftovers): everyone scans.
        c.tentative_lock().push(entry(mine));
        assert!(c.tentative_scan_needed(Some(mine)));
        assert!(c.tentative_scan_needed(Some(other)));

        c.tentative_lock().clear();
        assert!(c.tentative_is_empty());
        assert!(!c.tentative_scan_needed(Some(mine)));
    }

    #[test]
    fn cell_ids_are_distinct_and_stable() {
        let a = VBox::new(1u8);
        let b = VBox::new(1u8);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), a.clone().id());
    }

    #[test]
    fn read_committed_outside_txn() {
        let b = VBox::new(String::from("hi"));
        assert_eq!(&*b.read_committed(), "hi");
    }

    #[test]
    fn concurrent_readers_commits_and_gc_agree() {
        // Stress the lock-free read path against concurrent prepends and
        // trims: every read at a snapshot `s` must return the value
        // committed at the newest version <= s (values mirror versions).
        use std::sync::atomic::AtomicU64;
        let b = VBox::new(0u64);
        let c = Arc::clone(b.cell());
        let published = Arc::new(AtomicU64::new(0));
        let writer = {
            let c = Arc::clone(&c);
            let published = Arc::clone(&published);
            std::thread::spawn(move || {
                for v in 1..=2000u64 {
                    let watermark = published.load(Ordering::Relaxed).saturating_sub(4);
                    c.apply_commit(v, erase(v), new_write_token(), watermark);
                    published.store(v, Ordering::Release);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                let published = Arc::clone(&published);
                std::thread::spawn(move || {
                    for _ in 0..4000 {
                        let snap = published.load(Ordering::Acquire);
                        let (val, _) = c.read_at(snap);
                        let got = *downcast::<u64>(val);
                        assert!(
                            got <= snap && got + 4 >= snap.saturating_sub(0).min(got + 4),
                            "read at {snap} returned {got}"
                        );
                        assert_eq!(
                            got,
                            snap.min(2000),
                            "snapshot read must return the newest version <= snapshot"
                        );
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*downcast::<u64>(c.read_at(2000).0), 2000);
    }
}
