//! Retry pacing shared by every optimistic re-execution driver.
//!
//! Top-level transactions (`MvStm::atomic`, `Rtf::atomic`) and the partial
//! re-execution of aborted sub-transactions all follow the same loop shape:
//! run, fail, back off, run again. The [`RetryPolicy`] trait isolates the
//! pacing decision; [`ExpBackoff`] is the production ladder (brief spin,
//! then yields, then escalating sleeps) tuned for commit-time conflicts that
//! resolve within microseconds but must not melt the scheduler when they
//! don't.

use std::time::{Duration, Instant};

/// Decides how long attempt number `attempt` (1-based: the first *retry* is
/// attempt 1) should pause before re-executing.
pub trait RetryPolicy {
    /// Blocks the calling thread appropriately for `attempt`.
    fn pause(&self, attempt: u32);
}

/// The production backoff ladder: spin briefly, then yield, then sleep in
/// escalating (capped) slices.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExpBackoff;

impl RetryPolicy for ExpBackoff {
    fn pause(&self, attempt: u32) {
        match attempt {
            0 => {}
            1..=3 => {
                for _ in 0..(1u32 << attempt) {
                    std::hint::spin_loop();
                }
            }
            4..=6 => std::thread::yield_now(),
            n => {
                let us = ((n - 6) as u64 * 50).min(2_000);
                std::thread::sleep(Duration::from_micros(us));
            }
        }
    }
}

/// Backs off for retry attempt `attempt` using the production ladder —
/// compatibility shim for callers that manage their own attempt counter.
#[inline]
pub fn retry_backoff(attempt: u32) {
    ExpBackoff.pause(attempt);
}

/// Limits on how long a [`RetryDriver`] may keep retrying. The default is
/// unlimited (the paper's optimistic loops retry until they win).
#[derive(Clone, Copy, Debug, Default)]
pub struct RetryBudget {
    /// Maximum number of failed attempts before giving up.
    pub max_attempts: Option<u32>,
    /// Wall-clock instant after which no further attempt is made.
    pub deadline: Option<Instant>,
}

impl RetryBudget {
    /// The unlimited budget (retry forever).
    pub const UNLIMITED: RetryBudget = RetryBudget { max_attempts: None, deadline: None };

    /// True when neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_attempts.is_none() && self.deadline.is_none()
    }
}

/// Why a bounded retry loop gave up (see [`RetryDriver::try_backoff`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryExhausted {
    /// The attempt cap was reached.
    Attempts {
        /// Failed attempts performed.
        attempts: u32,
    },
    /// The deadline passed.
    Deadline {
        /// Failed attempts performed when the deadline fired.
        attempts: u32,
    },
}

impl RetryExhausted {
    /// Failed attempts performed before giving up.
    pub fn attempts(&self) -> u32 {
        match *self {
            RetryExhausted::Attempts { attempts } | RetryExhausted::Deadline { attempts } => {
                attempts
            }
        }
    }
}

/// Counts attempts and applies a [`RetryPolicy`] between them: the single
/// retry-with-backoff driver for both the top-level `atomic` loop and the
/// tree re-execution driver.
#[derive(Debug, Default)]
pub struct RetryDriver<P: RetryPolicy = ExpBackoff> {
    attempt: u32,
    policy: P,
    budget: RetryBudget,
}

impl RetryDriver<ExpBackoff> {
    /// A driver with the production backoff ladder.
    pub fn new() -> RetryDriver<ExpBackoff> {
        RetryDriver::with_policy(ExpBackoff)
    }
}

impl<P: RetryPolicy> RetryDriver<P> {
    /// A driver pacing retries with `policy`.
    pub fn with_policy(policy: P) -> RetryDriver<P> {
        RetryDriver { attempt: 0, policy, budget: RetryBudget::UNLIMITED }
    }

    /// Installs an attempt/deadline budget (builder style).
    pub fn with_budget(mut self, budget: RetryBudget) -> RetryDriver<P> {
        self.budget = budget;
        self
    }

    /// Number of failed attempts so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Registers a failed attempt and pauses before the next one
    /// (unbounded: ignores the budget).
    pub fn backoff(&mut self) {
        self.attempt += 1;
        self.policy.pause(self.attempt);
    }

    /// Registers a failed attempt; pauses and returns `Ok` if the budget
    /// permits another try, or reports [`RetryExhausted`] without pausing.
    pub fn try_backoff(&mut self) -> Result<(), RetryExhausted> {
        self.attempt += 1;
        if let Some(max) = self.budget.max_attempts {
            if self.attempt >= max {
                return Err(RetryExhausted::Attempts { attempts: self.attempt });
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Err(RetryExhausted::Deadline { attempts: self.attempt });
            }
        }
        self.policy.pause(self.attempt);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn driver_counts_attempts() {
        let mut d = RetryDriver::new();
        assert_eq!(d.attempt(), 0);
        d.backoff();
        d.backoff();
        assert_eq!(d.attempt(), 2);
    }

    #[test]
    fn driver_consults_policy_with_one_based_attempts() {
        struct Recording(AtomicU32);
        impl RetryPolicy for &Recording {
            fn pause(&self, attempt: u32) {
                self.0.store(attempt, Ordering::Relaxed);
            }
        }
        let rec = Recording(AtomicU32::new(0));
        let mut d = RetryDriver::with_policy(&rec);
        d.backoff();
        assert_eq!(rec.0.load(Ordering::Relaxed), 1);
        d.backoff();
        assert_eq!(rec.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn attempt_budget_exhausts() {
        let mut d =
            RetryDriver::new().with_budget(RetryBudget { max_attempts: Some(3), deadline: None });
        assert!(d.try_backoff().is_ok());
        assert!(d.try_backoff().is_ok());
        assert_eq!(d.try_backoff(), Err(RetryExhausted::Attempts { attempts: 3 }));
    }

    #[test]
    fn deadline_budget_exhausts() {
        let mut d = RetryDriver::new().with_budget(RetryBudget {
            max_attempts: None,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
        });
        match d.try_backoff() {
            Err(RetryExhausted::Deadline { attempts: 1 }) => {}
            other => panic!("expected deadline exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        assert!(RetryBudget::UNLIMITED.is_unlimited());
        let mut d = RetryDriver::new();
        for _ in 0..8 {
            assert!(d.try_backoff().is_ok());
        }
    }

    #[test]
    fn backoff_levels_terminate() {
        // Spin, yield and sleep levels all return promptly.
        for attempt in 0..=8 {
            retry_backoff(attempt);
        }
    }
}
