//! The unified transactional access pipeline: one read-resolution walk and
//! one validation loop, parameterized by a [`Visibility`] policy.
//!
//! Every read in the system — a top-level snapshot read, a sub-transaction
//! read under the Fig 4 visibility rule, or a commit-time re-resolution
//! during validation — asks the same three questions in the same order:
//!
//! 1. is some *tentative* entry of the cell visible to me?
//! 2. failing that, do I have a *local* buffered write (top-level write-set
//!    or the tree's root write-set)?
//! 3. failing that, which *permanent* version is in my snapshot?
//!
//! What differs between the paths is only the answer policy: which tentative
//! entries count as visible (none at top level; the `ancVer`/`nClock` rules
//! for sub-transactions; the order-cutoff rules at validation) and which
//! snapshot bounds the permanent lookup (the transaction's start version for
//! reads; "latest" for top-level validation). [`resolve_read`] is the single
//! walk; [`validate_reads`] is the single validation loop, re-resolving each
//! recorded read under a validation policy and comparing write identities.
//!
//! Validation by token comparison subsumes the classic version comparison:
//! write tokens are unique per write, so "re-resolving yields the same token"
//! holds exactly when the read would observe the same write again — for a
//! top-level read that is "no version newer than my start committed", the
//! JVSTM validation rule.

use std::sync::Arc;

use rtf_txbase::{TreeId, Version, WriteToken};

use crate::cell::{CellId, ReadPath, TentativeEntry, VBoxCell};
use crate::readset::{ReadRecord, Source};
use crate::value::Val;

/// A read-visibility policy: what one transactional context is allowed to
/// observe. Implemented once per access path (top-level read, top-level
/// validation, sub-transaction read, sub-transaction validation).
pub trait Visibility {
    /// Visibility of one tentative entry to this reader, or `None` when the
    /// entry must be skipped. Called under the cell's tentative-list lock,
    /// in descending serialization order; the first `Some` wins.
    fn tentative(&self, entry: &TentativeEntry) -> Option<Source>;

    /// Local buffered write for `id` (top-level write-set / root write-set),
    /// consulted after the tentative walk and before the permanent list.
    fn local(&self, id: CellId) -> Option<(Val, WriteToken)>;

    /// Snapshot version bounding the permanent-list fallback.
    fn snapshot(&self) -> Version;

    /// Whether the tentative walk applies at all. Top-level policies return
    /// `false`: they can never observe tentative entries, and skipping the
    /// walk avoids taking the tentative-list lock on the hot read path.
    fn scans_tentative(&self) -> bool {
        true
    }

    /// The tree this reader belongs to, when its tentative rule can only
    /// ever admit entries of that tree (the Fig 4 policies all filter by
    /// `entry.tree` first). Lets [`resolve_read`] skip the tentative-list
    /// mutex via the cell's owner tag when the list holds only other trees'
    /// entries. `None` (the default) claims nothing and always scans.
    fn tentative_tree(&self) -> Option<TreeId> {
        None
    }
}

/// A resolved read: the observed value, the identity of the write that
/// produced it, and which layer served it.
pub struct Resolution {
    /// The observed value.
    pub value: Val,
    /// Identity of the observed write.
    pub token: WriteToken,
    /// Which layer served the read.
    pub source: Source,
    /// Tree owning the observed write when it was served from a tentative
    /// entry; [`TreeId::NONE`] for local and permanent sources (abort
    /// attribution material — see [`ConflictSite`]).
    pub writer_tree: TreeId,
    /// Which permanent-list path served the read. Tentative and local hits
    /// never touch the permanent list and report [`ReadPath::Fast`] (they
    /// are lock-free for the reporting transaction by construction).
    pub path: ReadPath,
}

/// Resolves one read of `cell` under `policy` — the only read-resolution
/// walk in the workspace (tentative list, then local buffer, then permanent
/// versions).
pub fn resolve_read<V: Visibility + ?Sized>(policy: &V, cell: &Arc<VBoxCell>) -> Resolution {
    // The owner tag lets readers skip the tentative mutex when the list is
    // empty or holds only entries their tree-filtering rule would reject —
    // the common case for every read class except the writer's own tree.
    if policy.scans_tentative() && cell.tentative_scan_needed(policy.tentative_tree()) {
        let list = cell.tentative_lock();
        for entry in list.iter() {
            if let Some(source) = policy.tentative(entry) {
                return Resolution {
                    value: entry.value.clone(),
                    token: entry.token,
                    source,
                    writer_tree: entry.tree,
                    path: ReadPath::Fast,
                };
            }
        }
    }
    if let Some((value, token)) = policy.local(cell.id()) {
        return Resolution {
            value,
            token,
            source: Source::Local,
            writer_tree: TreeId::NONE,
            path: ReadPath::Fast,
        };
    }
    let (value, token, path) = cell.read_at_traced(policy.snapshot());
    Resolution { value, token, source: Source::Permanent, writer_tree: TreeId::NONE, path }
}

/// The cell a validation failed on, and (when the displacing write is still
/// tentative) the tree that owns it. This is the abort-attribution record
/// aggregated by the observability layer into conflict-hotspot reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictSite {
    /// The cell whose recorded read no longer resolves to the same write.
    pub cell: CellId,
    /// Tree owning the displacing write, or [`TreeId::NONE`] when the
    /// displacement is an already-permanent commit.
    pub writer_tree: TreeId,
}

/// Validates a set of recorded reads — the only token-validation loop in the
/// workspace. Each read is re-resolved under the policy `policy_for` builds
/// for it, and stays valid iff it would observe the same write again.
///
/// Reads served from the reader's own write ([`Source::OwnWrite`]) are
/// exempt: nobody else can displace them before the reader commits.
pub fn validate_reads<'a, V, I, F>(reads: I, policy_for: F) -> bool
where
    V: Visibility,
    I: IntoIterator<Item = &'a ReadRecord>,
    F: FnMut(&ReadRecord) -> V,
{
    validate_reads_detailed(reads, policy_for).is_ok()
}

/// [`validate_reads`], attributing the failure: returns the first read that
/// would resolve differently, as a [`ConflictSite`] naming the cell and —
/// when the displacing write is tentative — the tree that owns it.
pub fn validate_reads_detailed<'a, V, I, F>(reads: I, mut policy_for: F) -> Result<(), ConflictSite>
where
    V: Visibility,
    I: IntoIterator<Item = &'a ReadRecord>,
    F: FnMut(&ReadRecord) -> V,
{
    for r in reads {
        if r.source == Source::OwnWrite {
            continue;
        }
        let res = resolve_read(&policy_for(r), &r.cell);
        if res.token != r.token {
            return Err(ConflictSite { cell: r.cell.id(), writer_tree: res.writer_tree });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::tentative_insert;
    use crate::value::{downcast, erase};
    use rtf_txbase::{new_node_id, new_tree_id, new_write_token, OrderKey, Orec};

    /// A policy whose behaviour is fully table-driven, for exercising the
    /// walk in isolation from any real transaction machinery.
    struct Fake {
        snapshot: Version,
        scans: bool,
        local: Option<(Val, WriteToken)>,
        visible_tokens: Vec<WriteToken>,
    }

    impl Visibility for Fake {
        fn tentative(&self, entry: &TentativeEntry) -> Option<Source> {
            self.visible_tokens.contains(&entry.token).then_some(Source::Tentative)
        }
        fn local(&self, _id: CellId) -> Option<(Val, WriteToken)> {
            self.local.clone()
        }
        fn snapshot(&self) -> Version {
            self.snapshot
        }
        fn scans_tentative(&self) -> bool {
            self.scans
        }
    }

    fn fake(snapshot: Version) -> Fake {
        Fake { snapshot, scans: true, local: None, visible_tokens: Vec::new() }
    }

    fn add_tentative(cell: &Arc<VBoxCell>, key: OrderKey, val: u32) -> WriteToken {
        let token = new_write_token();
        tentative_insert(
            &mut cell.tentative_lock(),
            TentativeEntry {
                key,
                token,
                value: erase(val),
                orec: Arc::new(Orec::new(new_node_id())),
                tree: new_tree_id(),
            },
        );
        token
    }

    #[test]
    fn falls_through_to_permanent_snapshot() {
        let cell = VBoxCell::new(erase(10u32));
        cell.apply_commit(5, erase(50u32), new_write_token(), 0);
        let r = resolve_read(&fake(4), &cell);
        assert_eq!(*downcast::<u32>(r.value), 10);
        assert_eq!(r.source, Source::Permanent);
        let r = resolve_read(&fake(5), &cell);
        assert_eq!(*downcast::<u32>(r.value), 50);
    }

    #[test]
    fn local_buffer_beats_permanent() {
        let cell = VBoxCell::new(erase(10u32));
        let tok = new_write_token();
        let mut p = fake(100);
        p.local = Some((erase(77u32), tok));
        let r = resolve_read(&p, &cell);
        assert_eq!(*downcast::<u32>(r.value), 77);
        assert_eq!(r.token, tok);
        assert_eq!(r.source, Source::Local);
    }

    #[test]
    fn first_visible_tentative_entry_wins() {
        let cell = VBoxCell::new(erase(0u32));
        let root = OrderKey::root();
        // Later in serialization order sits earlier in the (descending) list.
        let t_early = add_tentative(&cell, root.child_future(0).write_key(0), 1);
        let t_late = add_tentative(&cell, root.child_cont(0).write_key(0), 2);
        let mut p = fake(100);
        p.visible_tokens = vec![t_early, t_late];
        let r = resolve_read(&p, &cell);
        assert_eq!(r.token, t_late, "descending walk must stop at the newest visible write");
        assert_eq!(r.source, Source::Tentative);
        // Hide the late one: the walk continues to the earlier entry.
        p.visible_tokens = vec![t_early];
        assert_eq!(resolve_read(&p, &cell).token, t_early);
    }

    #[test]
    fn policies_that_do_not_scan_skip_tentative_entries() {
        let cell = VBoxCell::new(erase(0u32));
        let tok = add_tentative(&cell, OrderKey::root().write_key(0), 9);
        let mut p = fake(100);
        p.visible_tokens = vec![tok];
        p.scans = false;
        let r = resolve_read(&p, &cell);
        assert_eq!(r.source, Source::Permanent);
        assert_eq!(*downcast::<u32>(r.value), 0);
    }

    #[test]
    fn validate_detects_displaced_reads_and_exempts_own_writes() {
        let cell = VBoxCell::new(erase(0u32));
        let seen = cell.latest_token();
        let record =
            |token, source| ReadRecord { cell: Arc::clone(&cell), token, source, epoch: 0 };
        // Unchanged: valid.
        assert!(validate_reads([&record(seen, Source::Permanent)], |_| fake(Version::MAX)));
        // A newer commit displaces the read.
        cell.apply_commit(3, erase(1u32), new_write_token(), 0);
        assert!(!validate_reads([&record(seen, Source::Permanent)], |_| fake(Version::MAX)));
        // ... but a stale own-write record is exempt by construction.
        assert!(validate_reads([&record(seen, Source::OwnWrite)], |_| fake(Version::MAX)));
        // Validation at the original snapshot still accepts the read (the
        // newer commit is outside the snapshot).
        assert!(validate_reads([&record(seen, Source::Permanent)], |_| fake(0)));
    }

    #[test]
    fn detailed_validation_attributes_cell_and_writer_tree() {
        let cell = VBoxCell::new(erase(0u32));
        let seen = cell.latest_token();
        let record =
            |token, source| ReadRecord { cell: Arc::clone(&cell), token, source, epoch: 0 };
        assert_eq!(
            validate_reads_detailed([&record(seen, Source::Permanent)], |_| fake(Version::MAX)),
            Ok(())
        );
        // Displaced by a visible tentative write: the conflict names the cell
        // and the owning tree.
        let tok = add_tentative(&cell, OrderKey::root().write_key(0), 1);
        let site = validate_reads_detailed([&record(seen, Source::Permanent)], |_| Fake {
            snapshot: Version::MAX,
            scans: true,
            local: None,
            visible_tokens: vec![tok],
        })
        .unwrap_err();
        assert_eq!(site.cell, cell.id());
        assert_ne!(site.writer_tree, TreeId::NONE);
        // Displaced by a permanent commit: no tentative owner to blame.
        cell.apply_commit(3, erase(2u32), new_write_token(), 0);
        let site =
            validate_reads_detailed([&record(seen, Source::Permanent)], |_| fake(3)).unwrap_err();
        assert_eq!(site, ConflictSite { cell: cell.id(), writer_tree: TreeId::NONE });
    }
}
