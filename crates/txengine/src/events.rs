//! Engine instrumentation: a single [`EventSink`] seam instead of scattered
//! counter bumps and ad-hoc tracing.
//!
//! Every noteworthy runtime event — commits, aborts, helping, GC, time spent
//! waiting — is reported as an [`Event`] to a sink threaded through the
//! engine and its client crates. The default production wiring is a
//! [`StatsSink`] over the shared [`TmStats`] counters; the `RTF_TRACE`
//! diagnostic stream is just another sink ([`TraceSink`]), composed in via
//! [`TeeSink`] when enabled. Tests and benchmarks can substitute their own
//! sinks without touching the hot paths.
//!
//! Beyond point events, sinks may opt into *spans* — closed intervals of a
//! transaction's lifecycle ([`SpanRec`]) stamped against the process-wide
//! monotonic clock ([`obs_now_ns`]). Span emission is double-gated: call
//! sites check [`EventSink::spans_enabled`] before reading the clock, so the
//! default ([`NullSink`]) path costs one virtual call returning a constant.

use std::fmt;
use std::sync::Arc;

use rtf_txbase::{TmStats, TreeId};

use crate::cell::CellId;

/// Which abort path attributed a conflict (see [`Event::Conflict`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Top-level commit-time validation observed a displaced read.
    TopValidation,
    /// Sub-transaction (Alg 4) validation observed a displaced read.
    SubValidation,
    /// A write hit a live tentative entry owned by another tree
    /// (`ownedByAnotherTree`).
    InterTree,
}

/// Which blocking wait the starvation watchdog flagged (see
/// [`Event::StallDetected`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// A sub-commit blocked in `waitTurn` (Alg 3) past the stall threshold.
    WaitTurn,
    /// Tree teardown blocked waiting for task quiescence.
    Quiescence,
    /// A submitter blocked in `TxFuture::wait`/`eval` past the threshold.
    FutureWait,
    /// An ordered-lane transaction blocked waiting for its commit ticket's
    /// turn past the threshold.
    TicketWait,
    /// An async transaction future (`run_async`) outlived the threshold
    /// between creation and resolution (warn-only; the inner blocking
    /// waits own abort authority).
    AsyncWait,
}

impl StallKind {
    /// Stable display name (used by trace/JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            StallKind::WaitTurn => "wait_turn",
            StallKind::Quiescence => "quiescence",
            StallKind::FutureWait => "future_wait",
            StallKind::TicketWait => "ticket_wait",
            StallKind::AsyncWait => "async_wait",
        }
    }
}

/// One observable runtime event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A top-level read-write transaction committed.
    TopCommit,
    /// A top-level read-only transaction committed (validation skipped).
    TopRoCommit,
    /// A top-level transaction failed commit-time validation.
    TopValidationAbort,
    /// A whole tree aborted on an inter-tree tentative-list conflict
    /// (`ownedByAnotherTree`).
    InterTreeAbort,
    /// A top-level re-execution ran in sequential fallback mode.
    FallbackRun,
    /// A sub-transaction (future or continuation) committed.
    SubCommit,
    /// A sub-transaction failed validation and re-executed (partial
    /// rollback).
    SubValidationAbort,
    /// An implicit continuation failed validation and restarted the whole
    /// top-level transaction (FCC substitution, DESIGN.md D1).
    ContinuationRestart,
    /// A transactional future was submitted.
    FutureSubmitted,
    /// A read-only sub-transaction skipped validation (§IV-E).
    RoValidationSkip,
    /// A read-only sub-transaction could not skip validation.
    RoValidationTaken,
    /// A commit record was written back by a helping thread.
    HelpedWriteback,
    /// Permanent versions trimmed by the version GC.
    VersionsGced(u64),
    /// Nanoseconds spent blocked in `waitTurn`.
    WaitTurnNs(u64),
    /// Nanoseconds spent in sub-transaction read-set validation.
    ValidationNs(u64),
    /// Nanoseconds a successful top-level commit spent in the commit chain
    /// (validation + write-back, helping included).
    TopCommitNs(u64),
    /// Nanoseconds from a future's submission to its result becoming
    /// available to the continuation.
    FutureLifetimeNs(u64),
    /// An abort attributed to a specific cell. `writer_tree` is the tree
    /// owning the displacing/conflicting write, or [`TreeId::NONE`] when the
    /// displacement came from an already-permanent commit.
    Conflict {
        /// Which abort path attributed the conflict.
        kind: ConflictKind,
        /// The cell the conflict was observed on.
        cell: CellId,
        /// Tree owning the conflicting write ([`TreeId::NONE`] when the
        /// displacement was an already-permanent commit).
        writer_tree: TreeId,
    },
    /// A blocked or idle thread ran a queued pool task inline.
    PoolTaskHelped,
    /// A helping attempt had to defer queued tasks its fence stack forbids.
    PoolFenceDeferrals(u64),
    /// A transaction's accumulated read-path counts, flushed once at
    /// commit/teardown (per-read shared-counter traffic would serialize the
    /// lock-free read path this event exists to observe).
    ReadPathBatch {
        /// Reads served by the wait-free fast path.
        fast: u64,
        /// Reads that walked the version list.
        slow: u64,
    },
    /// The starvation watchdog observed a blocking wait exceeding its
    /// threshold (the waiter keeps waiting; this is the escalation signal).
    StallDetected {
        /// Which wait stalled.
        kind: StallKind,
        /// Raw id of the waiting tree (0 when not applicable).
        tree: u64,
        /// Raw id of the waiting node (0 when not applicable).
        node: u64,
        /// How long the waiter had been blocked when the report fired.
        waited_ns: u64,
    },
    /// A permanently stalled wait was converted into a structured abort
    /// (`RTF_STALL_ABORT_MS` exceeded).
    StallAbort,
    /// A pool task panicked and was contained by the worker/helper
    /// `catch_unwind` (the worker survives).
    PoolTaskPanicked,
    /// A transactional future's task panicked and was converted into a
    /// structured cancellation instead of a hang.
    FuturePanicked,
    /// A retry driver exhausted its attempt/deadline budget.
    RetryExhausted,
    /// `orec_snapshot` retries accumulated by one transaction (flushed with
    /// the read-path batch; each retry is one full re-read forced by a
    /// racing ownership propagation).
    OrecSnapshotRetries(u64),
    /// An ordered-lane commit ticket was issued.
    TicketIssued,
    /// An ordered-lane transaction committed at its ticket's turn. The
    /// `(lane, seq)` pair is the transaction's position in the predefined
    /// commit order; the stream of these events *is* the commit-order log
    /// the record/replay harness captures (`rtf-replay-v1`).
    TicketCommit {
        /// Dispenser lane the ticket came from.
        lane: u32,
        /// Position within the lane (ascending at commit time).
        seq: u64,
        /// Raw id of the committing tree (diagnostic only: tree ids are
        /// process-global and not reproducible across runs, so replay
        /// artifacts exclude them).
        tree: u64,
    },
    /// An ordered-lane ticket was abandoned before commit (abort, panic,
    /// retry exhaustion or stall); the lane skips over it.
    TicketAbandoned {
        /// Dispenser lane the ticket came from.
        lane: u32,
        /// Position within the lane.
        seq: u64,
    },
    /// Nanoseconds an ordered-lane commit spent waiting for its turn.
    TicketWaitNs(u64),
    /// Spurious ordered-lane wakeups accumulated by one turn wait (woken
    /// with the turn still pending; flushed once when the turn arrives).
    TicketSpuriousWakes(u64),
    /// An async task's waker was registered at a blocking site (the waker
    /// backend of the unified wait layer).
    WakerRegistered,
    /// A registered waker was fired by a completion/notify path.
    WakerFired,
    /// The async front-end polled a transaction future (`TxRun::poll`).
    AsyncPoll,
    /// A poll of an already-registered transaction future found the result
    /// still pending (the wake was spurious from the future's viewpoint).
    AsyncSpuriousPoll,
    /// The calling thread entered a registered blocking wait site and
    /// published what it waits on — the raw material of the live wait-graph
    /// inspector. `(a, b)` are kind-specific coordinates: `(lane, seq)` for
    /// [`StallKind::TicketWait`], `(node, nclock target)` for
    /// [`StallKind::WaitTurn`], `(waiting node, 0)` for
    /// [`StallKind::FutureWait`] / [`StallKind::AsyncWait`], `(live tasks,
    /// 0)` for [`StallKind::Quiescence`]. Always paired with a
    /// [`Event::WaitEnd`] from the same thread (RAII at the wait site);
    /// sites may nest (a waiter helping the pool can block again inside).
    WaitBegin {
        /// Which family of blocking wait.
        kind: StallKind,
        /// Raw id of the waiting tree (0 when not applicable).
        tree: u64,
        /// First kind-specific coordinate (see variant docs).
        a: u64,
        /// Second kind-specific coordinate (see variant docs).
        b: u64,
    },
    /// The calling thread left its innermost registered wait site.
    WaitEnd,
}

/// Phases of the transaction-tree lifecycle a [`SpanRec`] can cover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// One top-level execution attempt (begin to commit/abort).
    TopLevel = 0,
    /// A future body: node creation to sub-commit (waits included).
    Future = 1,
    /// A continuation segment: node creation to sub-commit.
    Continuation = 2,
    /// Time blocked in `waitTurn` (Alg 3) before a sub-commit.
    WaitTurn = 3,
    /// Sub-transaction read-set validation (Alg 4).
    Validation = 4,
    /// Top-level commit-chain traversal (validation + write-back).
    TopCommit = 5,
    /// A queued pool task run inline by a blocked/idle thread.
    PoolHelp = 6,
}

impl SpanKind {
    /// All kinds, in discriminant order (for table-driven exporters).
    pub const ALL: [SpanKind; 7] = [
        SpanKind::TopLevel,
        SpanKind::Future,
        SpanKind::Continuation,
        SpanKind::WaitTurn,
        SpanKind::Validation,
        SpanKind::TopCommit,
        SpanKind::PoolHelp,
    ];

    /// Stable display name (used by the trace exporters).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::TopLevel => "top_level",
            SpanKind::Future => "future",
            SpanKind::Continuation => "continuation",
            SpanKind::WaitTurn => "wait_turn",
            SpanKind::Validation => "validation",
            SpanKind::TopCommit => "top_commit",
            SpanKind::PoolHelp => "pool_help",
        }
    }

    /// Inverse of the `repr(u8)` discriminant, for ring-buffer decoding.
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(v as usize).copied()
    }
}

/// One closed lifecycle interval, reported after the fact (no begin/end
/// pairing for sinks to reassemble). Timestamps are [`obs_now_ns`] values;
/// the recording sink attaches the producing thread itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Which lifecycle phase this interval covers.
    pub kind: SpanKind,
    /// Raw id of the owning transaction tree (0 when not applicable).
    pub tree: u64,
    /// Raw id of the tree node the span belongs to (0 when not applicable).
    pub node: u64,
    /// Raw id of the node's parent (0 for roots / not applicable).
    pub parent: u64,
    /// Interval start, [`obs_now_ns`] clock.
    pub start_ns: u64,
    /// Interval end, [`obs_now_ns`] clock.
    pub end_ns: u64,
    /// Whether the phase succeeded (committed / validated).
    pub ok: bool,
}

/// Nanoseconds since the process-wide observability epoch (first call). All
/// span timestamps share this monotonic clock so cross-thread records line
/// up in exported traces.
pub fn obs_now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A compact process-unique id for the calling thread, assigned on first
/// use. Unlike `std::thread::ThreadId`'s unstable `Debug` output, these are
/// small, dense, and stable for the thread's lifetime — suitable for trace
/// labels and exported `tid` fields.
pub fn stable_thread_id() -> u64 {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: Cell<u64> = const { Cell::new(0) };
    }
    ID.with(|slot| {
        let mut id = slot.get();
        if id == 0 {
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(id);
        }
        id
    })
}

/// Receiver of engine instrumentation. The default implementations make a
/// no-op sink, so policies and tests implement only what they observe.
pub trait EventSink: Send + Sync {
    /// Reports one event.
    fn event(&self, _event: Event) {}

    /// Whether [`EventSink::trace`] wants input — callers skip formatting
    /// entirely when this is `false` (the hot-path guard the old
    /// `rtf_trace!` macro provided).
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Receives one pre-formatted diagnostic line.
    fn trace(&self, _msg: fmt::Arguments<'_>) {}

    /// Whether [`EventSink::span`] wants input — callers skip clock reads
    /// and record assembly entirely when this is `false`, keeping the
    /// default path free of `Instant` syscalls.
    fn spans_enabled(&self) -> bool {
        false
    }

    /// Receives one completed lifecycle span.
    fn span(&self, _rec: SpanRec) {}
}

/// RAII publication of one blocking wait for the live wait-graph inspector:
/// emits [`Event::WaitBegin`] on construction and [`Event::WaitEnd`] on drop.
/// Construct and drop on the waiting thread — the receiving sink attributes
/// the pair to [`stable_thread_id`]. Guards may nest (a waiter that helps
/// the pool and blocks again publishes an inner site); interested sinks keep
/// a per-thread stack.
pub struct WaitSiteGuard<'a> {
    sink: &'a dyn EventSink,
}

impl<'a> WaitSiteGuard<'a> {
    /// Publishes entry into a wait site through `sink`. `(a, b)` follow the
    /// kind-specific coordinate conventions of [`Event::WaitBegin`].
    pub fn enter(
        sink: &'a dyn EventSink,
        kind: StallKind,
        tree: u64,
        a: u64,
        b: u64,
    ) -> WaitSiteGuard<'a> {
        sink.event(Event::WaitBegin { kind, tree, a, b });
        WaitSiteGuard { sink }
    }
}

impl Drop for WaitSiteGuard<'_> {
    fn drop(&mut self) {
        self.sink.event(Event::WaitEnd);
    }
}

/// Discards everything (the default sink).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {}

/// Maps events onto the shared [`TmStats`] counters.
pub struct StatsSink {
    stats: Arc<TmStats>,
}

impl StatsSink {
    /// A sink bumping `stats`.
    pub fn new(stats: Arc<TmStats>) -> StatsSink {
        StatsSink { stats }
    }
}

impl EventSink for StatsSink {
    fn event(&self, event: Event) {
        let s = &self.stats;
        match event {
            Event::TopCommit => s.top_commits(),
            Event::TopRoCommit => s.top_ro_commits(),
            Event::TopValidationAbort => s.top_validation_aborts(),
            Event::InterTreeAbort => s.inter_tree_aborts(),
            Event::FallbackRun => s.fallback_runs(),
            Event::SubCommit => s.sub_commits(),
            Event::SubValidationAbort => s.sub_validation_aborts(),
            Event::ContinuationRestart => s.continuation_restarts(),
            Event::FutureSubmitted => s.futures_submitted(),
            Event::RoValidationSkip => s.ro_validation_skips(),
            Event::RoValidationTaken => s.ro_validation_taken(),
            Event::HelpedWriteback => s.helped_writebacks(),
            Event::VersionsGced(n) => s.add_versions_gced(n),
            Event::WaitTurnNs(ns) => s.add_wait_turn_ns(ns),
            Event::ValidationNs(ns) => s.add_validation_ns(ns),
            Event::PoolTaskHelped => s.pool_helped_tasks(),
            Event::PoolFenceDeferrals(n) => s.add_pool_fence_deferrals(n),
            Event::ReadPathBatch { fast, slow } => {
                if fast > 0 {
                    s.add_read_fast(fast);
                }
                if slow > 0 {
                    s.add_read_slow(slow);
                }
            }
            Event::StallDetected { .. } => s.stalls_detected(),
            Event::StallAbort => s.stall_aborts(),
            Event::PoolTaskPanicked => s.pool_task_panics(),
            Event::FuturePanicked => s.future_panics(),
            Event::RetryExhausted => s.retries_exhausted(),
            Event::OrecSnapshotRetries(n) => s.add_orec_snapshot_retries(n),
            Event::TicketIssued => s.tickets_issued(),
            Event::TicketCommit { .. } => s.ordered_commits(),
            Event::TicketAbandoned { .. } => s.tickets_abandoned(),
            Event::TicketWaitNs(ns) => s.add_ticket_wait_ns(ns),
            Event::TicketSpuriousWakes(n) => s.add_ticket_spurious_wakes(n),
            Event::WakerRegistered => s.wakers_registered(),
            Event::WakerFired => s.wakers_fired(),
            Event::AsyncPoll => s.async_polls(),
            Event::AsyncSpuriousPoll => s.async_spurious_polls(),
            // Timing and attribution detail beyond the flat counters is the
            // observability layer's business (see `rtf-txobs`), as is the
            // live wait-site publication.
            Event::TopCommitNs(_)
            | Event::FutureLifetimeNs(_)
            | Event::Conflict { .. }
            | Event::WaitBegin { .. }
            | Event::WaitEnd => {}
        }
    }
}

/// Prints diagnostic lines to stderr. Whether the sink is live is decided at
/// construction — [`TraceSink::from_env`] consults `RTF_TRACE` (any value
/// other than `0` enables it), [`TraceSink::new`] takes the flag directly so
/// tests can exercise tracing without mutating process env. Events are
/// ignored — tracing call sites describe themselves.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceSink {
    enabled: bool,
}

impl TraceSink {
    /// A sink with tracing explicitly switched on or off.
    pub fn new(enabled: bool) -> TraceSink {
        TraceSink { enabled }
    }

    /// A sink honouring the `RTF_TRACE` environment variable.
    pub fn from_env() -> TraceSink {
        TraceSink::new(TraceSink::env_enabled())
    }

    /// Whether `RTF_TRACE` requests tracing (computed once per process).
    pub fn env_enabled() -> bool {
        static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *ENABLED.get_or_init(|| std::env::var("RTF_TRACE").is_ok_and(|v| v != "0"))
    }
}

impl EventSink for TraceSink {
    fn trace_enabled(&self) -> bool {
        self.enabled
    }

    fn trace(&self, msg: fmt::Arguments<'_>) {
        eprintln!("[rtf t{:02}] {}", stable_thread_id(), msg);
    }
}

/// Fans out to several sinks (e.g. stats + trace).
pub struct TeeSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl TeeSink {
    /// A sink forwarding to every sink in `sinks`.
    pub fn new(sinks: Vec<Arc<dyn EventSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl EventSink for TeeSink {
    fn event(&self, event: Event) {
        for s in &self.sinks {
            s.event(event);
        }
    }

    fn trace_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.trace_enabled())
    }

    fn trace(&self, msg: fmt::Arguments<'_>) {
        for s in &self.sinks {
            if s.trace_enabled() {
                s.trace(msg);
            }
        }
    }

    fn spans_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.spans_enabled())
    }

    fn span(&self, rec: SpanRec) {
        for s in &self.sinks {
            if s.spans_enabled() {
                s.span(rec);
            }
        }
    }
}

/// Emits a diagnostic line through a sink, formatting the message only when
/// the sink asks for traces (the successor of the old `rtf_trace!` macro,
/// whose `RTF_TRACE` behaviour now lives in [`TraceSink`]).
#[macro_export]
macro_rules! tx_trace {
    ($sink:expr, $($arg:tt)*) => {{
        // Method-call syntax so `$sink` may be a sink, a reference, or an
        // `Arc<dyn EventSink>` alike.
        if $sink.trace_enabled() {
            $sink.trace(format_args!($($arg)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn stats_sink_maps_events_to_counters() {
        let stats = Arc::new(TmStats::default());
        let sink = StatsSink::new(Arc::clone(&stats));
        sink.event(Event::TopCommit);
        sink.event(Event::TopCommit);
        sink.event(Event::SubValidationAbort);
        sink.event(Event::VersionsGced(7));
        sink.event(Event::WaitTurnNs(120));
        sink.event(Event::PoolTaskHelped);
        sink.event(Event::PoolFenceDeferrals(3));
        sink.event(Event::TicketIssued);
        sink.event(Event::TicketIssued);
        sink.event(Event::TicketCommit { lane: 0, seq: 0, tree: 9 });
        sink.event(Event::TicketAbandoned { lane: 0, seq: 1 });
        sink.event(Event::TicketWaitNs(40));
        sink.event(Event::TicketSpuriousWakes(5));
        sink.event(Event::WakerRegistered);
        sink.event(Event::WakerRegistered);
        sink.event(Event::WakerFired);
        sink.event(Event::AsyncPoll);
        sink.event(Event::AsyncPoll);
        sink.event(Event::AsyncPoll);
        // Detail-only events fall through without touching counters.
        sink.event(Event::TopCommitNs(999));
        sink.event(Event::FutureLifetimeNs(999));
        sink.event(Event::WaitBegin { kind: StallKind::TicketWait, tree: 1, a: 0, b: 5 });
        sink.event(Event::WaitEnd);
        let snap = stats.snapshot();
        assert_eq!(snap.top_commits, 2);
        assert_eq!(snap.sub_validation_aborts, 1);
        assert_eq!(snap.versions_gced, 7);
        assert_eq!(snap.wait_turn_ns, 120);
        assert_eq!(snap.pool_helped_tasks, 1);
        assert_eq!(snap.pool_fence_deferrals, 3);
        assert_eq!(snap.tickets_issued, 2);
        assert_eq!(snap.ordered_commits, 1);
        assert_eq!(snap.tickets_abandoned, 1);
        assert_eq!(snap.ticket_wait_ns, 40);
        assert_eq!(snap.ticket_spurious_wakes, 5);
        assert_eq!(snap.wakers_registered, 2);
        assert_eq!(snap.wakers_fired, 1);
        assert_eq!(snap.async_polls, 3);
    }

    #[test]
    fn wait_site_guard_pairs_begin_and_end_lifo() {
        struct Record(Mutex<Vec<Event>>);
        impl EventSink for Record {
            fn event(&self, e: Event) {
                self.0.lock().unwrap().push(e);
            }
        }
        let sink = Record(Mutex::new(Vec::new()));
        {
            let _outer = WaitSiteGuard::enter(&sink, StallKind::TicketWait, 7, 0, 42);
            let _inner = WaitSiteGuard::enter(&sink, StallKind::WaitTurn, 7, 3, 9);
        }
        let got = sink.0.into_inner().unwrap();
        assert_eq!(
            got,
            vec![
                Event::WaitBegin { kind: StallKind::TicketWait, tree: 7, a: 0, b: 42 },
                Event::WaitBegin { kind: StallKind::WaitTurn, tree: 7, a: 3, b: 9 },
                Event::WaitEnd,
                Event::WaitEnd,
            ]
        );
    }

    #[test]
    fn null_sink_ignores_everything() {
        let sink: Arc<dyn EventSink> = Arc::new(NullSink);
        sink.event(Event::TopCommit);
        assert!(!sink.trace_enabled());
        assert!(!sink.spans_enabled());
        tx_trace!(sink, "never formatted {}", 1);
    }

    #[test]
    fn tee_fans_out() {
        struct Counting(AtomicU64);
        impl EventSink for Counting {
            fn event(&self, _e: Event) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let a = Arc::new(Counting(AtomicU64::new(0)));
        let b = Arc::new(Counting(AtomicU64::new(0)));
        let tee = TeeSink::new(vec![a.clone() as Arc<dyn EventSink>, b.clone()]);
        tee.event(Event::SubCommit);
        tee.event(Event::SubCommit);
        assert_eq!(a.0.load(Ordering::Relaxed), 2);
        assert_eq!(b.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tee_forwards_spans_only_to_interested_sinks() {
        struct Spans(Mutex<Vec<SpanRec>>);
        impl EventSink for Spans {
            fn spans_enabled(&self) -> bool {
                true
            }
            fn span(&self, rec: SpanRec) {
                self.0.lock().unwrap().push(rec);
            }
        }
        let spans = Arc::new(Spans(Mutex::new(Vec::new())));
        let tee = TeeSink::new(vec![Arc::new(NullSink) as Arc<dyn EventSink>, spans.clone()]);
        assert!(tee.spans_enabled());
        let rec = SpanRec {
            kind: SpanKind::WaitTurn,
            tree: 1,
            node: 2,
            parent: 3,
            start_ns: 10,
            end_ns: 20,
            ok: true,
        };
        tee.span(rec);
        assert_eq!(*spans.0.lock().unwrap(), vec![rec]);
    }

    #[test]
    fn trace_sink_flag_is_injectable() {
        assert!(TraceSink::new(true).trace_enabled());
        assert!(!TraceSink::new(false).trace_enabled());
        assert!(!TraceSink::default().trace_enabled());
    }

    #[test]
    fn span_kind_round_trips_through_u8() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(SpanKind::from_u8(200), None);
    }

    #[test]
    fn stable_thread_ids_are_distinct_and_stable() {
        let here = stable_thread_id();
        assert_eq!(here, stable_thread_id());
        let there = std::thread::spawn(stable_thread_id).join().unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn obs_clock_is_monotonic() {
        let a = obs_now_ns();
        let b = obs_now_ns();
        assert!(b >= a);
    }
}
