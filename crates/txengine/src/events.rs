//! Engine instrumentation: a single [`EventSink`] seam instead of scattered
//! counter bumps and ad-hoc tracing.
//!
//! Every noteworthy runtime event — commits, aborts, helping, GC, time spent
//! waiting — is reported as an [`Event`] to a sink threaded through the
//! engine and its client crates. The default production wiring is a
//! [`StatsSink`] over the shared [`TmStats`] counters; the `RTF_TRACE`
//! diagnostic stream is just another sink ([`TraceSink`]), composed in via
//! [`TeeSink`] when enabled. Tests and benchmarks can substitute their own
//! sinks without touching the hot paths.

use std::fmt;
use std::sync::Arc;

use rtf_txbase::TmStats;

/// One observable runtime event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A top-level read-write transaction committed.
    TopCommit,
    /// A top-level read-only transaction committed (validation skipped).
    TopRoCommit,
    /// A top-level transaction failed commit-time validation.
    TopValidationAbort,
    /// A whole tree aborted on an inter-tree tentative-list conflict
    /// (`ownedByAnotherTree`).
    InterTreeAbort,
    /// A top-level re-execution ran in sequential fallback mode.
    FallbackRun,
    /// A sub-transaction (future or continuation) committed.
    SubCommit,
    /// A sub-transaction failed validation and re-executed (partial
    /// rollback).
    SubValidationAbort,
    /// An implicit continuation failed validation and restarted the whole
    /// top-level transaction (FCC substitution, DESIGN.md D1).
    ContinuationRestart,
    /// A transactional future was submitted.
    FutureSubmitted,
    /// A read-only sub-transaction skipped validation (§IV-E).
    RoValidationSkip,
    /// A read-only sub-transaction could not skip validation.
    RoValidationTaken,
    /// A commit record was written back by a helping thread.
    HelpedWriteback,
    /// Permanent versions trimmed by the version GC.
    VersionsGced(u64),
    /// Nanoseconds spent blocked in `waitTurn`.
    WaitTurnNs(u64),
    /// Nanoseconds spent in sub-transaction read-set validation.
    ValidationNs(u64),
    /// A blocked or idle thread ran a queued pool task inline.
    PoolTaskHelped,
    /// A helping attempt had to defer queued tasks its fence stack forbids.
    PoolFenceDeferrals(u64),
}

/// Receiver of engine instrumentation. The default implementations make a
/// no-op sink, so policies and tests implement only what they observe.
pub trait EventSink: Send + Sync {
    /// Reports one event.
    fn event(&self, _event: Event) {}

    /// Whether [`EventSink::trace`] wants input — callers skip formatting
    /// entirely when this is `false` (the hot-path guard the old
    /// `rtf_trace!` macro provided).
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Receives one pre-formatted diagnostic line.
    fn trace(&self, _msg: fmt::Arguments<'_>) {}
}

/// Discards everything (the default sink).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {}

/// Maps events onto the shared [`TmStats`] counters.
pub struct StatsSink {
    stats: Arc<TmStats>,
}

impl StatsSink {
    /// A sink bumping `stats`.
    pub fn new(stats: Arc<TmStats>) -> StatsSink {
        StatsSink { stats }
    }
}

impl EventSink for StatsSink {
    fn event(&self, event: Event) {
        let s = &self.stats;
        match event {
            Event::TopCommit => s.top_commits(),
            Event::TopRoCommit => s.top_ro_commits(),
            Event::TopValidationAbort => s.top_validation_aborts(),
            Event::InterTreeAbort => s.inter_tree_aborts(),
            Event::FallbackRun => s.fallback_runs(),
            Event::SubCommit => s.sub_commits(),
            Event::SubValidationAbort => s.sub_validation_aborts(),
            Event::ContinuationRestart => s.continuation_restarts(),
            Event::FutureSubmitted => s.futures_submitted(),
            Event::RoValidationSkip => s.ro_validation_skips(),
            Event::RoValidationTaken => s.ro_validation_taken(),
            Event::HelpedWriteback => s.helped_writebacks(),
            Event::VersionsGced(n) => s.add_versions_gced(n),
            Event::WaitTurnNs(ns) => s.add_wait_turn_ns(ns),
            Event::ValidationNs(ns) => s.add_validation_ns(ns),
            Event::PoolTaskHelped => s.pool_helped_tasks(),
            Event::PoolFenceDeferrals(n) => s.add_pool_fence_deferrals(n),
        }
    }
}

/// Prints diagnostic lines to stderr, gated on the `RTF_TRACE` environment
/// variable (any value other than `0` enables it). Events are ignored —
/// tracing call sites describe themselves.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceSink;

impl TraceSink {
    /// Whether `RTF_TRACE` requests tracing (computed once per process).
    pub fn env_enabled() -> bool {
        static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *ENABLED.get_or_init(|| std::env::var("RTF_TRACE").is_ok_and(|v| v != "0"))
    }
}

impl EventSink for TraceSink {
    fn trace_enabled(&self) -> bool {
        TraceSink::env_enabled()
    }

    fn trace(&self, msg: fmt::Arguments<'_>) {
        eprintln!("[rtf {:?}] {}", std::thread::current().id(), msg);
    }
}

/// Fans out to several sinks (e.g. stats + trace).
pub struct TeeSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl TeeSink {
    /// A sink forwarding to every sink in `sinks`.
    pub fn new(sinks: Vec<Arc<dyn EventSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl EventSink for TeeSink {
    fn event(&self, event: Event) {
        for s in &self.sinks {
            s.event(event);
        }
    }

    fn trace_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.trace_enabled())
    }

    fn trace(&self, msg: fmt::Arguments<'_>) {
        for s in &self.sinks {
            if s.trace_enabled() {
                s.trace(msg);
            }
        }
    }
}

/// Emits a diagnostic line through a sink, formatting the message only when
/// the sink asks for traces (the successor of the old `rtf_trace!` macro,
/// whose `RTF_TRACE` behaviour now lives in [`TraceSink`]).
#[macro_export]
macro_rules! tx_trace {
    ($sink:expr, $($arg:tt)*) => {{
        // Method-call syntax so `$sink` may be a sink, a reference, or an
        // `Arc<dyn EventSink>` alike.
        if $sink.trace_enabled() {
            $sink.trace(format_args!($($arg)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn stats_sink_maps_events_to_counters() {
        let stats = Arc::new(TmStats::default());
        let sink = StatsSink::new(Arc::clone(&stats));
        sink.event(Event::TopCommit);
        sink.event(Event::TopCommit);
        sink.event(Event::SubValidationAbort);
        sink.event(Event::VersionsGced(7));
        sink.event(Event::WaitTurnNs(120));
        sink.event(Event::PoolTaskHelped);
        sink.event(Event::PoolFenceDeferrals(3));
        let snap = stats.snapshot();
        assert_eq!(snap.top_commits, 2);
        assert_eq!(snap.sub_validation_aborts, 1);
        assert_eq!(snap.versions_gced, 7);
        assert_eq!(snap.wait_turn_ns, 120);
        assert_eq!(snap.pool_helped_tasks, 1);
        assert_eq!(snap.pool_fence_deferrals, 3);
    }

    #[test]
    fn null_sink_ignores_everything() {
        let sink: Arc<dyn EventSink> = Arc::new(NullSink);
        sink.event(Event::TopCommit);
        assert!(!sink.trace_enabled());
        tx_trace!(sink, "never formatted {}", 1);
    }

    #[test]
    fn tee_fans_out() {
        struct Counting(AtomicU64);
        impl EventSink for Counting {
            fn event(&self, _e: Event) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let a = Arc::new(Counting(AtomicU64::new(0)));
        let b = Arc::new(Counting(AtomicU64::new(0)));
        let tee = TeeSink::new(vec![a.clone() as Arc<dyn EventSink>, b.clone()]);
        tee.event(Event::SubCommit);
        tee.event(Event::SubCommit);
        assert_eq!(a.0.load(Ordering::Relaxed), 2);
        assert_eq!(b.0.load(Ordering::Relaxed), 2);
    }
}
