//! A work pool with *helping*, the execution substrate for transactional
//! futures.
//!
//! JTF schedules the bodies of transactional futures on an internal thread
//! pool (paper §III). A bounded pool interacting with blocking primitives
//! (`eval`, `waitTurn`) can deadlock: every worker may be blocked waiting for
//! a task that is still sitting in the queue. This pool therefore exposes
//! [`Pool::help_one`]: any thread about to block may first pull a pending
//! task and run it inline. The `rtf` runtime calls it from every wait loop,
//! which guarantees progress with any pool size ≥ 0 — even `workers = 0`
//! works, with all futures executed by helping threads (degenerating to lazy
//! inline execution).
//!
//! Helping has a soundness constraint that plain work stealing does not:
//! the helper's stack holds *suspended* work (the frames of whatever it was
//! doing when it blocked), and a helped task that transitively waits on
//! those frames can never be satisfied — the thread cannot unwind to them
//! while the helped task sits on top. Tasks therefore carry an optional
//! [`OrderTag`] (their position in a realm-local serialization order), every
//! blocking wait passes the position it is blocked *at*, and [`Pool::help_one`]
//! only runs tasks positioned strictly before every enclosing wait of the
//! same realm. Positions earlier in the order never wait on later ones, so
//! bounded helping can only nest earlier work under later work — the
//! inversion is impossible by construction. Fences compose across nested
//! helps through a thread-local stack.
//!
//! Design notes (following the Rayon/crossbeam idiom from the HPC guides):
//! a global [`Injector`] feeds per-worker [`Worker`] deques with batch
//! stealing; parked workers sleep on the stack-wide `WaitQueue` primitive
//! (`rtf_txbase::wait`), kept off the fast path by an atomic waiter count.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
// Robustness gate: production code must not unwrap or panic ad hoc —
// every residual site carries an audited `allow` naming its invariant
// (tests are exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::panic))]

use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use rtf_txbase::WaitQueue;
use rtf_txengine::{obs_now_ns, Event, EventSink, NullSink, SpanKind, SpanRec};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of work. Tasks are one-shot closures. Panics are *contained* at
/// the pool layer: every task runs under `catch_unwind`, a panicking task
/// neither kills its worker nor unwinds into a helping thread's suspended
/// transaction frames, and the panic is reported through the sink as
/// [`Event::PoolTaskPanicked`]. The payload is dropped here — submitters
/// that need to observe the failure must arrange their own signalling (the
/// `rtf` runtime does, converting an abandoned future task into a
/// structured cancellation via the task's own drop guard).
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// A task's position in the serialization order of its *realm* (one
/// transaction tree, in `rtf` terms). Positions are sequences compared
/// lexicographically with the prefix-first rule; tags from different realms
/// are unordered and never constrain each other.
#[derive(Clone, Debug)]
pub struct OrderTag {
    realm: u64,
    pos: Box<[u32]>,
}

impl OrderTag {
    /// Tags a position `pos` in `realm`'s serialization order.
    pub fn new(realm: u64, pos: &[u32]) -> Self {
        OrderTag { realm, pos: pos.into() }
    }

    /// The realm (transaction tree, in `rtf` terms) this tag orders within.
    pub fn realm(&self) -> u64 {
        self.realm
    }
}

/// One queued task plus its (optional) serialization position.
struct Job {
    tag: Option<OrderTag>,
    run: Task,
}

thread_local! {
    /// Serialization positions of every wait the current thread is blocked
    /// at, innermost last. A helped task must precede all of them within
    /// its realm (the innermost fence of a realm is always the strictest,
    /// so only that one is consulted).
    static FENCES: RefCell<Vec<OrderTag>> = const { RefCell::new(Vec::new()) };
}

/// Whether the current thread's fence stack permits running a task tagged
/// `tag`. Untagged tasks and tasks from unfenced realms are always allowed.
fn fences_allow(tag: &Option<OrderTag>) -> bool {
    let Some(tag) = tag else { return true };
    FENCES.with(|f| match f.borrow().iter().rev().find(|fence| fence.realm == tag.realm) {
        Some(fence) => tag.pos < fence.pos,
        None => true,
    })
}

/// RAII frame pushing a fence for the duration of one `help_one` call (the
/// task runs with the fence in place, so its own nested helps respect it).
struct FenceGuard {
    pushed: bool,
}

impl FenceGuard {
    fn push(bound: Option<&OrderTag>) -> Self {
        match bound {
            Some(b) => {
                FENCES.with(|f| f.borrow_mut().push(b.clone()));
                FenceGuard { pushed: true }
            }
            None => FenceGuard { pushed: false },
        }
    }
}

impl Drop for FenceGuard {
    fn drop(&mut self) {
        if self.pushed {
            FENCES.with(|f| {
                f.borrow_mut().pop();
            });
        }
    }
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    /// Idle workers park here (epoch-token protocol, see
    /// `rtf_txbase::wait`); `has_waiters` keeps the spawn path lock-free
    /// when every worker is busy.
    idle: WaitQueue,
    pending: AtomicUsize,
    shutdown: AtomicBool,
    sink: Arc<dyn EventSink>,
}

/// Work pool handle. Cloning is cheap; the pool shuts down when the last
/// handle is dropped and all workers parked.
#[derive(Clone)]
pub struct Pool {
    shared: Arc<Shared>,
}

/// Owns the worker threads; dropping it initiates shutdown and joins them.
///
/// # Queued-task fate on drop
///
/// Workers only observe the shutdown flag when the queues are empty, so with
/// `workers > 0` every task enqueued *before* the drop is still executed
/// before the workers exit (tasks enqueued concurrently with the drop may
/// race the last worker's exit). With `workers = 0` nothing drains the
/// queue: the remaining task closures are **dropped, unrun**, when the last
/// [`Pool`] handle goes away — their destructors run, which is what lets a
/// submitter observe abandonment (the `rtf` runtime cancels a future's
/// handle from its task's drop guard). Callers needing a hard guarantee
/// drain via [`Pool::help_one`] before dropping, as the tests do.
pub struct PoolRunner {
    pool: Pool,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Builds a pool with `workers` background threads (0 is allowed: all
    /// tasks then run via [`Pool::help_one`] on helping threads).
    pub fn start(workers: usize) -> PoolRunner {
        Self::start_with_sink(workers, Arc::new(NullSink))
    }

    /// Like [`Pool::start`], but reporting helping/fence activity through
    /// `sink` ([`Event::PoolTaskHelped`], [`Event::PoolFenceDeferrals`]).
    pub fn start_with_sink(workers: usize, sink: Arc<dyn EventSink>) -> PoolRunner {
        let worker_deques: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers = worker_deques.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            idle: WaitQueue::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sink,
        });
        let pool = Pool { shared: Arc::clone(&shared) };
        let handles = worker_deques
            .into_iter()
            .enumerate()
            .map(|(idx, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rtf-worker-{idx}"))
                    .spawn(move || worker_loop(shared, local))
                    .expect("failed to spawn rtf worker thread")
            })
            .collect();
        PoolRunner { pool, handles }
    }

    /// Enqueues a task for asynchronous execution.
    pub fn spawn(&self, task: Task) {
        self.push_job(Job { tag: None, run: task });
    }

    /// Enqueues a task carrying its serialization position, so helping
    /// threads can tell whether running it inline is safe (see the module
    /// docs on the helping inversion).
    pub fn spawn_ordered(&self, tag: OrderTag, task: Task) {
        self.push_job(Job { tag: Some(tag), run: task });
    }

    fn push_job(&self, job: Job) {
        self.shared.pending.fetch_add(1, Ordering::Release);
        self.shared.injector.push(job);
        // Wake one parked worker, if any. The waiter check keeps the
        // common (all-workers-busy) path lock-free; the residual
        // probe-then-park race is bounded by the workers' park timeout.
        if self.shared.idle.has_waiters() {
            self.shared.idle.notify_one();
        }
    }

    /// Runs one pending task inline, if any. Returns `true` when a task was
    /// executed. Called by threads about to block on a condition that some
    /// queued task may be needed to satisfy.
    ///
    /// `bound` is the serialization position the caller is blocked at (if
    /// its realm orders tasks): only tasks positioned strictly before it —
    /// and before every enclosing wait on this thread — are run. Tasks the
    /// fence forbids are put back; `false` means nothing runnable was found,
    /// and the caller should park briefly rather than spin.
    pub fn help_one(&self, bound: Option<&OrderTag>) -> bool {
        let _fence = FenceGuard::push(bound);
        let shared = &self.shared;
        // Scan at most the currently queued jobs once, deferring the ones
        // the fence stack forbids and running the first permitted one. The
        // deferred jobs are re-injected (reordering is fine: queue position
        // carries no semantics — tasks re-queue themselves all the time).
        let mut deferred: Vec<Job> = Vec::new();
        let mut chosen: Option<Job> = None;
        let limit = shared.pending.load(Ordering::Acquire);
        for _ in 0..=limit {
            match find_task(shared, None) {
                Some(job) if fences_allow(&job.tag) => {
                    chosen = Some(job);
                    break;
                }
                Some(job) => deferred.push(job),
                None => break,
            }
        }
        if !deferred.is_empty() {
            shared.sink.event(Event::PoolFenceDeferrals(deferred.len() as u64));
        }
        for job in deferred {
            shared.injector.push(job);
        }
        match chosen {
            Some(job) => {
                shared.pending.fetch_sub(1, Ordering::Release);
                let realm = job.tag.as_ref().map(|t| t.realm).unwrap_or(0);
                let t0 = if shared.sink.spans_enabled() { obs_now_ns() } else { 0 };
                // Containment matters doubly here: the helper's stack holds
                // suspended transaction frames, and a helped task's panic
                // unwinding into them would tear down an innocent bystander.
                let ok = run_contained(shared, job.run);
                if t0 != 0 {
                    shared.sink.span(SpanRec {
                        kind: SpanKind::PoolHelp,
                        tree: realm,
                        node: 0,
                        parent: 0,
                        start_ns: t0,
                        end_ns: obs_now_ns(),
                        ok,
                    });
                }
                shared.sink.event(Event::PoolTaskHelped);
                true
            }
            None => false,
        }
    }

    /// Number of tasks submitted but not yet started (approximate).
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }
}

impl PoolRunner {
    /// The shareable pool handle.
    pub fn pool(&self) -> Pool {
        self.pool.clone()
    }
}

impl Drop for PoolRunner {
    fn drop(&mut self) {
        self.pool.shared.shutdown.store(true, Ordering::Release);
        self.pool.shared.idle.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn find_task(shared: &Shared, local: Option<&Worker<Job>>) -> Option<Job> {
    if let Some(local) = local {
        if let Some(t) = local.pop() {
            return Some(t);
        }
    }
    // Repeat while the injector/stealers report transient contention.
    loop {
        let mut retry = false;
        match local {
            Some(local) => match shared.injector.steal_batch_and_pop(local) {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            },
            None => match shared.injector.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            },
        }
        for s in &shared.stealers {
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Runs one task with panic containment: an unwinding task is caught, its
/// payload dropped, and the panic reported as [`Event::PoolTaskPanicked`].
/// Returns `true` when the task completed normally.
///
/// The `taskpool.task.run` failpoint fires *inside* the containment scope,
/// so an injected panic exercises the same path as a real task panic —
/// including dropping the never-run closure, which is how abandoned
/// transactional futures get cancelled instead of hanging their tree.
fn run_contained(shared: &Shared, task: Task) -> bool {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        rtf_txfault::fail_point!("taskpool.task.run");
        task();
    }));
    if outcome.is_err() {
        shared.sink.event(Event::PoolTaskPanicked);
    }
    outcome.is_ok()
}

/// Backstop for the (should-be-unreachable) case of a panic escaping
/// [`run_contained`] — e.g. a panicking sink: if the worker thread unwinds,
/// spawn a detached replacement so the pool keeps its capacity. The
/// replacement exits promptly on shutdown like any worker; its local deque
/// is not registered for stealing, which only costs steal opportunities.
struct WorkerRespawn {
    shared: Arc<Shared>,
}

impl Drop for WorkerRespawn {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.shared.shutdown.load(Ordering::Acquire) {
            let shared = Arc::clone(&self.shared);
            let _ = std::thread::Builder::new()
                .name("rtf-worker-respawn".into())
                .spawn(move || worker_loop(shared, Worker::new_fifo()));
        }
    }
}

fn worker_loop(shared: Arc<Shared>, local: Worker<Job>) {
    let _respawn = WorkerRespawn { shared: Arc::clone(&shared) };
    loop {
        // Token before the queue probe: a push (notify) landing between the
        // probe and the park advances the queue epoch, so the park returns
        // immediately instead of sleeping through the wakeup.
        let token = shared.idle.epoch();
        // Workers run any task unconditionally: an idle worker's stack holds
        // no suspended frames, so no fence applies.
        if let Some(job) = find_task(&shared, Some(&local)) {
            shared.pending.fetch_sub(1, Ordering::Release);
            run_contained(&shared, job.run);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.pending.load(Ordering::Acquire) > 0 {
            continue;
        }
        // A timeout bounds the cost of the one unguarded race (a pusher
        // probing `has_waiters` before this entry appears) to a few ms.
        let _ = shared.idle.park(token, 0, Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn runs_spawned_tasks() {
        let runner = Pool::start(2);
        let pool = runner.pool();
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.spawn(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..100 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn help_one_executes_with_zero_workers() {
        let runner = Pool::start(0);
        let pool = runner.pool();
        let flag = Arc::new(AtomicBool::new(false));
        {
            let flag = Arc::clone(&flag);
            pool.spawn(Box::new(move || flag.store(true, Ordering::Relaxed)));
        }
        assert_eq!(pool.pending(), 1);
        assert!(pool.help_one(None));
        assert!(flag.load(Ordering::Relaxed));
        assert!(!pool.help_one(None));
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn helping_drains_backlog_alongside_workers() {
        let runner = Pool::start(1);
        let pool = runner.pool();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..500 {
            let counter = Arc::clone(&counter);
            pool.spawn(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        while counter.load(Ordering::Relaxed) < 500 {
            pool.help_one(None);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn shutdown_joins_workers() {
        let runner = Pool::start(3);
        let pool = runner.pool();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.spawn(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // Drain before dropping: drop only guarantees joining workers, not
        // that queued tasks ran.
        while counter.load(Ordering::Relaxed) < 50 {
            pool.help_one(None);
            std::hint::spin_loop();
        }
        drop(runner);
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn panicking_task_neither_kills_worker_nor_loses_queued_tasks() {
        let runner = Pool::start(1);
        let pool = runner.pool();
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        // A burst of panicking tasks interleaved with real work: the single
        // worker must survive all of them and still run every normal task.
        for i in 0..40 {
            if i % 4 == 0 {
                pool.spawn(Box::new(|| panic!("injected task panic")));
            }
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.spawn(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..40 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn help_one_contains_panics_instead_of_unwinding_the_helper() {
        let runner = Pool::start(0);
        let pool = runner.pool();
        pool.spawn(Box::new(|| panic!("injected task panic")));
        // The panic must not unwind into this (helping) thread.
        assert!(pool.help_one(None));
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn dropped_queued_tasks_run_their_destructors() {
        // With zero workers, tasks still queued at shutdown are dropped
        // unrun — but their captures are destroyed, so submitters can
        // observe the abandonment.
        struct SetOnDrop(Arc<AtomicBool>, Arc<AtomicBool>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.1.store(true, Ordering::Release);
            }
        }
        let ran = Arc::new(AtomicBool::new(false));
        let dropped = Arc::new(AtomicBool::new(false));
        let runner = Pool::start(0);
        let pool = runner.pool();
        {
            let guard = SetOnDrop(Arc::clone(&ran), Arc::clone(&dropped));
            pool.spawn(Box::new(move || guard.0.store(true, Ordering::Release)));
        }
        drop(runner);
        drop(pool);
        assert!(!ran.load(Ordering::Acquire), "no worker should have run the task");
        assert!(dropped.load(Ordering::Acquire), "queued closure must be destroyed");
    }

    #[test]
    fn tasks_spawning_tasks() {
        let runner = Pool::start(2);
        let pool = runner.pool();
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..10 {
            let pool2 = pool.clone();
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.spawn(Box::new(move || {
                let counter = Arc::clone(&counter);
                let tx = tx.clone();
                pool2.spawn(Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    tx.send(()).unwrap();
                }));
            }));
        }
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
