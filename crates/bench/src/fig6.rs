//! Fig 6: Vacation (a–c) and TPC-C (d–f) — throughput, mean transaction
//! latency and abort rate as a function of the total thread count, for
//! thread-allocation strategies with 0 / 1 / 3 / 5 / 7 transactional
//! futures per top-level transaction.

use rtf_benchkit::measure::fmt_f64;
use rtf_benchkit::{run_clients, Table};
use rtf_tpcc::workload::run_op;
use rtf_tpcc::{TpccConfig, TpccExecutor, TpccScale};
use rtf_vacation::{Client, VacationConfig};

use crate::cli::Args;

/// Which application to sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// STAMP Vacation (Fig 6a–c).
    Vacation,
    /// TPC-C (Fig 6d–f).
    Tpcc,
}

/// One measured cell of the Fig 6 sweep.
pub struct Fig6Cell {
    /// Total threads (clients + per-transaction parallelism).
    pub threads: usize,
    /// Futures per top-level transaction.
    pub futures: usize,
    /// Committed operations per second.
    pub throughput: f64,
    /// Mean latency, ms (includes retries).
    pub mean_latency_ms: f64,
    /// Top-level abort rate.
    pub abort_rate: f64,
}

/// The paper's strategy set.
pub const FUTURE_STRATEGIES: [usize; 5] = [0, 1, 3, 5, 7];

/// Thread counts to sweep for a budget.
pub fn thread_counts(budget: usize, quick: bool) -> Vec<usize> {
    let mut v = vec![1, 2, 4, 8, 16, 24, 32, 48];
    v.retain(|&t| t <= budget);
    if quick {
        v.retain(|&t| t == 2 || t == budget.min(8) || t == 4);
    }
    if v.is_empty() {
        v.push(budget.max(1));
    }
    v
}

/// Runs the sweep for `app` and returns every measured cell.
pub fn sweep(app: App, args: &Args) -> Vec<Fig6Cell> {
    let budget = args.thread_budget();
    let mut cells = Vec::new();
    for threads in thread_counts(budget, args.quick) {
        for &futures in &FUTURE_STRATEGIES {
            // A strategy with f futures needs f+1 threads per client.
            if futures + 1 > threads && !(futures == 0 && threads >= 1) {
                continue;
            }
            let clients = (threads / (futures + 1)).max(1);
            let workers = threads.saturating_sub(clients);
            let cell = run_one(app, args, threads, clients, workers, futures);
            cells.push(cell);
        }
    }
    cells
}

fn run_one(
    app: App,
    args: &Args,
    threads: usize,
    clients: usize,
    workers: usize,
    futures: usize,
) -> Fig6Cell {
    let tm = args.tm().workers(workers.max(1)).build();
    let before = tm.stats();
    let m = match app {
        App::Vacation => {
            let cfg = VacationConfig {
                relations: if args.quick { 512 } else { 4096 },
                queries_per_tx: if args.quick { 24 } else { 64 },
                ..VacationConfig::default()
            };
            let ops = args.ops.unwrap_or(if args.quick { 20 } else { 120 });
            let w = cfg.build(&tm, ops * clients);
            let client = Client::new(tm.clone(), w.manager.clone(), futures);
            let ops_ref = &w.ops;
            run_clients(clients, ops, |c, i| {
                client.execute(&ops_ref[c * ops + i]);
            })
        }
        App::Tpcc => {
            let cfg = TpccConfig {
                scale: TpccScale {
                    warehouses: 1, // single warehouse: the paper's
                    // inherently non-scalable, contention-heavy workload
                    customers_per_district: if args.quick { 40 } else { 120 },
                    items: if args.quick { 256 } else { 1024 },
                    seed: 0x79cc,
                },
                ..TpccConfig::default()
            };
            let ops = args.ops.unwrap_or(if args.quick { 20 } else { 120 });
            let w = cfg.build(&tm, ops * clients);
            let ex = TpccExecutor::new(tm.clone(), w.db.clone(), futures);
            let ops_ref = &w.ops;
            run_clients(clients, ops, |c, i| {
                run_op(&ex, &ops_ref[c * ops + i]);
            })
        }
    };
    let delta = tm.stats().since(&before);
    Fig6Cell {
        threads,
        futures,
        throughput: m.throughput(),
        mean_latency_ms: m.latency.mean_ms(),
        abort_rate: delta.top_abort_rate(),
    }
}

/// Builds the three paper tables (throughput, latency, abort rate).
pub fn tables(app: App, cells: &[Fig6Cell]) -> Vec<Table> {
    let (name, figs) = match app {
        App::Vacation => ("Vacation", ["6a", "6b", "6c"]),
        App::Tpcc => ("TPC-C", ["6d", "6e", "6f"]),
    };
    let mut threads: Vec<usize> = cells.iter().map(|c| c.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    let header: Vec<String> = std::iter::once("threads".into())
        .chain(FUTURE_STRATEGIES.iter().map(|f| {
            if *f == 0 {
                "baseline".to_string()
            } else {
                format!("{f} futures")
            }
        }))
        .collect();
    let headers: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    type Metric = Box<dyn Fn(&Fig6Cell) -> String>;
    let metrics: [(&str, Metric); 3] = [
        ("throughput (txs/s)", Box::new(|c: &Fig6Cell| fmt_f64(c.throughput))),
        ("mean latency (ms, incl. retries)", Box::new(|c: &Fig6Cell| fmt_f64(c.mean_latency_ms))),
        ("top-level abort rate", Box::new(|c: &Fig6Cell| fmt_f64(c.abort_rate))),
    ];

    metrics
        .iter()
        .zip(figs)
        .map(|((metric_name, metric), fig)| {
            let mut t = Table::new(format!("Fig {fig} — {name}: {metric_name}"), &headers);
            for &th in &threads {
                let mut row = vec![th.to_string()];
                for &f in &FUTURE_STRATEGIES {
                    match cells.iter().find(|c| c.threads == th && c.futures == f) {
                        Some(c) => row.push(metric(c)),
                        None => row.push("-".into()),
                    }
                }
                t.row(row);
            }
            t
        })
        .collect()
}
