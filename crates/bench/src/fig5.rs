//! The synthetic-benchmark experiments: Fig 5a (read-only overhead),
//! Fig 5b (contended throughput of `i*j` allocations), Fig 5c (latency and
//! abort behaviour of the same runs).

use rtf_benchkit::measure::fmt_f64;
use rtf_benchkit::{run_clients, SyntheticArray, SyntheticConfig, Table};
use rtf_plainfut::PlainExecutor;

use crate::cli::Args;

/// Parameter grid of Fig 5a.
pub struct Fig5aGrid {
    /// Transaction lengths (reads per transaction).
    pub tx_lens: Vec<usize>,
    /// CPU iterations between accesses.
    pub iters: Vec<u32>,
    /// Futures per transaction (paper: 15, i.e. 16-way).
    pub futures: usize,
    /// Concurrent top-level transactions (paper: 2).
    pub clients: usize,
}

impl Fig5aGrid {
    /// Paper-shaped grid, scaled by `--quick`.
    pub fn new(args: &Args) -> Fig5aGrid {
        if args.quick {
            Fig5aGrid {
                tx_lens: vec![10, 100, 1000],
                iters: vec![0, 100, 1000],
                futures: 3,
                clients: 2,
            }
        } else {
            Fig5aGrid {
                tx_lens: vec![10, 100, 1_000, 10_000, 100_000],
                iters: vec![0, 10, 100, 1_000, 10_000],
                futures: 15,
                clients: 2,
            }
        }
    }
}

/// Runs Fig 5a and returns the two tables (JTF and plain futures),
/// throughput normalized to the 2-thread no-future baseline.
pub fn fig5a(args: &Args) -> Vec<Table> {
    let grid = Fig5aGrid::new(args);
    let cfg = SyntheticConfig {
        array_size: args.array_size.unwrap_or(if args.quick { 1 << 14 } else { 1 << 18 }),
        tx_len: 0, // set per cell
        iters_between: 0,
        ..SyntheticConfig::default()
    };
    // One array for the whole grid: the workload never writes.
    let data = SyntheticArray::new(SyntheticConfig { tx_len: 1, ..cfg });
    let tm = args.tm().workers(grid.clients * grid.futures).build();
    let plain = PlainExecutor::new(grid.clients * grid.futures);

    let header: Vec<String> = std::iter::once("tx_len".to_string())
        .chain(grid.iters.iter().map(|i| format!("iter={i}")))
        .collect();
    let headers: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t_jtf = Table::new(
        format!(
            "Fig 5a — JTF transactional futures, normalized throughput ({}x{} vs {} plain threads)",
            grid.clients,
            grid.futures + 1,
            grid.clients
        ),
        &headers,
    );
    let mut t_plain =
        Table::new("Fig 5a — plain (non-transactional) futures, normalized throughput", &headers);
    let mut t_ratio = Table::new(
        "Fig 5a — JTF / plain-future throughput ratio (isolates the transactional \
machinery's cost on top of plain futures; cf. the paper's <1% overhead claim)",
        &headers,
    );

    for &tx_len in &grid.tx_lens {
        let ops = args.ops.unwrap_or_else(|| (200_000 / tx_len).clamp(3, 300));
        let mut row_jtf = vec![tx_len.to_string()];
        let mut row_plain = vec![tx_len.to_string()];
        let mut row_ratio = vec![tx_len.to_string()];
        for &iter in &grid.iters {
            let shaped = shaped(&data, cfg, tx_len, iter);
            // Baseline: `clients` threads, no futures.
            let base = run_clients(grid.clients, ops, |c, i| {
                shaped.run_read_only(&tm, 0, (c * ops + i) as u64);
            })
            .throughput();
            let jtf = run_clients(grid.clients, ops, |c, i| {
                shaped.run_read_only(&tm, grid.futures, (c * ops + i) as u64);
            })
            .throughput();
            let pf = run_clients(grid.clients, ops, |c, i| {
                shaped.run_read_only_plain(&plain, grid.futures, (c * ops + i) as u64);
            })
            .throughput();
            row_jtf.push(fmt_f64(jtf / base));
            row_plain.push(fmt_f64(pf / base));
            row_ratio.push(fmt_f64(jtf / pf));
        }
        t_jtf.row(row_jtf);
        t_plain.row(row_plain);
        t_ratio.row(row_ratio);
    }
    vec![t_jtf, t_plain, t_ratio]
}

/// Re-shapes the shared array workload without reallocating the data.
fn shaped(
    data: &SyntheticArray,
    mut cfg: SyntheticConfig,
    tx_len: usize,
    iter: u32,
) -> SyntheticArray {
    cfg.tx_len = tx_len;
    cfg.iters_between = iter;
    data.with_config(cfg)
}

/// One `i*j` allocation: `clients` top-level transactions, each using
/// `futures` transactional futures.
#[derive(Clone, Copy, Debug)]
pub struct Allocation {
    /// Concurrent top-level transactions (`i`).
    pub clients: usize,
    /// Futures per transaction (`j - 1`).
    pub futures: usize,
}

impl std::fmt::Display for Allocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}*{}", self.clients, self.futures + 1)
    }
}

/// The paper's allocations for a given thread budget: `T*1`, `T/2*2`,
/// `T/4*4`, …, `2*(T/2)`.
pub fn allocations(budget: usize) -> Vec<Allocation> {
    let mut out = Vec::new();
    let mut j = 1usize;
    while budget / j >= 2 || j == 1 {
        let clients = (budget / j).max(1);
        out.push(Allocation { clients, futures: j - 1 });
        j *= 2;
        if j > budget {
            break;
        }
    }
    out
}

/// Measurement of one contended-workload cell.
pub struct ContendedCell {
    /// The allocation measured.
    pub alloc: Allocation,
    /// Read-prefix length.
    pub prefix: usize,
    /// Ops/s.
    pub throughput: f64,
    /// Mean transaction latency (ms, includes retries).
    pub mean_latency_ms: f64,
    /// p99 latency (ms).
    pub p99_latency_ms: f64,
    /// Top-level abort rate.
    pub abort_rate: f64,
    /// Mean executions per committed transaction.
    pub execs_per_commit: f64,
}

/// Runs the contended synthetic workload (Fig 5b/5c): `iter`=1k, variable
/// read prefix, 10 writes over 20 hot spots.
pub fn contended_sweep(args: &Args) -> Vec<ContendedCell> {
    let budget = args.thread_budget();
    let prefixes: Vec<usize> =
        if args.quick { vec![10, 100] } else { vec![10, 100, 1_000, 10_000] };
    let iter = if args.quick { 100 } else { 1_000 };
    let array_size = args.array_size.unwrap_or(if args.quick { 1 << 14 } else { 1 << 18 });

    let mut cells = Vec::new();
    for &prefix in &prefixes {
        for alloc in allocations(budget) {
            let cfg = SyntheticConfig {
                array_size,
                tx_len: prefix,
                iters_between: iter,
                hot_spots: 20,
                hot_writes: 10,
            };
            // Fresh TM and data per cell: contended runs mutate hot spots.
            let data = SyntheticArray::new(cfg);
            let workers = budget.saturating_sub(alloc.clients).max(1);
            let tm = args.tm().workers(workers).build();
            let ops = args.ops.unwrap_or_else(|| (20_000 / prefix.max(10)).clamp(5, 200));
            let before = tm.stats();
            let m = run_clients(alloc.clients, ops, |c, i| {
                data.run_contended(&tm, alloc.futures, (c * ops + i) as u64);
            });
            let delta = tm.stats().since(&before);
            cells.push(ContendedCell {
                alloc,
                prefix,
                throughput: m.throughput(),
                mean_latency_ms: m.latency.mean_ms(),
                p99_latency_ms: m.latency.p99_ns as f64 / 1e6,
                abort_rate: delta.top_abort_rate(),
                execs_per_commit: delta.executions_per_commit(),
            });
        }
    }
    cells
}

/// Fig 5b: normalized throughput table (baseline = `T*1`).
pub fn fig5b_table(cells: &[ContendedCell], budget: usize) -> Table {
    build_alloc_table(
        cells,
        budget,
        &format!("Fig 5b — contended synthetic: throughput normalized to {budget}*1"),
        |cell, base| fmt_f64(cell.throughput / base.throughput),
    )
}

/// Fig 5c: mean latency (ms) and abort behaviour tables.
pub fn fig5c_tables(cells: &[ContendedCell], budget: usize) -> Vec<Table> {
    vec![
        build_alloc_table(
            cells,
            budget,
            "Fig 5c — contended synthetic: mean transaction latency, ms (includes retries)",
            |cell, _| fmt_f64(cell.mean_latency_ms),
        ),
        build_alloc_table(
            cells,
            budget,
            "Fig 5c — contended synthetic: latency reduction vs baseline (x)",
            |cell, base| fmt_f64(base.mean_latency_ms / cell.mean_latency_ms),
        ),
        build_alloc_table(
            cells,
            budget,
            "Fig 5c — contended synthetic: executions per committed transaction",
            |cell, _| fmt_f64(cell.execs_per_commit),
        ),
        build_alloc_table(
            cells,
            budget,
            "Fig 5c — contended synthetic: top-level abort rate",
            |cell, _| fmt_f64(cell.abort_rate),
        ),
    ]
}

fn build_alloc_table(
    cells: &[ContendedCell],
    budget: usize,
    title: &str,
    metric: impl Fn(&ContendedCell, &ContendedCell) -> String,
) -> Table {
    let allocs = allocations(budget);
    let header: Vec<String> =
        std::iter::once("prefix".to_string()).chain(allocs.iter().map(|a| a.to_string())).collect();
    let headers: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &headers);
    let mut prefixes: Vec<usize> = cells.iter().map(|c| c.prefix).collect();
    prefixes.sort_unstable();
    prefixes.dedup();
    for p in prefixes {
        let base = cells
            .iter()
            .find(|c| c.prefix == p && c.alloc.futures == 0)
            .expect("baseline allocation present");
        let mut row = vec![p.to_string()];
        for a in &allocs {
            let cell = cells
                .iter()
                .find(|c| {
                    c.prefix == p && c.alloc.clients == a.clients && c.alloc.futures == a.futures
                })
                .expect("cell present");
            row.push(metric(cell, base));
        }
        t.row(row);
    }
    t
}
