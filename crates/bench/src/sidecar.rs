//! Metrics sidecars: every figure binary attaches one [`TxObs`] to all the
//! TMs its sweep builds and, when `--csv DIR` is given, writes
//! `<DIR>/<figure>.metrics.json` next to the figure's CSVs — the raw
//! material (histograms, abort hotspots, counters) behind each table.

use std::path::Path;
use std::sync::Arc;

use rtf::{ObsConfig, TxObs};

use crate::cli::Args;

/// One observer shared by every TM a figure binary builds.
pub struct MetricsSidecar {
    obs: Arc<TxObs>,
    figure: String,
}

impl MetricsSidecar {
    /// Creates the sidecar observer and attaches it to `args` so every
    /// `args.tm()` builder feeds it. Spans stay off: the sidecar wants
    /// aggregates, and the sweeps build hundreds of short-lived TMs.
    pub fn install(args: &mut Args, figure: &str) -> MetricsSidecar {
        let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
        args.obs = Some(Arc::clone(&obs));
        MetricsSidecar { obs, figure: figure.to_string() }
    }

    /// The shared observer.
    pub fn obs(&self) -> &Arc<TxObs> {
        &self.obs
    }

    /// Writes `<csv_dir>/<figure>.metrics.json` (when a CSV directory was
    /// requested) and prints a one-line summary either way.
    pub fn write(&self, csv_dir: Option<&Path>) {
        let snap = self.obs.metrics();
        let c = &snap.counters;
        eprintln!(
            "{}: {} commits, {} top-level aborts (rate {:.3}), commit p50/p99 {}/{} ns",
            self.figure,
            c.commits(),
            c.top_aborts(),
            c.top_abort_rate(),
            snap.commit.p50,
            snap.commit.p99,
        );
        let Some(dir) = csv_dir else { return };
        let path = dir.join(format!("{}.metrics.json", self.figure));
        let write = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, snap.to_json().pretty()));
        match write {
            Ok(()) => println!("(metrics sidecar written to {})\n", path.display()),
            Err(e) => eprintln!("metrics sidecar {} not written: {e}", path.display()),
        }
    }
}
