//! Metrics sidecars: every figure binary attaches one observer to all the
//! TMs its sweep builds and, when `--csv DIR` is given, writes
//! `<DIR>/<figure>.metrics.json` next to the figure's CSVs — the raw
//! material (histograms, abort hotspots, counters) behind each table.
//!
//! The implementation lives in [`rtf_benchkit::metrics_sidecar`] (shared
//! with the non-`Args` binaries); this wrapper only wires the observer into
//! [`Args`] so every `args.tm()` builder feeds it. Setting
//! `RTF_METRICS_STREAM` / `RTF_PROM_TEXT` / `RTF_PROM_ADDR` additionally
//! streams live snapshots while the sweep runs (see the benchkit docs).

use std::path::Path;
use std::sync::Arc;

use rtf::TxObs;

use crate::cli::Args;

/// One observer shared by every TM a figure binary builds. Thin wrapper
/// over [`rtf_benchkit::MetricsSidecar`] that attaches it to [`Args`].
pub struct MetricsSidecar {
    inner: rtf_benchkit::MetricsSidecar,
}

impl MetricsSidecar {
    /// Creates the sidecar observer and attaches it to `args` so every
    /// `args.tm()` builder feeds it.
    pub fn install(args: &mut Args, figure: &str) -> MetricsSidecar {
        let inner = rtf_benchkit::MetricsSidecar::new(figure);
        args.obs = Some(Arc::clone(inner.obs()));
        MetricsSidecar { inner }
    }

    /// The shared observer.
    pub fn obs(&self) -> &Arc<TxObs> {
        self.inner.obs()
    }

    /// Writes `<csv_dir>/<figure>.metrics.json` (when a CSV directory was
    /// requested) and prints a one-line summary either way. Stops the live
    /// exporter (final reconciling tick) first.
    pub fn write(&self, csv_dir: Option<&Path>) {
        self.inner.write(csv_dir);
    }
}
