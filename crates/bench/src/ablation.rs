//! Ablations of design choices called out in DESIGN.md:
//! A1 — lock-free helping commit vs a global commit mutex;
//! A2 — the §IV-E read-only future validation skip;
//! A4 — strong ordering vs parallel nesting;
//! A5 — the deterministic ordered-commit lane's throughput cost.

use rtf::{CommitStrategy, TreeSemantics};
use rtf_benchkit::measure::fmt_f64;
use rtf_benchkit::{run_clients, SyntheticArray, SyntheticConfig, Table};
use rtf_tstructs::TArray;

use crate::cli::Args;

/// A1: concurrent disjoint/contended counter increments under both commit
/// strategies.
pub fn ablation_commit(args: &Args) -> Table {
    let clients_set: Vec<usize> = if args.quick { vec![1, 2, 4] } else { vec![1, 2, 4, 8] };
    let ops = args.ops.unwrap_or(if args.quick { 500 } else { 3_000 });
    let mut t = Table::new(
        "A1 — top-level commit strategy: throughput (txs/s)",
        &["clients", "lock-free helping", "global mutex", "speedup"],
    );
    for clients in clients_set {
        let thr = |strategy: CommitStrategy| {
            let tm = args.tm().workers(0).commit_strategy(strategy).build();
            // Mostly disjoint counters with a pinch of sharing.
            let counters: TArray<u64> = TArray::new(clients * 4, |_| 0);
            run_clients(clients, ops, |c, i| {
                tm.atomic(|tx| {
                    let own = c * 4 + i % 4;
                    let v = *counters.get(tx, own);
                    counters.set(tx, own, v + 1);
                    if i % 16 == 0 {
                        let v = *counters.get(tx, 0);
                        counters.set(tx, 0, v + 1);
                    }
                });
            })
            .throughput()
        };
        let lf = thr(CommitStrategy::LockFreeHelping);
        let gm = thr(CommitStrategy::GlobalMutex);
        t.row(vec![clients.to_string(), fmt_f64(lf), fmt_f64(gm), fmt_f64(lf / gm)]);
    }
    t
}

/// A2: read-only futures with and without the validation skip.
pub fn ablation_roflag(args: &Args) -> Table {
    let ops = args.ops.unwrap_or(if args.quick { 50 } else { 300 });
    let futures = 7;
    let clients = 2;
    let mut t = Table::new(
        "A2 — §IV-E read-only future validation skip",
        &["ro_opt", "throughput (txs/s)", "ro skips", "ro validations"],
    );
    for ro_opt in [true, false] {
        let tm = args.tm().workers(clients * futures).read_only_optimization(ro_opt).build();
        let data: TArray<u64> = TArray::new(1 << 12, |i| i as u64);
        let before = tm.stats();
        let m = run_clients(clients, ops, |c, i| {
            let data = data.clone();
            tm.atomic_ro(move |tx| {
                let per = data.len() / (futures + 1);
                let mut handles = Vec::new();
                for f in 1..=futures {
                    let data = data.clone();
                    handles.push(tx.submit(move |tx| {
                        let mut acc = 0u64;
                        for k in (f * per)..((f + 1) * per) {
                            acc = acc.wrapping_add(*data.get(tx, k));
                        }
                        acc
                    }));
                }
                let mut acc: u64 = (0..per).map(|k| *data.get(tx, k)).fold(0, u64::wrapping_add);
                for h in &handles {
                    acc = acc.wrapping_add(*tx.eval(h));
                }
                acc.wrapping_add((c + i) as u64)
            });
        });
        let d = tm.stats().since(&before);
        t.row(vec![
            ro_opt.to_string(),
            fmt_f64(m.throughput()),
            d.ro_validation_skips.to_string(),
            d.ro_validation_taken.to_string(),
        ]);
    }
    t
}

/// A4: the cost of strong ordering — the paper's submission-point
/// serialization vs unordered parallel nesting (JVSTM-style, paper §VI) on
/// the contended synthetic workload.
pub fn ablation_ordering(args: &Args) -> Table {
    let clients = 2;
    let futures = 3;
    let ops = args.ops.unwrap_or(if args.quick { 40 } else { 200 });
    let cfg = SyntheticConfig {
        array_size: args.array_size.unwrap_or(1 << 14),
        tx_len: if args.quick { 64 } else { 512 },
        iters_between: 100,
        hot_spots: 20,
        hot_writes: 10,
    };
    let mut t = Table::new(
        "A4 — intra-transaction serialization discipline (contended synthetic)",
        &[
            "semantics",
            "throughput (txs/s)",
            "partial rollbacks",
            "waitTurn wait (ms total)",
            "validation (ms total)",
        ],
    );
    for (name, semantics) in [
        ("strong ordering", TreeSemantics::StrongOrdering),
        ("parallel nesting", TreeSemantics::ParallelNesting),
    ] {
        let tm =
            args.tm().workers(clients * futures).semantics(semantics).fallback_threshold(2).build();
        let data = SyntheticArray::new(cfg);
        let before = tm.stats();
        let m = run_clients(clients, ops, |c, i| {
            data.run_contended(&tm, futures, (c * ops + i) as u64);
        });
        let d = tm.stats().since(&before);
        t.row(vec![
            name.into(),
            fmt_f64(m.throughput()),
            d.sub_validation_aborts.to_string(),
            fmt_f64(d.wait_turn_ns as f64 / 1e6),
            fmt_f64(d.validation_ns as f64 / 1e6),
        ]);
    }
    t
}

/// A5: what the deterministic ordered-commit lane costs — unordered
/// baseline vs `ordered(1)` (global total order, the worst case: every
/// commit waits for the globally previous one) vs `ordered(4)` (sharded:
/// order only within a lane) on the contended synthetic workload of
/// Fig 5b.
pub fn ablation_ordered(args: &Args) -> Table {
    let futures = 2;
    let clients_set: Vec<usize> = if args.quick { vec![2, 4] } else { vec![2, 4, 8] };
    let ops = args.ops.unwrap_or(if args.quick { 40 } else { 200 });
    let cfg = SyntheticConfig {
        array_size: args.array_size.unwrap_or(1 << 14),
        tx_len: if args.quick { 64 } else { 512 },
        iters_between: 100,
        hot_spots: 20,
        hot_writes: 10,
    };
    let mut t = Table::new(
        "A5 — ordered-commit lane: throughput under contention (fig 5b workload)",
        &[
            "clients",
            "unordered (txs/s)",
            "ordered 1 lane",
            "ordered 4 lanes",
            "1-lane overhead (x)",
            "turn wait (ms total, 1 lane)",
        ],
    );
    for clients in clients_set {
        let run = |shards: Option<usize>| -> (f64, f64) {
            let mut b = args.tm().workers(clients * futures);
            if let Some(s) = shards {
                b = b.ordered(s);
            }
            let tm = b.build();
            // Fresh data per cell: contended runs mutate hot spots.
            let data = SyntheticArray::new(cfg);
            let before = tm.stats();
            let m = run_clients(clients, ops, |c, i| {
                data.run_contended(&tm, futures, (c * ops + i) as u64);
            });
            let d = tm.stats().since(&before);
            (m.throughput(), d.ticket_wait_ns as f64 / 1e6)
        };
        let (unordered, _) = run(None);
        let (one_lane, wait_ms) = run(Some(1));
        let (four_lanes, _) = run(Some(4));
        t.row(vec![
            clients.to_string(),
            fmt_f64(unordered),
            fmt_f64(one_lane),
            fmt_f64(four_lanes),
            fmt_f64(unordered / one_lane),
            fmt_f64(wait_ms),
        ]);
    }
    t
}
