//! Minimal hand-rolled CLI for the harness binaries (no extra deps).

use std::path::PathBuf;
use std::sync::Arc;

use rtf::{RtfBuilder, TxObs};

/// Common harness flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// CI-sized parameters (small sweeps, small data).
    pub quick: bool,
    /// Total thread budget (clients + futures pool); defaults per binary.
    pub threads: Option<usize>,
    /// Operations per client; defaults per binary.
    pub ops: Option<usize>,
    /// Directory for CSV output.
    pub csv: Option<PathBuf>,
    /// Synthetic array size override.
    pub array_size: Option<usize>,
    /// Observer attached to every TM the harness builds (set by the
    /// binaries via [`crate::sidecar::MetricsSidecar`], not a CLI flag).
    pub obs: Option<Arc<TxObs>>,
}

impl Args {
    /// Parses `std::env::args`; exits with usage on error or `--help`.
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(iter: impl IntoIterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--quick" => args.quick = true,
                "--threads" => args.threads = Some(parse_num(&take("--threads"))),
                "--ops" => args.ops = Some(parse_num(&take("--ops"))),
                "--array-size" => args.array_size = Some(parse_num(&take("--array-size"))),
                "--csv" => args.csv = Some(PathBuf::from(take("--csv"))),
                "--help" | "-h" => {
                    eprintln!("flags: --quick  --threads N  --ops N  --array-size N  --csv DIR");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// A TM builder with the harness observer (if any) pre-attached; every
    /// sweep builds its TMs through this so one sidecar aggregates the
    /// whole figure.
    pub fn tm(&self) -> RtfBuilder {
        let b = rtf::Rtf::builder();
        match &self.obs {
            Some(obs) => b.observer(Arc::clone(obs)),
            None => b,
        }
    }

    /// Total thread budget: explicit, else scaled to the machine (the
    /// paper used a 48-core box; we default to `max(4, 2×cores)` so the
    /// allocation-strategy comparison is meaningful even on small hosts).
    pub fn thread_budget(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            (2 * cores).max(4)
        })
    }
}

fn parse_num(s: &str) -> usize {
    // Accept 100_000, 100k, 1m.
    let s = s.replace('_', "");
    let (num, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1_000),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1_000_000),
        _ => (s.as_str(), 1),
    };
    num.parse::<usize>().map(|n| n * mult).unwrap_or_else(|_| {
        eprintln!("invalid number: {s}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags() {
        let a = parse(&["--quick", "--threads", "8", "--ops", "2k", "--csv", "/tmp/x"]);
        assert!(a.quick);
        assert_eq!(a.threads, Some(8));
        assert_eq!(a.ops, Some(2000));
        assert_eq!(a.csv.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(a.thread_budget(), 8);
    }

    #[test]
    fn suffixes() {
        let a = parse(&["--array-size", "1m"]);
        assert_eq!(a.array_size, Some(1_000_000));
    }

    #[test]
    fn default_budget_positive() {
        assert!(parse(&[]).thread_budget() >= 4);
    }
}
