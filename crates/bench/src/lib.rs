//! Experiment harnesses regenerating every figure of the paper's
//! evaluation (§V). Each binary prints paper-style tables (and optional
//! CSV):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig5a` | Fig 5a — read-only synthetic: normalized throughput of JTF vs plain futures, over transaction length × `iter` |
//! | `fig5b` | Fig 5b — contended synthetic: normalized throughput of `i*j` thread allocations |
//! | `fig5c` | Fig 5c — contended synthetic: mean latency (incl. retries), abort counts |
//! | `fig6_vacation` | Fig 6a–c — Vacation throughput / latency / abort rate vs threads × futures |
//! | `fig6_tpcc` | Fig 6d–f — TPC-C throughput / latency / abort rate vs threads × futures |
//! | `ablation_commit` | A1 — lock-free helping vs global-mutex commit |
//! | `ablation_roflag` | A2 — §IV-E read-only future validation skip on/off |
//! | `ablation_ordering` | A4 — strong ordering vs parallel nesting |
//! | `ablation_ordered` | A5 — ordered-commit lane vs unordered, 1 vs 4 lanes |
//! | `ordered_replay` | record/replay determinism check for the ordered lane |
//! | `chaos` | seeded fault-injection runner (`--ordered SHARDS` for the lane) |
//! | `metrics_check` | CI validator for exported metrics/trace JSON |
//!
//! Run e.g. `cargo run --release -p rtf-bench --bin fig5b -- --quick`.
//! Common flags: `--quick` (CI-sized), `--threads N` (total thread budget),
//! `--ops N` (per-client operations), `--csv DIR`, `--array-size N`.
//!
//! With `--csv DIR`, every figure binary also writes a
//! `<figure>.metrics.json` sidecar (histograms, abort hotspots, raw
//! counters — see [`sidecar`]), and `metrics_check` validates such a
//! sidecar (plus an optional Chrome trace) in CI.

#![warn(missing_docs)]

pub mod ablation;
pub mod cli;
pub mod fig5;
pub mod fig6;
pub mod sidecar;

pub use cli::Args;
pub use sidecar::MetricsSidecar;
