//! Ablation A2: the §IV-E read-only future validation skip, on vs off.

use rtf_bench::ablation;
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "ablation_roflag");
    ablation::ablation_roflag(&args).emit(args.csv.as_deref());
    sidecar.write(args.csv.as_deref());
}
