//! Ablation A2: the §IV-E read-only future validation skip, on vs off.

use rtf_bench::ablation;
use rtf_bench::Args;

fn main() {
    let args = Args::parse();
    ablation::ablation_roflag(&args).emit(args.csv.as_deref());
}
