//! Regenerates Fig 6d–f: TPC-C — throughput, mean transaction latency and
//! abort rate vs total threads, for 0/1/3/5/7 futures per transaction.

use rtf_bench::fig6::{self, App};
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "fig6_tpcc");
    eprintln!("fig6 (TPC-C): sweeping threads × future strategies");
    let cells = fig6::sweep(App::Tpcc, &args);
    for t in fig6::tables(App::Tpcc, &cells) {
        t.emit(args.csv.as_deref());
    }
    sidecar.write(args.csv.as_deref());
}
