//! Ablation A4: strong ordering (the paper's semantics) vs unordered
//! parallel nesting (JVSTM-style, paper §VI) — throughput and re-execution
//! behaviour on the contended synthetic workload.

use rtf_bench::ablation;
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "ablation_ordering");
    ablation::ablation_ordering(&args).emit(args.csv.as_deref());
    sidecar.write(args.csv.as_deref());
}
