//! Ablation A4: strong ordering (the paper's semantics) vs unordered
//! parallel nesting (JVSTM-style, paper §VI) — throughput and re-execution
//! behaviour on the contended synthetic workload.

use rtf_bench::ablation;
use rtf_bench::Args;

fn main() {
    let args = Args::parse();
    ablation::ablation_ordering(&args).emit(args.csv.as_deref());
}
