//! Ablation A1: lock-free helping commit (the paper's JVSTM design) vs a
//! coarse global commit mutex.

use rtf_bench::ablation;
use rtf_bench::Args;

fn main() {
    let args = Args::parse();
    ablation::ablation_commit(&args).emit(args.csv.as_deref());
}
