//! Ablation A1: lock-free helping commit (the paper's JVSTM design) vs a
//! coarse global commit mutex.

use rtf_bench::ablation;
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "ablation_commit");
    ablation::ablation_commit(&args).emit(args.csv.as_deref());
    sidecar.write(args.csv.as_deref());
}
