//! CI validator for the observability exports: parses an `RTF_METRICS`
//! JSON snapshot (and, optionally, an `RTF_CHROME_TRACE` document) and
//! asserts the fields a contended run must populate — non-zero commit and
//! abort counters, ordered commit/waitTurn/validation percentiles, an
//! abort-hotspot table, and future/continuation spans nested under their
//! top-level transaction.
//!
//! Usage: `metrics_check [flags] <metrics.json> [chrome_trace.json]`
//!
//! Flags (each enables an extra assertion for runs that must exhibit it):
//!
//! * `--require-reads` — the wait-free read fast path fired
//!   (`counters.read_fast > 0`) and slow-path walks did not dominate;
//! * `--require-gc` — the version GC trimmed permanent versions under load
//!   (`counters.versions_gced > 0`);
//! * `--no-dropped-spans` — the span rings kept up (`spans.dropped == 0`);
//! * `--require-stall-probe` — the starvation watchdog fired at least once
//!   (`counters.stalls_detected > 0`), proving the stall path is wired all
//!   the way through the event sink into the export;
//! * `--require-ordered` — the ordered-commit lane ran and its ticket
//!   lifecycle balanced: tickets were issued, commits flowed through the
//!   lane, and `issued == ordered_commits + abandoned` (every ticket
//!   resolved exactly once);
//! * `--require-async` — the waker backend of the unified wait layer ran:
//!   wakers were registered at blocking sites and fired by completions
//!   (`counters.wakers_registered > 0 && counters.wakers_fired > 0`), with
//!   no more fires than registrations.
//!
//! Exits non-zero with a message naming the first failed assertion.

use rtf_txobs::Json;

fn fail(msg: &str) -> ! {
    eprintln!("metrics_check: FAIL: {msg}");
    std::process::exit(1);
}

fn u64_at(doc: &Json, path: &[&str]) -> u64 {
    doc.path(path)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| fail(&format!("missing or non-integer field {}", path.join("."))))
}

fn check_hist(doc: &Json, name: &str, require_nonempty: bool) {
    let count = u64_at(doc, &["histograms_ns", name, "count"]);
    if require_nonempty && count == 0 {
        fail(&format!("histogram {name} recorded no samples"));
    }
    let p50 = u64_at(doc, &["histograms_ns", name, "p50_ns"]);
    let p95 = u64_at(doc, &["histograms_ns", name, "p95_ns"]);
    let p99 = u64_at(doc, &["histograms_ns", name, "p99_ns"]);
    let max = u64_at(doc, &["histograms_ns", name, "max_ns"]);
    if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
        fail(&format!("histogram {name} percentiles disordered: {p50}/{p95}/{p99}/{max}"));
    }
    if count > 0 && max == 0 {
        fail(&format!("histogram {name} has {count} samples but max 0ns"));
    }
}

/// Extra assertions requested on the command line.
#[derive(Default)]
struct Requirements {
    reads: bool,
    gc: bool,
    no_dropped_spans: bool,
    stall_probe: bool,
    ordered: bool,
    async_wakers: bool,
}

fn check_metrics(doc: &Json, req: &Requirements) {
    if doc.path(&["schema"]).and_then(Json::as_str) != Some("rtf-metrics-v1") {
        fail("schema is not rtf-metrics-v1");
    }
    let commits = u64_at(doc, &["derived", "commits"]);
    if commits == 0 {
        fail("derived.commits is zero — the smoke run committed nothing");
    }
    let aborts = u64_at(doc, &["derived", "top_aborts"])
        + u64_at(doc, &["counters", "sub_validation_aborts"]);
    if aborts == 0 {
        fail("no aborts recorded — the smoke run was not contended");
    }
    check_hist(doc, "commit", true);
    check_hist(doc, "wait_turn", false);
    check_hist(doc, "validation", false);
    check_hist(doc, "future_lifetime", false);
    let hotspots = doc
        .path(&["abort_hotspots"])
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("abort_hotspots missing"));
    if hotspots.is_empty() {
        fail("aborts recorded but abort_hotspots is empty");
    }
    for h in hotspots {
        if h.get("total").and_then(Json::as_u64).unwrap_or(0) == 0 {
            fail("hotspot row with zero conflicts");
        }
    }
    let read_fast = u64_at(doc, &["counters", "read_fast"]);
    let read_slow = u64_at(doc, &["counters", "read_slow"]);
    if req.reads {
        if read_fast == 0 {
            fail("read_fast is zero — the wait-free read fast path never fired");
        }
        // A contended-but-healthy run reads mostly at the head; a slow-path
        // majority means snapshots chronically trail the committed head.
        if read_slow > read_fast {
            fail(&format!("slow-path reads dominate: fast {read_fast} vs slow {read_slow}"));
        }
    }
    if req.gc && u64_at(doc, &["counters", "versions_gced"]) == 0 {
        fail("versions_gced is zero — the version GC never trimmed under load");
    }
    if req.no_dropped_spans {
        let dropped = u64_at(doc, &["spans", "dropped"]);
        if dropped > 0 {
            fail(&format!("{dropped} spans dropped — ring buffers fell behind"));
        }
    }
    if req.stall_probe && u64_at(doc, &["counters", "stalls_detected"]) == 0 {
        fail("stalls_detected is zero — the starvation watchdog never reported through the sink");
    }
    if req.ordered {
        let issued = u64_at(doc, &["counters", "tickets_issued"]);
        let ordered_commits = u64_at(doc, &["counters", "ordered_commits"]);
        let abandoned = u64_at(doc, &["counters", "tickets_abandoned"]);
        if issued == 0 {
            fail("tickets_issued is zero — the ordered lane never issued a ticket");
        }
        if ordered_commits == 0 {
            fail("ordered_commits is zero — nothing committed through the ordered lane");
        }
        // A quiescent export must balance: RAII resolves every ticket
        // exactly once, as a commit or an abandonment.
        if ordered_commits + abandoned != issued {
            fail(&format!(
                "ticket lifecycle leak: issued {issued} != commits {ordered_commits} + \
                 abandoned {abandoned}"
            ));
        }
    }
    if req.async_wakers {
        let registered = u64_at(doc, &["counters", "wakers_registered"]);
        let fired = u64_at(doc, &["counters", "wakers_fired"]);
        if registered == 0 {
            fail("wakers_registered is zero — no blocking site used the waker backend");
        }
        if fired == 0 {
            fail("wakers_fired is zero — registered wakers were never woken");
        }
        // A fire consumes a registration (re-registrations may outnumber
        // fires; the reverse would mean a waker fired out of thin air).
        if fired > registered {
            fail(&format!("wakers fired {fired} > registered {registered}"));
        }
    }
    println!(
        "metrics ok: {commits} commits, {aborts} aborts, {} hotspot rows, commit p99 {}ns, \
         reads fast/slow {read_fast}/{read_slow}, {} versions gced",
        hotspots.len(),
        u64_at(doc, &["histograms_ns", "commit", "p99_ns"]),
        u64_at(doc, &["counters", "versions_gced"]),
    );
}

fn check_trace(doc: &Json) {
    let events = doc
        .path(&["traceEvents"])
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("traceEvents missing from chrome trace"));
    if events.is_empty() {
        fail("chrome trace has no events");
    }
    let named = |name: &str| {
        events.iter().filter(|e| e.get("name").and_then(Json::as_str) == Some(name)).count()
    };
    if named("top_level") == 0 {
        fail("chrome trace has no top_level spans");
    }
    if named("future") == 0 && named("continuation") == 0 {
        fail("chrome trace has no future/continuation spans");
    }
    // Every async lifecycle event must carry the tree id Perfetto nests by,
    // and begin/end phases must balance per id.
    let mut balance: std::collections::BTreeMap<String, i64> = Default::default();
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("b") | Some("e") => {
                let id = e
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail("async event without a tree id"));
                *balance.entry(id.to_string()).or_insert(0) +=
                    if e.get("ph").and_then(Json::as_str) == Some("b") { 1 } else { -1 };
            }
            Some("X") => {
                if e.get("dur").is_none() {
                    fail("complete event without dur");
                }
            }
            _ => fail("event with unexpected phase"),
        }
    }
    if let Some((id, n)) = balance.iter().find(|(_, n)| **n != 0) {
        fail(&format!("unbalanced async span nesting for {id}: {n}"));
    }
    println!(
        "trace ok: {} events, {} top-level spans, {} future spans",
        events.len(),
        named("top_level"),
        named("future")
    );
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")))
}

fn main() {
    let mut req = Requirements::default();
    let mut positional = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--require-reads" => req.reads = true,
            "--require-gc" => req.gc = true,
            "--no-dropped-spans" => req.no_dropped_spans = true,
            "--require-stall-probe" => req.stall_probe = true,
            "--require-ordered" => req.ordered = true,
            "--require-async" => req.async_wakers = true,
            _ if arg.starts_with("--") => {
                eprintln!("metrics_check: unknown flag {arg}");
                std::process::exit(2);
            }
            _ => positional.push(arg),
        }
    }
    let mut positional = positional.into_iter();
    let metrics = positional.next().unwrap_or_else(|| {
        eprintln!("usage: metrics_check [flags] <metrics.json> [chrome_trace.json]");
        std::process::exit(2);
    });
    check_metrics(&load(&metrics), &req);
    if let Some(trace) = positional.next() {
        check_trace(&load(&trace));
    }
}
