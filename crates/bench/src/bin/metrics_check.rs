//! CI validator for the observability exports: parses an `RTF_METRICS`
//! JSON snapshot (and, optionally, an `RTF_CHROME_TRACE` document) and
//! asserts the fields a contended run must populate — non-zero commit and
//! abort counters, ordered commit/waitTurn/validation percentiles, an
//! abort-hotspot table, and future/continuation spans nested under their
//! top-level transaction.
//!
//! Usage: `metrics_check [flags] <metrics.json> [chrome_trace.json]`
//!
//! Flags (each enables an extra assertion for runs that must exhibit it):
//!
//! * `--require-reads` — the wait-free read fast path fired
//!   (`counters.read_fast > 0`) and slow-path walks did not dominate;
//! * `--require-gc` — the version GC trimmed permanent versions under load
//!   (`counters.versions_gced > 0`);
//! * `--no-dropped-spans` — the span rings kept up (`spans.dropped == 0`);
//! * `--require-stall-probe` — the starvation watchdog fired at least once
//!   (`counters.stalls_detected > 0`), proving the stall path is wired all
//!   the way through the event sink into the export;
//! * `--require-ordered` — the ordered-commit lane ran and its ticket
//!   lifecycle balanced: tickets were issued, commits flowed through the
//!   lane, and `issued == ordered_commits + abandoned` (every ticket
//!   resolved exactly once);
//! * `--require-async` — the waker backend of the unified wait layer ran:
//!   wakers were registered at blocking sites and fired by completions
//!   (`counters.wakers_registered > 0 && counters.wakers_fired > 0`), with
//!   no more fires than registrations;
//! * `--require-live STREAM.jsonl` — validates a live telemetry stream
//!   (`RTF_METRICS_STREAM`) against the final snapshot: every line parses
//!   with the `rtf-metrics-stream-v1` schema, sequence numbers are dense
//!   from 0, timestamps and every counter are monotone non-decreasing, the
//!   stream holds at least three snapshots, and the last line's counters
//!   and histogram counts equal the final `metrics.json` *exactly* (the
//!   sampler's final tick runs after the workload quiesced and before the
//!   export was written, so any difference is a lost update).
//!
//! Exits non-zero with a message naming the first failed assertion.

use rtf_txobs::Json;

fn fail(msg: &str) -> ! {
    eprintln!("metrics_check: FAIL: {msg}");
    std::process::exit(1);
}

fn u64_at(doc: &Json, path: &[&str]) -> u64 {
    doc.path(path)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| fail(&format!("missing or non-integer field {}", path.join("."))))
}

fn check_hist(doc: &Json, name: &str, require_nonempty: bool) {
    let count = u64_at(doc, &["histograms_ns", name, "count"]);
    if require_nonempty && count == 0 {
        fail(&format!("histogram {name} recorded no samples"));
    }
    let p50 = u64_at(doc, &["histograms_ns", name, "p50_ns"]);
    let p95 = u64_at(doc, &["histograms_ns", name, "p95_ns"]);
    let p99 = u64_at(doc, &["histograms_ns", name, "p99_ns"]);
    let max = u64_at(doc, &["histograms_ns", name, "max_ns"]);
    if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
        fail(&format!("histogram {name} percentiles disordered: {p50}/{p95}/{p99}/{max}"));
    }
    if count > 0 && max == 0 {
        fail(&format!("histogram {name} has {count} samples but max 0ns"));
    }
}

/// Extra assertions requested on the command line.
#[derive(Default)]
struct Requirements {
    reads: bool,
    gc: bool,
    no_dropped_spans: bool,
    stall_probe: bool,
    ordered: bool,
    async_wakers: bool,
    /// Path of a live JSONL stream to reconcile against the final snapshot.
    live_stream: Option<String>,
}

fn check_metrics(doc: &Json, req: &Requirements) {
    if doc.path(&["schema"]).and_then(Json::as_str) != Some("rtf-metrics-v1") {
        fail("schema is not rtf-metrics-v1");
    }
    let commits = u64_at(doc, &["derived", "commits"]);
    if commits == 0 {
        fail("derived.commits is zero — the smoke run committed nothing");
    }
    let aborts = u64_at(doc, &["derived", "top_aborts"])
        + u64_at(doc, &["counters", "sub_validation_aborts"]);
    if aborts == 0 {
        fail("no aborts recorded — the smoke run was not contended");
    }
    check_hist(doc, "commit", true);
    check_hist(doc, "wait_turn", false);
    check_hist(doc, "validation", false);
    check_hist(doc, "future_lifetime", false);
    let hotspots = doc
        .path(&["abort_hotspots"])
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("abort_hotspots missing"));
    if hotspots.is_empty() {
        fail("aborts recorded but abort_hotspots is empty");
    }
    for h in hotspots {
        if h.get("total").and_then(Json::as_u64).unwrap_or(0) == 0 {
            fail("hotspot row with zero conflicts");
        }
    }
    let read_fast = u64_at(doc, &["counters", "read_fast"]);
    let read_slow = u64_at(doc, &["counters", "read_slow"]);
    if req.reads {
        if read_fast == 0 {
            fail("read_fast is zero — the wait-free read fast path never fired");
        }
        // A contended-but-healthy run reads mostly at the head; a slow-path
        // majority means snapshots chronically trail the committed head.
        if read_slow > read_fast {
            fail(&format!("slow-path reads dominate: fast {read_fast} vs slow {read_slow}"));
        }
    }
    if req.gc && u64_at(doc, &["counters", "versions_gced"]) == 0 {
        fail("versions_gced is zero — the version GC never trimmed under load");
    }
    if req.no_dropped_spans {
        let dropped = u64_at(doc, &["spans", "dropped"]);
        if dropped > 0 {
            fail(&format!("{dropped} spans dropped — ring buffers fell behind"));
        }
    }
    if req.stall_probe && u64_at(doc, &["counters", "stalls_detected"]) == 0 {
        fail("stalls_detected is zero — the starvation watchdog never reported through the sink");
    }
    if req.ordered {
        let issued = u64_at(doc, &["counters", "tickets_issued"]);
        let ordered_commits = u64_at(doc, &["counters", "ordered_commits"]);
        let abandoned = u64_at(doc, &["counters", "tickets_abandoned"]);
        if issued == 0 {
            fail("tickets_issued is zero — the ordered lane never issued a ticket");
        }
        if ordered_commits == 0 {
            fail("ordered_commits is zero — nothing committed through the ordered lane");
        }
        // A quiescent export must balance: RAII resolves every ticket
        // exactly once, as a commit or an abandonment.
        if ordered_commits + abandoned != issued {
            fail(&format!(
                "ticket lifecycle leak: issued {issued} != commits {ordered_commits} + \
                 abandoned {abandoned}"
            ));
        }
    }
    if req.async_wakers {
        let registered = u64_at(doc, &["counters", "wakers_registered"]);
        let fired = u64_at(doc, &["counters", "wakers_fired"]);
        if registered == 0 {
            fail("wakers_registered is zero — no blocking site used the waker backend");
        }
        if fired == 0 {
            fail("wakers_fired is zero — registered wakers were never woken");
        }
        // A fire consumes a registration (re-registrations may outnumber
        // fires; the reverse would mean a waker fired out of thin air).
        if fired > registered {
            fail(&format!("wakers fired {fired} > registered {registered}"));
        }
    }
    println!(
        "metrics ok: {commits} commits, {aborts} aborts, {} hotspot rows, commit p99 {}ns, \
         reads fast/slow {read_fast}/{read_slow}, {} versions gced",
        hotspots.len(),
        u64_at(doc, &["histograms_ns", "commit", "p99_ns"]),
        u64_at(doc, &["counters", "versions_gced"]),
    );
}

/// Validates a live JSONL stream (`rtf-metrics-stream-v1`) and reconciles
/// its last line against the final exported snapshot. See the module docs
/// for the exact contract.
fn check_live(stream_path: &str, final_doc: &Json) {
    let text = std::fs::read_to_string(stream_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {stream_path}: {e}")));
    let lines: Vec<Json> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            Json::parse(line)
                .unwrap_or_else(|e| fail(&format!("{stream_path} line {}: {e}", i + 1)))
        })
        .collect();
    if lines.len() < 3 {
        fail(&format!(
            "live stream holds {} snapshots — need at least 3 (start, interval, final)",
            lines.len()
        ));
    }
    let mut prev_t = 0u64;
    let mut prev_counters: Vec<(String, u64)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.path(&["schema"]).and_then(Json::as_str) != Some("rtf-metrics-stream-v1") {
            fail(&format!("line {} schema is not rtf-metrics-stream-v1", i + 1));
        }
        let seq = u64_at(line, &["seq"]);
        if seq != i as u64 {
            fail(&format!("line {} has seq {seq} — sequence numbers must be dense from 0", i + 1));
        }
        let t = u64_at(line, &["t_ns"]);
        if t < prev_t {
            fail(&format!("line {} timestamp went backwards: {t} < {prev_t}", i + 1));
        }
        prev_t = t;
        let counters = line
            .path(&["metrics", "counters"])
            .and_then(Json::as_obj)
            .unwrap_or_else(|| fail(&format!("line {} has no metrics.counters", i + 1)));
        let counters: Vec<(String, u64)> = counters
            .iter()
            .map(|(name, v)| {
                let v = v.as_u64().unwrap_or_else(|| {
                    fail(&format!("line {} counter {name} is not an integer", i + 1))
                });
                (name.clone(), v)
            })
            .collect();
        for ((name, now), (pname, before)) in counters.iter().zip(prev_counters.iter()) {
            if name != pname {
                fail(&format!("line {} counter order changed at {name} vs {pname}", i + 1));
            }
            if now < before {
                fail(&format!("counter {name} went backwards at line {}: {now} < {before}", i + 1));
            }
        }
        prev_counters = counters;
    }
    // The final tick ran after the workload quiesced and before the export
    // was written, so the last streamed snapshot must equal the export.
    let last = lines.last().expect("at least 3 lines");
    let final_counters = final_doc
        .path(&["counters"])
        .and_then(Json::as_obj)
        .unwrap_or_else(|| fail("final snapshot has no counters"));
    for (name, v) in final_counters {
        let final_v = v.as_u64().unwrap_or(0);
        let streamed = u64_at(last, &["metrics", "counters", name]);
        if streamed != final_v {
            fail(&format!(
                "last streamed counter {name} = {streamed} but final export has {final_v} — \
                 stream and export do not reconcile"
            ));
        }
    }
    for hist in ["commit", "wait_turn", "validation", "future_lifetime"] {
        let streamed = u64_at(last, &["metrics", "histograms_ns", hist, "count"]);
        let final_v = u64_at(final_doc, &["histograms_ns", hist, "count"]);
        if streamed != final_v {
            fail(&format!(
                "last streamed {hist} histogram count {streamed} != final export {final_v}"
            ));
        }
    }
    println!(
        "live stream ok: {} snapshots over {:.2}s, last reconciles with the final export",
        lines.len(),
        prev_t.saturating_sub(u64_at(&lines[0], &["t_ns"])) as f64 / 1e9,
    );
}

fn check_trace(doc: &Json) {
    let events = doc
        .path(&["traceEvents"])
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("traceEvents missing from chrome trace"));
    if events.is_empty() {
        fail("chrome trace has no events");
    }
    let named = |name: &str| {
        events.iter().filter(|e| e.get("name").and_then(Json::as_str) == Some(name)).count()
    };
    if named("top_level") == 0 {
        fail("chrome trace has no top_level spans");
    }
    if named("future") == 0 && named("continuation") == 0 {
        fail("chrome trace has no future/continuation spans");
    }
    // Every async lifecycle event must carry the tree id Perfetto nests by,
    // and begin/end phases must balance per id.
    let mut balance: std::collections::BTreeMap<String, i64> = Default::default();
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("b") | Some("e") => {
                let id = e
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail("async event without a tree id"));
                *balance.entry(id.to_string()).or_insert(0) +=
                    if e.get("ph").and_then(Json::as_str) == Some("b") { 1 } else { -1 };
            }
            Some("X") => {
                if e.get("dur").is_none() {
                    fail("complete event without dur");
                }
            }
            _ => fail("event with unexpected phase"),
        }
    }
    if let Some((id, n)) = balance.iter().find(|(_, n)| **n != 0) {
        fail(&format!("unbalanced async span nesting for {id}: {n}"));
    }
    println!(
        "trace ok: {} events, {} top-level spans, {} future spans",
        events.len(),
        named("top_level"),
        named("future")
    );
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")))
}

fn main() {
    let mut req = Requirements::default();
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-reads" => req.reads = true,
            "--require-gc" => req.gc = true,
            "--no-dropped-spans" => req.no_dropped_spans = true,
            "--require-stall-probe" => req.stall_probe = true,
            "--require-ordered" => req.ordered = true,
            "--require-async" => req.async_wakers = true,
            "--require-live" => {
                req.live_stream = Some(args.next().unwrap_or_else(|| {
                    eprintln!("metrics_check: --require-live needs a STREAM.jsonl path");
                    std::process::exit(2);
                }));
            }
            _ if arg.starts_with("--") => {
                eprintln!("metrics_check: unknown flag {arg}");
                std::process::exit(2);
            }
            _ => positional.push(arg),
        }
    }
    let mut positional = positional.into_iter();
    let metrics = positional.next().unwrap_or_else(|| {
        eprintln!("usage: metrics_check [flags] <metrics.json> [chrome_trace.json]");
        std::process::exit(2);
    });
    let metrics_doc = load(&metrics);
    check_metrics(&metrics_doc, &req);
    if let Some(stream) = &req.live_stream {
        check_live(stream, &metrics_doc);
    }
    if let Some(trace) = positional.next() {
        check_trace(&load(&trace));
    }
}
