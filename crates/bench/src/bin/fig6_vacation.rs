//! Regenerates Fig 6a–c: Vacation — throughput, mean transaction latency
//! and abort rate vs total threads, for 0/1/3/5/7 futures per transaction.

use rtf_bench::fig6::{self, App};
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "fig6_vacation");
    eprintln!("fig6 (Vacation): sweeping threads × future strategies");
    let cells = fig6::sweep(App::Vacation, &args);
    for t in fig6::tables(App::Vacation, &cells) {
        t.emit(args.csv.as_deref());
    }
    sidecar.write(args.csv.as_deref());
}
