//! Regenerates Fig 5a: read-only synthetic workload — normalized
//! throughput of JTF transactional futures and of plain futures, over
//! transaction length × CPU `iter`, against a no-future baseline.

use rtf_bench::fig5;
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "fig5a");
    eprintln!("fig5a: read-only synthetic (this may take a while; use --quick for a fast pass)");
    for table in fig5::fig5a(&args) {
        table.emit(args.csv.as_deref());
    }
    sidecar.write(args.csv.as_deref());
}
