//! Regenerates Fig 5a: read-only synthetic workload — normalized
//! throughput of JTF transactional futures and of plain futures, over
//! transaction length × CPU `iter`, against a no-future baseline.

use rtf_bench::fig5;
use rtf_bench::Args;

fn main() {
    let args = Args::parse();
    eprintln!("fig5a: read-only synthetic (this may take a while; use --quick for a fast pass)");
    for table in fig5::fig5a(&args) {
        table.emit(args.csv.as_deref());
    }
}
