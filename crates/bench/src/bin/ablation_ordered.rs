//! Ablation A5: the deterministic ordered-commit lane's throughput cost —
//! unordered vs global total order (`ordered(1)`) vs sharded
//! (`ordered(4)`) on the contended synthetic workload.

use rtf_bench::ablation;
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "ablation_ordered");
    ablation::ablation_ordered(&args).emit(args.csv.as_deref());
    sidecar.write(args.csv.as_deref());
}
