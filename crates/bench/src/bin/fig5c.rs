//! Regenerates Fig 5c: contended synthetic workload — transaction latency
//! (including retries), latency reduction factors, re-execution counts and
//! abort rates for the `i*j` thread allocations.

use rtf_bench::fig5;
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "fig5c");
    let budget = args.thread_budget();
    eprintln!("fig5c: contended synthetic latency/aborts, thread budget {budget}");
    let cells = fig5::contended_sweep(&args);
    for t in fig5::fig5c_tables(&cells, budget) {
        t.emit(args.csv.as_deref());
    }
    sidecar.write(args.csv.as_deref());
}
