//! `txtop` — a refreshing terminal dashboard over the live telemetry
//! stream (`RTF_METRICS_STREAM` JSONL, schema `rtf-metrics-stream-v1`).
//!
//! Renders throughput (txs/s), abort rate, commit-latency percentiles with
//! a p95 sparkline, the abort-hotspot table, ordered-lane and taskpool
//! queue depths, async poll/wake rates, span-ring health, and the live
//! wait-graph ("who waits on whom") — everything the snapshot carries.
//!
//! Modes:
//!
//! * `txtop --stream FILE` — follows a JSONL stream being written by a
//!   workload running elsewhere (`RTF_METRICS_STREAM=FILE fig5b ...`),
//!   redrawing whenever a new snapshot lands;
//! * `txtop --stream FILE --once` — renders the final frame of a captured
//!   stream once, without ANSI control sequences (the CI mode: proves a
//!   recorded stream is renderable);
//! * `txtop --demo [--secs N]` — runs a contended in-process workload and
//!   dashboards it live (no stream file needed; good for a quick look).
//!
//! `--interval MS` controls the redraw cadence (default 250).
//!
//! Everything is dependency-free: plain ANSI escapes, no TUI crate.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rtf_txobs::{live, Json};

fn fail(msg: &str) -> ! {
    eprintln!("txtop: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!("usage: txtop --stream FILE [--once] [--interval MS] | txtop --demo [--secs N]");
    std::process::exit(2);
}

struct Config {
    stream: Option<PathBuf>,
    once: bool,
    demo: bool,
    interval: Duration,
    secs: u64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        stream: None,
        once: false,
        demo: false,
        interval: Duration::from_millis(250),
        secs: 10,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("txtop: {name} needs an integer argument");
                usage()
            })
        };
        match arg.as_str() {
            "--stream" => cfg.stream = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--once" => cfg.once = true,
            "--demo" => cfg.demo = true,
            "--interval" => cfg.interval = Duration::from_millis(val("--interval").max(50)),
            "--secs" => cfg.secs = val("--secs").max(1),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if cfg.demo == cfg.stream.is_some() {
        usage(); // exactly one source
    }
    cfg
}

/// One parsed stream line: the sample time plus the full metrics document.
struct Frame {
    t_ns: u64,
    metrics: Json,
}

impl Frame {
    fn parse(line: &str) -> Option<Frame> {
        let doc = Json::parse(line).ok()?;
        if doc.path(&["schema"]).and_then(Json::as_str) != Some(live::STREAM_SCHEMA) {
            return None;
        }
        let t_ns = doc.path(&["t_ns"]).and_then(Json::as_u64)?;
        let metrics = doc.get("metrics")?.clone();
        Some(Frame { t_ns, metrics })
    }

    fn u(&self, path: &[&str]) -> u64 {
        self.metrics.path(path).and_then(Json::as_u64).unwrap_or(0)
    }

    fn counter(&self, name: &str) -> u64 {
        self.u(&["counters", name])
    }
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.2}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Unicode block sparkline of `values`, scaled to the window's own max.
fn sparkline(values: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values.iter().map(|&v| BLOCKS[((v * 7) / max) as usize]).collect()
}

/// Per-interval rate of a counter between two frames, in events/second.
fn rate(prev: Option<&Frame>, cur: &Frame, name: &str) -> f64 {
    let Some(prev) = prev else { return 0.0 };
    let dt = cur.t_ns.saturating_sub(prev.t_ns) as f64 / 1e9;
    if dt <= 0.0 {
        return 0.0;
    }
    cur.counter(name).saturating_sub(prev.counter(name)) as f64 / dt
}

/// Renders one dashboard frame. `p95_history` is the caller-maintained
/// sparkline window (newest last).
fn render(seq: usize, prev: Option<&Frame>, cur: &Frame, p95_history: &[u64]) -> String {
    let mut out = String::new();
    let commits_rate = rate(prev, cur, "top_commits") + rate(prev, cur, "top_ro_commits");
    let commits = cur.u(&["derived", "commits"]);
    let aborts = cur.u(&["derived", "top_aborts"]);
    let abort_pct =
        if commits + aborts > 0 { 100.0 * aborts as f64 / (commits + aborts) as f64 } else { 0.0 };
    out.push_str(&format!(
        "rtf txtop — live transactional-memory telemetry   (snapshot {seq}, t={:.1}s)\n\n",
        cur.t_ns as f64 / 1e9
    ));
    out.push_str(&format!(
        "throughput  {:>8} txs/s    abort rate {:>5.1}%    commits {commits}  aborts {aborts}\n",
        fmt_rate(commits_rate),
        abort_pct
    ));
    out.push_str(&format!(
        "commit      p50 {:>8}  p95 {:>8}  p99 {:>8}  max {:>8}  ({} samples)\n",
        fmt_ns(cur.u(&["histograms_ns", "commit", "p50_ns"])),
        fmt_ns(cur.u(&["histograms_ns", "commit", "p95_ns"])),
        fmt_ns(cur.u(&["histograms_ns", "commit", "p99_ns"])),
        fmt_ns(cur.u(&["histograms_ns", "commit", "max_ns"])),
        cur.u(&["histograms_ns", "commit", "count"]),
    ));
    if p95_history.len() > 1 {
        out.push_str(&format!("p95 trend   {}\n", sparkline(p95_history)));
    }
    let polls = rate(prev, cur, "async_polls");
    let wakes = rate(prev, cur, "wakers_fired");
    let spurious = cur.counter("async_spurious_polls");
    let total_polls = cur.counter("async_polls");
    if total_polls > 0 || cur.counter("wakers_registered") > 0 {
        out.push_str(&format!(
            "async       {:>8} polls/s  {:>8} wakes/s  spurious {:.1}% of {total_polls} polls\n",
            fmt_rate(polls),
            fmt_rate(wakes),
            if total_polls > 0 { 100.0 * spurious as f64 / total_polls as f64 } else { 0.0 },
        ));
    }
    let mut depths = Vec::new();
    if let Some(gauges) = cur.metrics.get("gauges").and_then(Json::as_obj) {
        for (name, v) in gauges {
            depths.push(format!("{name} {}", v.as_u64().unwrap_or(0)));
        }
    }
    if !depths.is_empty() {
        out.push_str(&format!("depth       {}\n", depths.join("   ")));
    }
    out.push_str(&format!(
        "spans       recorded {}  dropped {}  ring high-water {}\n",
        cur.u(&["spans", "recorded"]),
        cur.u(&["spans", "dropped"]),
        cur.u(&["spans", "high_water"]),
    ));
    if let Some(hotspots) = cur.metrics.get("abort_hotspots").and_then(Json::as_arr) {
        if !hotspots.is_empty() {
            out.push_str("hotspots    cell               total   top-val  sub-val  inter-tree\n");
            for h in hotspots.iter().take(5) {
                let g = |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or(0);
                out.push_str(&format!(
                    "            {:#018x} {:>6}   {:>7}  {:>7}  {:>10}\n",
                    g("cell"),
                    g("total"),
                    g("top_validation"),
                    g("sub_validation"),
                    g("inter_tree"),
                ));
            }
        }
    }
    if let Some(waits) = cur.metrics.get("waits").and_then(Json::as_arr) {
        if !waits.is_empty() {
            out.push_str("waits       (who waits on whom)\n");
            for w in waits.iter().take(8) {
                let g = |k: &str| w.get(k).and_then(Json::as_u64).unwrap_or(0);
                let kind = w.get("kind").and_then(Json::as_str).unwrap_or("?");
                out.push_str(&format!(
                    "            t{} {kind} a={} b={} (tree {}, {})\n",
                    g("thread"),
                    g("a"),
                    g("b"),
                    g("tree"),
                    fmt_ns(g("waited_ns")),
                ));
            }
        }
    }
    out
}

/// Reads every complete frame currently in the stream file.
fn read_frames(path: &std::path::Path) -> Vec<Frame> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    text.lines().filter_map(Frame::parse).collect()
}

fn follow(cfg: &Config, path: &std::path::Path) -> ! {
    if cfg.once {
        let frames = read_frames(path);
        if frames.is_empty() {
            fail(&format!("{} holds no parsable stream lines", path.display()));
        }
        let p95: Vec<u64> =
            frames.iter().map(|f| f.u(&["histograms_ns", "commit", "p95_ns"])).collect();
        let prev = frames.len().checked_sub(2).map(|i| &frames[i]);
        print!("{}", render(frames.len() - 1, prev, frames.last().unwrap(), &p95));
        std::process::exit(0);
    }
    let mut seen = 0usize;
    let mut p95_history: Vec<u64> = Vec::new();
    loop {
        let frames = read_frames(path);
        if frames.len() > seen {
            seen = frames.len();
            let cur = frames.last().unwrap();
            p95_history.push(cur.u(&["histograms_ns", "commit", "p95_ns"]));
            if p95_history.len() > 60 {
                p95_history.remove(0);
            }
            let prev = frames.len().checked_sub(2).map(|i| &frames[i]);
            // Clear + home, then the frame: a plain redraw, no TUI deps.
            print!("\x1b[2J\x1b[H{}", render(seen - 1, prev, cur, &p95_history));
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        std::thread::sleep(cfg.interval);
    }
}

/// In-process demo: a contended counter workload sampled directly off its
/// observer — the dashboard without needing a stream file.
fn demo(cfg: &Config) {
    use rtf::{ObsConfig, Rtf, TxObs, VBox};
    let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
    let tm = Rtf::builder().workers(2).observer(Arc::clone(&obs)).build();
    let slots: Arc<Vec<VBox<u64>>> = Arc::new((0..4).map(|_| VBox::new(0u64)).collect());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let tm = tm.clone();
            let slots = Arc::clone(&slots);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let slots = Arc::clone(&slots);
                    let a = (w + i as usize) % slots.len();
                    tm.atomic(move |tx| {
                        let v = *tx.read(&slots[a]);
                        tx.write(&slots[a], v + 1);
                        let v0 = *tx.read(&slots[0]);
                        tx.write(&slots[0], v0 + 1);
                    });
                    i += 1;
                }
            })
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(cfg.secs);
    let mut prev: Option<Frame> = None;
    let mut p95_history = Vec::new();
    let mut seq = 0usize;
    while std::time::Instant::now() < deadline {
        let snap = obs.metrics();
        let frame = Frame { t_ns: rtf_txobs::obs_now_ns(), metrics: snap.to_json() };
        p95_history.push(frame.u(&["histograms_ns", "commit", "p95_ns"]));
        if p95_history.len() > 60 {
            p95_history.remove(0);
        }
        print!("\x1b[2J\x1b[H{}", render(seq, prev.as_ref(), &frame, &p95_history));
        use std::io::Write;
        let _ = std::io::stdout().flush();
        prev = Some(frame);
        seq += 1;
        std::thread::sleep(cfg.interval);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }
    println!("\ntxtop: demo done ({} transactions committed)", tm.stats().commits());
}

fn main() {
    let cfg = parse_args();
    if cfg.demo {
        demo(&cfg);
        return;
    }
    let path = cfg.stream.clone().expect("checked in parse_args");
    follow(&cfg, &path);
}
