//! Regenerates Fig 5b: contended synthetic workload — normalized
//! throughput of the `i*j` thread allocations against the all-top-level
//! baseline.

use rtf_bench::fig5;
use rtf_bench::{Args, MetricsSidecar};

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "fig5b");
    let budget = args.thread_budget();
    eprintln!("fig5b: contended synthetic, thread budget {budget} (use --threads to change)");
    let cells = fig5::contended_sweep(&args);
    fig5::fig5b_table(&cells, budget).emit(args.csv.as_deref());
    sidecar.write(args.csv.as_deref());
}
