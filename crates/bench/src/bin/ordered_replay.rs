//! Record/replay determinism harness for the ordered-commit lane.
//!
//! The ordered lane's contract is that the *commit order is data, not
//! scheduling*: tickets drawn in a fixed order commit in that order, no
//! matter how threads interleave, how often validation aborts force
//! retries, or what (non-fatal) faults a `txfault` plan injects. This
//! binary turns that contract into a CI check:
//!
//! 1. **Determinism** — an order-*dependent* workload (per-lane hash
//!    chains, where the final value encodes the exact commit order, plus a
//!    contended shared total to force retries) is recorded `--repeat` times
//!    with the same seed but a *different thread count each repeat*. Every
//!    run must produce a bit-identical `rtf-replay-v1` artifact: same
//!    per-lane commit order, same final-state hash, same lifecycle
//!    counters.
//! 2. **Cross-mode equivalence** — a commutative workload runs once
//!    through the ordered lane and once unordered; both must reach the
//!    same final state (ordering changes schedules, never results).
//! 3. **Record / verify** — `--record FILE` freezes run 0's artifact;
//!    `--verify FILE` replays and diffs against a frozen artifact, naming
//!    the first divergence on mismatch.
//!
//! With the `fault-inject` feature a seeded abort/delay/spurious fault
//! plan is (re)installed before every repeat. Panic rules are deliberately
//! absent: *which* transaction a probabilistic panic lands on is a
//! scheduling choice, so panics are exercised by `chaos`, not here.
//!
//! Usage: `ordered_replay [--seed N] [--shards N] [--tickets N]
//!                        [--threads N] [--repeat N] [--record FILE]
//!                        [--verify FILE] [--metrics FILE] [--quick]`
//!
//! Exit status 0 = deterministic; 1 = a divergence (with the first diff).

use std::path::PathBuf;
use std::sync::Arc;

use rtf::{state_hash, CommitLog, ReplayArtifact, Rtf, TxObs, VBox};
use rtf_benchkit::MetricsSidecar;
use rtf_txfault::{decision_stream, FaultPlan, SiteRule};

struct Config {
    seed: u64,
    shards: usize,
    tickets: usize,
    threads: usize,
    repeat: usize,
    record: Option<PathBuf>,
    verify: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ordered_replay [--seed N] [--shards N] [--tickets N] [--threads N] \
         [--repeat N] [--record FILE] [--verify FILE] [--metrics FILE] [--quick]"
    );
    std::process::exit(2);
}

fn parse_u64(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

fn parse_args() -> Config {
    let mut cfg = Config {
        seed: 0xC0FFEE,
        shards: 1,
        tickets: 600,
        threads: 4,
        repeat: 3,
        record: None,
        verify: None,
        metrics: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut raw = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("ordered_replay: {name} needs an argument");
                usage()
            })
        };
        let mut val = |name: &str| -> u64 {
            let v = raw(name);
            parse_u64(&v).unwrap_or_else(|| {
                eprintln!("ordered_replay: {name} needs an integer, got {v:?}");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => cfg.seed = val("--seed"),
            "--shards" => cfg.shards = val("--shards") as usize,
            "--tickets" => cfg.tickets = val("--tickets") as usize,
            "--threads" => cfg.threads = (val("--threads") as usize).max(1),
            "--repeat" => cfg.repeat = (val("--repeat") as usize).max(1),
            "--record" => cfg.record = Some(PathBuf::from(raw("--record"))),
            "--verify" => cfg.verify = Some(PathBuf::from(raw("--verify"))),
            "--metrics" => cfg.metrics = Some(PathBuf::from(raw("--metrics"))),
            "--quick" => cfg.tickets = 200,
            _ => usage(),
        }
    }
    cfg
}

fn fail(msg: &str) -> ! {
    eprintln!("ordered_replay: FAIL: {msg}");
    std::process::exit(1);
}

/// The deterministic fault plan: aborts force ticket-preserving retries,
/// delays and spurious wakeups widen the speculation window. No panics —
/// see the module docs.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule(SiteRule::at("mvstm.commit.validate").abort(100_000))
        .rule(SiteRule::at("mvstm.commit.ticket").abort(60_000).delay(40_000, 50))
        .rule(SiteRule::at("core.wait_turn").spurious(150_000).delay(30_000, 100))
        .rule(SiteRule::at("txengine.cell.*").delay(20_000, 20))
}

/// Order-sensitive accumulator: `mix(mix(0, a), b) != mix(mix(0, b), a)`,
/// so a lane's final chain value encodes its exact commit order.
fn mix(acc: u64, x: u64) -> u64 {
    (acc ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// One recorded run of the order-dependent workload: draws `cfg.tickets`
/// tickets up front (pinning the commit order to the draw order), executes
/// them on `threads` threads round-robin, and freezes the run into an
/// artifact. Each transaction folds its payload into its *lane's* hash
/// chain — per-lane state keeps the final value deterministic for any
/// shard count — and bumps a shared total that all lanes contend on.
fn run_once(cfg: &Config, threads: usize, obs: Option<&Arc<TxObs>>) -> ReplayArtifact {
    if rtf_txfault::enabled() {
        // Reinstall per run: fault decisions are per-site hit counters, so
        // a fresh plan makes the repeats literally identical. (The artifact
        // must not depend on this — aborts only cause retries — but the
        // stronger setup keeps the check honest.)
        rtf_txfault::install(plan(cfg.seed));
    }
    let mut builder = Rtf::builder()
        .workers(2)
        .ordered(cfg.shards)
        .stall_warn(std::time::Duration::from_millis(500));
    if let Some(obs) = obs {
        builder = builder.observer(Arc::clone(obs));
    }
    let log = CommitLog::new();
    builder = builder.event_sink(Arc::clone(&log) as _);
    let tm = builder.build();

    let shards = cfg.shards.max(1);
    let chains: Arc<Vec<VBox<u64>>> = Arc::new((0..shards).map(|_| VBox::new(0u64)).collect());
    let total = VBox::new(0u64);

    // Draw every ticket on this thread, in payload order: commit order is
    // now fixed, before any worker has run anything.
    let mut per_thread: Vec<Vec<(rtf::OrderedTicket, u64)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for k in 0..cfg.tickets {
        let ticket = tm.ticket();
        let payload = decision_stream(cfg.seed, "ordered_replay.payload", k as u64);
        // Round-robin, each thread's slice in increasing ticket order: the
        // globally oldest unretired ticket is always at the head of some
        // thread's queue, so turn waits cannot deadlock while threads still
        // speculate out of order against each other.
        per_thread[k % threads].push((ticket, payload));
    }

    let handles: Vec<_> = per_thread
        .into_iter()
        .map(|slice| {
            let tm = tm.clone();
            let chains = Arc::clone(&chains);
            let total = total.clone();
            std::thread::spawn(move || {
                for (ticket, payload) in slice {
                    let lane = ticket.ticket().lane as usize;
                    let chains = Arc::clone(&chains);
                    let total = total.clone();
                    let r = tm.run_ticketed(ticket, move |tx| {
                        let acc = *tx.read(&chains[lane]);
                        tx.write(&chains[lane], mix(acc, payload));
                        let t = *tx.read(&total);
                        tx.write(&total, t + payload % 7);
                    });
                    if let Err(e) = r {
                        fail(&format!("ticketed transaction failed: {e}"));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        if h.join().is_err() {
            fail("a submitter thread crashed");
        }
    }

    let hash =
        state_hash(chains.iter().map(|c| *c.read_committed()).chain([*total.read_committed()]));
    ReplayArtifact::from_run("hashchain", cfg.seed, shards as u32, &log, hash, &tm.stats())
}

/// The commutative workload for cross-mode equivalence: concurrent
/// additions into a few hot slots. The final state is the sum of the
/// applied deltas — independent of commit order by construction — so the
/// ordered and unordered runs must agree exactly.
fn run_commutative(cfg: &Config, ordered: bool, obs: Option<&Arc<TxObs>>) -> u64 {
    if rtf_txfault::enabled() {
        rtf_txfault::install(plan(cfg.seed));
    }
    const SLOTS: usize = 8;
    let mut builder = Rtf::builder().workers(2).stall_warn(std::time::Duration::from_millis(500));
    if ordered {
        builder = builder.ordered(cfg.shards);
    }
    if let Some(obs) = obs {
        builder = builder.observer(Arc::clone(obs));
    }
    let tm = builder.build();
    let slots: Arc<Vec<VBox<u64>>> = Arc::new((0..SLOTS).map(|_| VBox::new(0u64)).collect());
    let per_thread = cfg.tickets / cfg.threads.max(1);

    let handles: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let tm = tm.clone();
            let slots = Arc::clone(&slots);
            let seed = cfg.seed;
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let r =
                        decision_stream(seed, "ordered_replay.slot", (t * per_thread + i) as u64);
                    let a = (r % SLOTS as u64) as usize;
                    let b = ((r >> 16) % SLOTS as u64) as usize;
                    let da = (r >> 32) % 5 + 1;
                    let db = (r >> 48) % 5 + 1;
                    let slots = Arc::clone(&slots);
                    tm.run(move |tx| {
                        let v = *tx.read(&slots[a]);
                        tx.write(&slots[a], v + da);
                        let v = *tx.read(&slots[b]);
                        tx.write(&slots[b], v + db);
                    })
                    .unwrap_or_else(|e| fail(&format!("commutative transaction failed: {e}")));
                }
            })
        })
        .collect();
    for h in handles {
        if h.join().is_err() {
            fail("a commutative-workload thread crashed");
        }
    }
    state_hash(slots.iter().map(|s| *s.read_committed()))
}

fn main() {
    let cfg = parse_args();
    if !rtf_txfault::enabled() {
        eprintln!(
            "ordered_replay: note: built without the `fault-inject` feature — \
             recording fault-free runs"
        );
    }
    let sidecar = cfg.metrics.as_ref().map(|_| MetricsSidecar::new("ordered_replay"));
    let obs = sidecar.as_ref().map(|s| Arc::clone(s.obs()));

    // Determinism: same seed, varying thread counts, identical artifacts.
    let thread_plans: Vec<usize> = (0..cfg.repeat)
        .map(|i| match i % 3 {
            0 => cfg.threads,
            1 => (cfg.threads * 2).max(2),
            _ => (cfg.threads / 2).max(1),
        })
        .collect();
    let mut runs = Vec::new();
    for (i, &threads) in thread_plans.iter().enumerate() {
        let artifact = run_once(&cfg, threads, obs.as_ref());
        println!(
            "ordered_replay: run {i} ({threads} threads): {} commits, state hash {:#018x}",
            artifact.counters.ordered_commits, artifact.state_hash
        );
        runs.push(artifact);
    }
    let baseline = &runs[0];
    if baseline.counters.ordered_commits != cfg.tickets as u64 {
        fail(&format!(
            "expected {} ordered commits, got {}",
            cfg.tickets, baseline.counters.ordered_commits
        ));
    }
    if baseline.counters.tickets_abandoned != 0 {
        fail(&format!(
            "{} tickets abandoned in a workload that never aborts",
            baseline.counters.tickets_abandoned
        ));
    }
    for (l, lane) in baseline.lanes.iter().enumerate() {
        if lane.iter().enumerate().any(|(i, &s)| s != i as u64) {
            fail(&format!("lane {l} commit order is not the dense ticket order: {lane:?}"));
        }
    }
    for (i, run) in runs.iter().enumerate().skip(1) {
        if let Some(d) = baseline.diff(run) {
            fail(&format!("run {i} diverged from run 0: {d}"));
        }
    }
    println!(
        "ordered_replay: {} runs identical (seed {:#x}, {} shards, {} tickets)",
        runs.len(),
        cfg.seed,
        baseline.shards,
        cfg.tickets
    );

    if let Some(path) = &cfg.verify {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
        let frozen = ReplayArtifact::parse(&text)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        if let Some(d) = frozen.diff(baseline) {
            fail(&format!("replay diverged from {}: {d}", path.display()));
        }
        println!("ordered_replay: replay matches {}", path.display());
    }
    if let Some(path) = &cfg.record {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, baseline.to_json().pretty())
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        println!("ordered_replay: artifact recorded to {}", path.display());
    }

    // Cross-mode equivalence on the commutative workload.
    let ordered_hash = run_commutative(&cfg, true, obs.as_ref());
    let unordered_hash = run_commutative(&cfg, false, obs.as_ref());
    if ordered_hash != unordered_hash {
        fail(&format!(
            "cross-mode divergence on a commutative workload: ordered {ordered_hash:#018x} \
             != unordered {unordered_hash:#018x}"
        ));
    }
    println!("ordered_replay: ordered and unordered agree on the commutative workload");

    if let (Some(path), Some(sidecar)) = (&cfg.metrics, &sidecar) {
        sidecar
            .write_to(path)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        println!("ordered_replay: metrics written to {}", path.display());
    }
    if rtf_txfault::enabled() {
        rtf_txfault::clear();
    }
    println!("ordered_replay: ok");
}
