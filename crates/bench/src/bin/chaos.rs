//! Seeded chaos runner: replays a fig5-style contended future workload
//! under a deterministic fault-injection schedule and checks that the
//! runtime's robustness story holds end to end:
//!
//! * **atomicity / serializability** — per-slot counters and a shared total
//!   stay exactly equal to the sum of the deltas of *successful* runs
//!   (failed runs contribute nothing);
//! * **containment** — injected panics surface as
//!   [`rtf::TxError::FuturePanicked`] rather than crashing workers or
//!   hanging siblings;
//! * **liveness** — the run is bounded: the stall watchdog is armed as a
//!   deadlock backstop, so a wedged wait becomes a structured
//!   `StallAborted` failure (and a non-zero exit) instead of a CI timeout;
//! * **coverage** — with the `fault-inject` feature the run must actually
//!   inject (`--min-injections`, default 10000) across at least
//!   `--min-sites` (default 12) distinct failpoints.
//!
//! The binary always finishes with a deterministic *stall probe*: a
//! transaction whose future outlives a millisecond-scale warn threshold,
//! guaranteeing `stalls_detected > 0` in the exported metrics so
//! `metrics_check --require-stall-probe` can verify the watchdog's export
//! path even in builds without failpoints.
//!
//! With `--ordered SHARDS` the same workload runs through the ordered
//! commit lane (every top-level transaction commits in ticket order): the
//! run additionally checks the ticket lifecycle balances (every issued
//! ticket resolves as exactly one commit or abandonment), records the
//! commit-order log, and — on any invariant violation — dumps it as an
//! `rtf-replay-v1` artifact so the failing schedule can be replayed.
//!
//! With `--async` every client drives its transactions through the async
//! front-end (`Rtf::run_async` on the minimal `block_on` executor) instead
//! of the blocking `Rtf::run`, and the fault plan additionally injects
//! spurious wakeups at the new `core.async.poll` site — the poll path must
//! tolerate stray polls exactly as the blocking waits tolerate stray
//! unparks.
//!
//! Usage: `chaos [--seed N] [--runs N] [--clients N] [--workers N]
//!               [--min-injections N] [--min-sites N] [--ordered SHARDS]
//!               [--async] [--quick]`
//!
//! Exit status 0 = all invariants held; 1 = a violation (with a message).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use rtf::{Rtf, TxError, VBox};
use rtf_txfault::{decision_stream, FaultPlan, SiteRule};
use rtf_txobs::{CommitLog, ReplayArtifact};

/// Workload size knobs, resolved from the command line.
struct Config {
    seed: u64,
    runs: u64,
    clients: usize,
    workers: usize,
    min_injections: u64,
    min_sites: usize,
    ordered: Option<usize>,
    use_async: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seed N] [--runs N] [--clients N] [--workers N] \
         [--min-injections N] [--min-sites N] [--ordered SHARDS] [--async] [--quick]"
    );
    std::process::exit(2);
}

fn parse_u64(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

fn parse_args() -> Config {
    let mut cfg = Config {
        seed: 0xC0FFEE,
        runs: 6_000,
        clients: 4,
        workers: 4,
        min_injections: 10_000,
        min_sites: 12,
        ordered: None,
        use_async: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> u64 {
            args.next().as_deref().and_then(parse_u64).unwrap_or_else(|| {
                eprintln!("chaos: {name} needs an integer argument");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => cfg.seed = val("--seed"),
            "--runs" => cfg.runs = val("--runs"),
            "--clients" => cfg.clients = val("--clients") as usize,
            "--workers" => cfg.workers = val("--workers") as usize,
            "--min-injections" => cfg.min_injections = val("--min-injections"),
            "--min-sites" => cfg.min_sites = val("--min-sites") as usize,
            "--ordered" => cfg.ordered = Some(val("--ordered") as usize),
            "--async" => cfg.use_async = true,
            "--quick" => {
                cfg.runs = 400;
                cfg.min_injections = 500;
            }
            _ => usage(),
        }
    }
    cfg
}

/// Commit-order recording context, installed for ordered runs so a failure
/// can print a replayable schedule.
static REPLAY: OnceLock<(Arc<CommitLog>, u64, u32)> = OnceLock::new();

fn fail(msg: &str) -> ! {
    eprintln!("chaos: FAIL: {msg}");
    if let Some((log, seed, shards)) = REPLAY.get() {
        // Counters/state are unknown mid-failure; the schedule (per-lane
        // commit order) is the replayable content.
        let artifact = ReplayArtifact::from_run(
            "chaos",
            *seed,
            *shards,
            log,
            0,
            &rtf_txbase::StatSnapshot::default(),
        );
        eprintln!(
            "chaos: replayable commit-order artifact ({} commits so far):\n{}",
            log.len(),
            artifact.to_json().pretty()
        );
    }
    std::process::exit(1);
}

/// The fault schedule: every failpoint family misbehaves, with rates low
/// enough that retries converge and high enough that a few thousand runs
/// inject tens of thousands of faults. Probabilities are per *hit*, and the
/// commit-path sites are hit several times per transaction.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        // Commit-path validation/ordering failures: frequent but cheap —
        // they exercise the real abort/retry machinery.
        .rule(SiteRule::at("mvstm.commit.validate").abort(200_000))
        .rule(SiteRule::at("mvstm.commit.enqueue").abort(60_000).delay(40_000, 50))
        .rule(SiteRule::at("mvstm.commit.writeback").delay(60_000, 50))
        // Ticket handoff (ordered runs only; the site sits before the
        // turn wait, so an abort here must retry at the same position).
        .rule(SiteRule::at("mvstm.commit.ticket").abort(60_000).delay(30_000, 50))
        .rule(SiteRule::at("txengine.cell.*").abort(40_000).delay(20_000, 20))
        // Waiting paths: spurious wakeups and short delays widen races and
        // provoke the watchdog's warn threshold.
        .rule(SiteRule::at("core.wait_turn").abort(40_000).spurious(200_000).delay(40_000, 200))
        .rule(SiteRule::at("core.eval.wait").abort(10_000).spurious(150_000))
        .rule(SiteRule::at("core.subcommit.validate").abort(100_000))
        .rule(SiteRule::at("core.subcommit.propagate").abort(60_000))
        // Task execution: panics here must be contained, never crash a
        // worker permanently, and surface as FuturePanicked.
        .rule(SiteRule::at("core.future.body").abort(80_000).panic(8_000))
        .rule(SiteRule::at("core.future.commit").abort(50_000).panic(4_000))
        .rule(SiteRule::at("taskpool.task.run").panic(4_000).delay(40_000, 100))
        // Teardown: only delays — the scrub must still complete.
        .rule(SiteRule::at("core.teardown.scrub").delay(150_000, 100))
        // Async poll path (--async runs): stray wakeups schedule polls
        // that find nothing ready; the future must simply re-park.
        .rule(SiteRule::at("core.async.poll").spurious(200_000).delay(20_000, 50))
}

const SLOTS: usize = 32;

/// One batch of contended transactions; returns (successes, failures by
/// kind, expected per-slot sums, expected total).
fn run_workload(cfg: &Config) -> (u64, u64, u64) {
    let mut builder = Rtf::builder()
        .workers(cfg.workers)
        // Deadlock backstop: a wait stuck past 5s is a bug — surface it
        // as a structured failure instead of hanging CI.
        .stall_warn(std::time::Duration::from_millis(200))
        .stall_abort(std::time::Duration::from_secs(5));
    if let Some(shards) = cfg.ordered {
        let log = CommitLog::new();
        let _ = REPLAY.set((Arc::clone(&log), cfg.seed, shards.max(1) as u32));
        builder = builder.ordered(shards).event_sink(log);
    }
    let tm = Arc::new(builder.build());
    let slots: Arc<Vec<VBox<u64>>> = Arc::new((0..SLOTS).map(|_| VBox::new(0u64)).collect());
    let total = VBox::new(0u64);

    let expected: Arc<Vec<AtomicU64>> = Arc::new((0..SLOTS).map(|_| AtomicU64::new(0)).collect());
    let ok_runs = Arc::new(AtomicU64::new(0));
    let panicked_runs = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..cfg.clients)
        .map(|client| {
            let tm = Arc::clone(&tm);
            let slots = Arc::clone(&slots);
            let total = total.clone();
            let expected = Arc::clone(&expected);
            let ok_runs = Arc::clone(&ok_runs);
            let panicked_runs = Arc::clone(&panicked_runs);
            let runs = cfg.runs / cfg.clients as u64;
            let seed = cfg.seed;
            let use_async = cfg.use_async;
            std::thread::spawn(move || {
                for i in 0..runs {
                    // Deterministic per-transaction parameters (the fault
                    // stream uses the same generator, different site keys).
                    let r = decision_stream(seed, "workload.tx", client as u64 * runs + i);
                    let a = (r % SLOTS as u64) as usize;
                    let b = ((r >> 16) % SLOTS as u64) as usize;
                    let da = (r >> 32) % 5 + 1;
                    let db = (r >> 48) % 5 + 1;
                    let body = {
                        let slots = Arc::clone(&slots);
                        let total = total.clone();
                        move |tx: &mut rtf::Tx| {
                            let fut = tx.submit({
                                let slots = Arc::clone(&slots);
                                move |tx| {
                                    let v = *tx.read(&slots[a]);
                                    tx.write(&slots[a], v + da);
                                    da
                                }
                            });
                            let v = *tx.read(&slots[b]);
                            tx.write(&slots[b], v + db);
                            let fa = *tx.eval(&fut);
                            let t = *tx.read(&total);
                            tx.write(&total, t + fa + db);
                        }
                    };
                    let result = if use_async {
                        rtf_txasync::block_on(tm.run_async(body))
                    } else {
                        tm.run(body)
                    };
                    match result {
                        Ok(()) => {
                            ok_runs.fetch_add(1, Ordering::Relaxed);
                            expected[a].fetch_add(da, Ordering::Relaxed);
                            expected[b].fetch_add(db, Ordering::Relaxed);
                        }
                        Err(TxError::FuturePanicked { .. }) => {
                            panicked_runs.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TxError::StallAborted { kind, waited_ms }) => fail(&format!(
                            "stall backstop fired: {kind} wedged for {waited_ms}ms (deadlock?)"
                        )),
                        Err(e) => fail(&format!("unexpected failure: {e}")),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        if h.join().is_err() {
            fail("a client thread crashed");
        }
    }

    // Counter exactness: committed state must equal the sum of the deltas
    // of successful runs — failed runs must have contributed nothing.
    let mut expected_total = 0u64;
    for (i, slot) in slots.iter().enumerate() {
        let want = expected[i].load(Ordering::Relaxed);
        let got = *slot.read_committed();
        expected_total += want;
        if got != want {
            fail(&format!("slot {i}: committed {got} != expected {want} (lost/phantom update)"));
        }
    }
    let got_total = *total.read_committed();
    if got_total != expected_total {
        fail(&format!("total: committed {got_total} != expected {expected_total}"));
    }
    let stats = tm.stats();
    let ok = ok_runs.load(Ordering::Relaxed);
    if cfg.ordered.is_some() {
        // Ticket lifecycle must balance at quiescence, and every committed
        // run must have flowed through the ordered lane exactly once.
        if stats.ordered_commits + stats.tickets_abandoned != stats.tickets_issued {
            fail(&format!(
                "ticket lifecycle leak: issued {} != commits {} + abandoned {}",
                stats.tickets_issued, stats.ordered_commits, stats.tickets_abandoned
            ));
        }
        if stats.ordered_commits != ok {
            fail(&format!(
                "ordered commits {} != successful runs {ok} (log drift)",
                stats.ordered_commits
            ));
        }
        if let Some((log, ..)) = REPLAY.get() {
            if log.len() as u64 != stats.ordered_commits {
                fail(&format!(
                    "commit log has {} entries but ordered_commits is {}",
                    log.len(),
                    stats.ordered_commits
                ));
            }
        }
        println!(
            "chaos: ordered lane balanced: {} issued = {} commits + {} abandoned",
            stats.tickets_issued, stats.ordered_commits, stats.tickets_abandoned
        );
    }
    (ok, panicked_runs.load(Ordering::Relaxed), stats.future_panics)
}

/// Deterministically trips the starvation watchdog once: a future that
/// outlives a millisecond warn threshold while the continuation waits.
fn stall_probe() {
    let tm = Rtf::builder().workers(2).stall_warn(std::time::Duration::from_millis(2)).build();
    let r = tm.run(|tx| {
        let f = tx.submit(|_tx| {
            std::thread::sleep(std::time::Duration::from_millis(40));
            1u64
        });
        // Park the future on a worker first so eval's wait is a genuine
        // stall rather than one long inline help round.
        std::thread::sleep(std::time::Duration::from_millis(10));
        *tx.eval(&f)
    });
    if r != Ok(1) {
        fail(&format!("stall probe transaction failed: {r:?}"));
    }
    if tm.stats().stalls_detected == 0 {
        fail("stall probe ran but stalls_detected stayed zero");
    }
}

fn main() {
    let cfg = parse_args();
    let injecting = rtf_txfault::enabled();
    if injecting {
        rtf_txfault::install(plan(cfg.seed));
    } else {
        eprintln!(
            "chaos: warning: built without the `fault-inject` feature — \
             running the workload fault-free (coverage checks skipped)"
        );
    }

    let (ok_runs, panicked_runs, future_panics) = run_workload(&cfg);

    if injecting {
        let reports = rtf_txfault::stats();
        let injected: u64 = reports.iter().map(|r| r.injected()).sum();
        let sites_hit = reports.iter().filter(|r| r.hits > 0).count();
        let panics_injected: u64 = reports.iter().map(|r| r.panics).sum();
        println!("chaos: fault schedule (seed {:#x}):", cfg.seed);
        for r in &reports {
            println!(
                "  {:<28} hits {:>8}  aborts {:>6}  panics {:>5}  delays {:>6}  spurious {:>6}",
                r.site, r.hits, r.aborts, r.panics, r.delays, r.spurious
            );
        }
        if sites_hit < cfg.min_sites {
            fail(&format!("only {sites_hit} failpoints were exercised (need {})", cfg.min_sites));
        }
        if injected < cfg.min_injections {
            fail(&format!("only {injected} faults injected (need {})", cfg.min_injections));
        }
        if panics_injected > 0 && panicked_runs == 0 && future_panics == 0 {
            fail(&format!("{panics_injected} panics injected but none surfaced as FuturePanicked"));
        }
        rtf_txfault::clear();
        println!(
            "chaos: {injected} faults across {sites_hit} sites; {ok_runs} commits, \
             {panicked_runs} runs surfaced FuturePanicked ({panics_injected} panics injected)"
        );
    } else {
        println!("chaos: fault-free run: {ok_runs} commits, {panicked_runs} panicked runs");
    }

    stall_probe();
    println!("chaos: ok");
}
