//! A6 — sync-vs-async front-end overhead on the Fig 5b contended workload.
//!
//! The waker-based blocking core (DESIGN.md §3.14) claims the async
//! front-end is a different *waiting* strategy, not a different runtime:
//! `block_on(run_async(body))` must cost no more than a few percent over
//! the blocking `atomic(body)` on the same workload, because the poll path
//! helps with the same discipline the blocking waits use.
//!
//! For each Fig 5b `i*j` allocation and read-prefix length this drives the
//! *identical* contended body through both front-ends and reports the
//! async/sync throughput ratio (1.00 = free, lower = async overhead).

use rtf_bench::{Args, MetricsSidecar};
use rtf_benchkit::measure::fmt_f64;
use rtf_benchkit::{run_clients, SyntheticArray, SyntheticConfig, Table};
use rtf_txasync::block_on;

use rtf_bench::fig5::allocations;

fn main() {
    let mut args = Args::parse();
    let sidecar = MetricsSidecar::install(&mut args, "a6_async");
    let budget = args.thread_budget();
    eprintln!("a6: sync vs async front-end, thread budget {budget} (use --threads to change)");

    let prefixes: Vec<usize> = if args.quick { vec![10, 100] } else { vec![10, 100, 1_000] };
    let iter = if args.quick { 100 } else { 1_000 };
    let array_size = args.array_size.unwrap_or(if args.quick { 1 << 14 } else { 1 << 18 });

    let header: Vec<String> = std::iter::once("prefix".to_string())
        .chain(allocations(budget).iter().map(|a| a.to_string()))
        .collect();
    let headers: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t_sync =
        Table::new("A6 — blocking front-end throughput (txs/s), contended synthetic", &headers);
    let mut t_async = Table::new(
        "A6 — async front-end throughput (txs/s), same workload via block_on(run_async)",
        &headers,
    );
    let mut t_ratio =
        Table::new("A6 — async / sync throughput ratio (1.00 = the waker path is free)", &headers);

    for &prefix in &prefixes {
        let mut row_sync = vec![prefix.to_string()];
        let mut row_async = vec![prefix.to_string()];
        let mut row_ratio = vec![prefix.to_string()];
        for alloc in allocations(budget) {
            let cfg = SyntheticConfig {
                array_size,
                tx_len: prefix,
                iters_between: iter,
                hot_spots: 20,
                hot_writes: 10,
            };
            let ops = args.ops.unwrap_or_else(|| (20_000 / prefix.max(10)).clamp(5, 200));
            let workers = budget.saturating_sub(alloc.clients).max(1);

            // Fresh TM and data per cell and per front-end: contended runs
            // mutate hot spots, and a shared TM would let one front-end
            // warm the other's pool.
            let data = SyntheticArray::new(cfg);
            let tm = args.tm().workers(workers).build();
            let sync_tp = run_clients(alloc.clients, ops, |c, i| {
                tm.atomic(data.contended_body(alloc.futures, (c * ops + i) as u64));
            })
            .throughput();

            let data = SyntheticArray::new(cfg);
            let tm = args.tm().workers(workers).build();
            let async_tp = run_clients(alloc.clients, ops, |c, i| {
                block_on(tm.run_async(data.contended_body(alloc.futures, (c * ops + i) as u64)))
                    .expect("async contended transaction failed");
            })
            .throughput();

            row_sync.push(fmt_f64(sync_tp));
            row_async.push(fmt_f64(async_tp));
            row_ratio.push(fmt_f64(async_tp / sync_tp));
        }
        t_sync.row(row_sync);
        t_async.row(row_async);
        t_ratio.row(row_ratio);
    }
    t_sync.emit(args.csv.as_deref());
    t_async.emit(args.csv.as_deref());
    t_ratio.emit(args.csv.as_deref());
    sidecar.write(args.csv.as_deref());
}
