//! A3 — tentative-version-list behaviour: read cost as the per-box list
//! grows (the paper keeps lists sorted so reads stop at the first visible
//! entry; this measures that walk).

use criterion::{criterion_group, criterion_main, Criterion};
use rtf::{Rtf, VBox};
use std::hint::black_box;

/// Builds a transaction whose tree writes the same box from a chain of
/// `depth` nested futures+continuations, then measures reads against the
/// populated list within the same transaction.
fn bench_list_walk(c: &mut Criterion) {
    let tm = Rtf::builder().workers(0).build();
    for depth in [1usize, 4, 8] {
        c.bench_function(&format!("tentative/read_after_{depth}_writers"), |b| {
            b.iter(|| {
                let vb = VBox::new(0u64);
                tm.atomic(|tx| {
                    // Each fork writes the box in its future, committing a
                    // new tentative version owned one level up.
                    for i in 0..depth {
                        let vb = vb.clone();
                        tx.fork(
                            move |tx| {
                                let v = *tx.read(&vb);
                                tx.write(&vb, v + i as u64);
                            },
                            |tx, f| {
                                let _ = tx.eval(f);
                            },
                        );
                    }
                    // Hot read against the populated list.
                    let mut acc = 0u64;
                    for _ in 0..32 {
                        acc = acc.wrapping_add(*tx.read(&vb));
                    }
                    black_box(acc)
                })
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_list_walk
}
criterion_main!(benches);
