//! Criterion smoke versions of the paper figures (tiny parameterizations;
//! the full tables come from the `fig5a`/`fig5b`/`fig5c`/`fig6_*`
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use rtf::Rtf;
use rtf_benchkit::{SyntheticArray, SyntheticConfig};
use rtf_tpcc::{TpccConfig, TpccExecutor, TpccScale};
use rtf_vacation::{Client, VacationConfig};

fn bench_fig5_shapes(c: &mut Criterion) {
    let cfg = SyntheticConfig {
        array_size: 1 << 12,
        tx_len: 256,
        iters_between: 50,
        hot_spots: 20,
        hot_writes: 10,
    };
    let data = SyntheticArray::new(cfg);
    let tm = Rtf::builder().workers(4).build();
    for futures in [0usize, 3] {
        c.bench_function(&format!("fig5/read_only_futures_{futures}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                data.run_read_only(&tm, futures, seed)
            })
        });
        c.bench_function(&format!("fig5/contended_futures_{futures}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                data.run_contended(&tm, futures, seed)
            })
        });
    }
}

fn bench_fig6_shapes(c: &mut Criterion) {
    let tm = Rtf::builder().workers(4).build();
    let vcfg = VacationConfig { relations: 256, queries_per_tx: 24, ..Default::default() };
    let w = vcfg.build(&tm, 64);
    for futures in [0usize, 3] {
        let client = Client::new(tm.clone(), w.manager.clone(), futures);
        c.bench_function(&format!("fig6/vacation_futures_{futures}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % w.ops.len();
                client.execute(&w.ops[i])
            })
        });
    }

    let tcfg = TpccConfig {
        scale: TpccScale { warehouses: 1, customers_per_district: 20, items: 128, seed: 11 },
        ..Default::default()
    };
    let tw = tcfg.build(&tm, 64);
    for futures in [0usize, 3] {
        let ex = TpccExecutor::new(tm.clone(), tw.db.clone(), futures);
        c.bench_function(&format!("fig6/tpcc_futures_{futures}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % tw.ops.len();
                rtf_tpcc::workload::run_op(&ex, &tw.ops[i])
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig5_shapes, bench_fig6_shapes
}
criterion_main!(benches);
