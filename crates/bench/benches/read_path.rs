//! Read-path micro-benchmarks for the lock-free `VBoxCell` version list
//! (DESIGN.md §D2): the wait-free head read, the lock-free list walk for
//! older snapshots, reader scaling across threads, and readers racing a
//! committing writer. Numbers before/after the CAS-list rewrite are recorded
//! in `bench_results/README.md`.
//!
//! Only APIs stable across the rewrite are used (`read_at`, `apply_commit`,
//! TM-level reads) — plus [`rtf_txengine::read_pin`], which exists only in
//! the lock-free world: the measured reader loops hold it because that is
//! how the runtime reads (one epoch pin per transaction attempt, reads pin
//! reentrantly). The locked baseline has no epoch machinery, so its runs
//! used the pre-pin bench source; its per-read loop bodies are identical.

use criterion::{criterion_group, criterion_main, Criterion};
use rtf::{Rtf, VBox};
use rtf_txbase::new_write_token;
use rtf_txengine::{erase, read_pin};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// A cell holding `depth` committed versions 1..=depth (watermark 0: no GC).
fn deep_cell(depth: u64) -> VBox<u64> {
    let b = VBox::new(0u64);
    for v in 1..=depth {
        b.cell().apply_commit(v, erase(v), new_write_token(), 0);
    }
    b
}

fn bench_single_thread(c: &mut Criterion) {
    // Wait-free fast path: the newest version satisfies the snapshot, so the
    // read never walks past the head. The pin is held across the batch, as
    // the runtime does per transaction attempt.
    let head = deep_cell(8);
    c.bench_function("read_path/head_hit", |b| {
        let _pin = read_pin();
        b.iter(|| black_box(head.cell().read_at(black_box(8))))
    });

    // The same read paying a fresh era-advertisement fence every time — the
    // cost of a standalone (non-transactional) `read_at` with no ambient pin.
    c.bench_function("read_path/head_hit_unpinned", |b| {
        b.iter(|| black_box(head.cell().read_at(black_box(8))))
    });

    // Snapshot older than the head: the read walks the version list. The
    // walk length is the retained-history depth the GC watermark allows.
    for depth in [16u64, 64] {
        let cell = deep_cell(depth);
        c.bench_function(&format!("read_path/walk_depth_{depth}"), |b| {
            let _pin = read_pin();
            b.iter(|| black_box(cell.cell().read_at(black_box(1))))
        });
    }
}

/// `threads` workers each performing `per_thread` head reads, timed from a
/// barrier release to the last join — the reader-scaling number.
fn timed_parallel_reads(b: &VBox<u64>, threads: usize, per_thread: u64) -> std::time::Duration {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let b = b.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Each worker reads like a transaction: one pin, many reads.
                let _pin = read_pin();
                let snapshot = b.cell().latest_version();
                for _ in 0..per_thread {
                    black_box(b.cell().read_at(black_box(snapshot)));
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    start.elapsed()
}

fn bench_reader_scaling(c: &mut Criterion) {
    for threads in [1usize, 8] {
        let b = deep_cell(8);
        c.bench_function(&format!("read_path/scaling_threads_{threads}"), |bench| {
            bench.iter_custom(|iters| {
                // Spread criterion's iteration budget across the pool so one
                // sample is one barrier-to-join parallel read burst.
                timed_parallel_reads(&b, threads, iters.max(1))
            })
        });
    }
}

fn bench_read_under_commits(c: &mut Criterion) {
    // Reads racing a writer that keeps prepending new versions, with the GC
    // watermark trailing so the list stays short (~4 nodes): the worst case
    // for reader/writer interference on the list head. The reader's
    // `u64::MAX` snapshot always resolves to the current head, so it stays
    // valid no matter how far the writer's watermark advances. The reader
    // pins per 64-read chunk, not across the whole batch: a batch-long pin
    // would block reclamation of everything the writer retires meanwhile
    // (unbounded limbo growth); chunk pins model short transactions.
    c.bench_function("read_path/read_vs_committing_writer", |bench| {
        bench.iter_custom(|iters| {
            let b = deep_cell(4);
            let stop = Arc::new(AtomicBool::new(false));
            let writer = {
                let b = b.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut v = 5u64;
                    while !stop.load(Ordering::Relaxed) {
                        b.cell().apply_commit(v, erase(v), new_write_token(), v - 3);
                        v += 1;
                    }
                })
            };
            let start = Instant::now();
            let mut left = iters;
            while left > 0 {
                let chunk = left.min(64);
                let _pin = read_pin();
                for _ in 0..chunk {
                    black_box(b.cell().read_at(black_box(u64::MAX)));
                }
                left -= chunk;
            }
            let elapsed = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            writer.join().unwrap();
            elapsed
        })
    });
}

fn bench_tm_level(c: &mut Criterion) {
    // End-to-end: the whole begin/read/commit envelope around one read, and
    // the sub-transaction read path through a future.
    let tm = Rtf::builder().workers(2).build();
    let b = VBox::new(7u64);
    c.bench_function("read_path/tm_ro_read", |bench| {
        bench.iter(|| tm.atomic_ro(|tx| *tx.read(&b)))
    });
    c.bench_function("read_path/tm_future_read", |bench| {
        bench.iter(|| {
            tm.atomic(|tx| {
                let b = b.clone();
                let f = tx.submit(move |tx| *tx.read(&b));
                *tx.eval(&f)
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_single_thread, bench_reader_scaling, bench_read_under_commits, bench_tm_level
}
criterion_main!(benches);
