//! A1 (micro view) — commit-path cost under the lock-free helping strategy
//! vs the global-mutex strategy, single-threaded and with a background
//! contender.

use criterion::{criterion_group, criterion_main, Criterion};
use rtf::{CommitStrategy, Rtf, VBox};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn bench_commit(c: &mut Criterion) {
    for (name, strategy) in
        [("lockfree", CommitStrategy::LockFreeHelping), ("mutex", CommitStrategy::GlobalMutex)]
    {
        let tm = Rtf::builder().workers(0).commit_strategy(strategy).build();
        let vb = VBox::new(0u64);
        c.bench_function(&format!("commit/{name}/solo"), |b| {
            b.iter(|| {
                tm.atomic(|tx| {
                    let v = *tx.read(&vb);
                    tx.write(&vb, v + 1);
                })
            })
        });
    }

    // With a background committer hammering disjoint boxes.
    for (name, strategy) in
        [("lockfree", CommitStrategy::LockFreeHelping), ("mutex", CommitStrategy::GlobalMutex)]
    {
        let tm = Arc::new(Rtf::builder().workers(0).commit_strategy(strategy).build());
        let mine = VBox::new(0u64);
        let theirs = VBox::new(0u64);
        let stop = Arc::new(AtomicBool::new(false));
        let bg = {
            let tm = Arc::clone(&tm);
            let theirs = theirs.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    tm.atomic(|tx| {
                        let v = *tx.read(&theirs);
                        tx.write(&theirs, v + 1);
                    });
                }
            })
        };
        c.bench_function(&format!("commit/{name}/contended_disjoint"), |b| {
            b.iter(|| {
                tm.atomic(|tx| {
                    let v = *tx.read(&mine);
                    tx.write(&mine, v + 1);
                })
            })
        });
        stop.store(true, Ordering::Relaxed);
        bg.join().unwrap();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_commit
}
criterion_main!(benches);
