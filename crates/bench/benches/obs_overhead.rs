//! O1 — overhead guard for the observability layer: the hot commit path
//! (read-modify-write transaction, and a fork/join transaction) measured
//! against three instrumentation levels:
//!
//! * `baseline` — the default TM: stats counters only, `spans_enabled()`
//!   is false so no clocks are read and no spans are built;
//! * `txobs_histograms` — a [`TxObs`] attached with span capture off:
//!   adds histogram recording and conflict attribution;
//! * `txobs_full` — span capture on: every lifecycle phase reads the
//!   monotonic clock twice and pushes a record into a per-thread ring.
//!
//! DESIGN.md §3.11 quotes the measured deltas.

use criterion::{criterion_group, criterion_main, Criterion};
use rtf::{ObsConfig, Rtf, TxObs, VBox};

fn tm_for(level: &str) -> Rtf {
    let b = Rtf::builder().workers(2);
    match level {
        "baseline" => b.build(),
        "txobs_histograms" => {
            b.observer(TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() })).build()
        }
        "txobs_full" => {
            b.observer(TxObs::new(ObsConfig { spans: true, ..ObsConfig::default() })).build()
        }
        other => unreachable!("unknown level {other}"),
    }
}

fn bench_commit_overhead(c: &mut Criterion) {
    for level in ["baseline", "txobs_histograms", "txobs_full"] {
        let tm = tm_for(level);
        let vb = VBox::new(0u64);
        c.bench_function(&format!("obs_overhead/rmw_commit/{level}"), |b| {
            b.iter(|| {
                tm.atomic(|tx| {
                    let v = *tx.read(&vb);
                    tx.write(&vb, v.wrapping_add(1));
                })
            })
        });
        let fb = VBox::new(7u64);
        c.bench_function(&format!("obs_overhead/fork_join/{level}"), |b| {
            b.iter(|| {
                tm.atomic(|tx| {
                    let fb2 = fb.clone();
                    tx.fork(move |tx| *tx.read(&fb2), |tx, f| *tx.eval(f))
                })
            })
        });
    }
}

criterion_group!(benches, bench_commit_overhead);
criterion_main!(benches);
