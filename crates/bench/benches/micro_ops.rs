//! M1 — micro-benchmarks of the primitive operations: top-level
//! reads/writes, sub-transaction reads/writes (tentative-list machinery),
//! future submission + evaluation, and commit paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rtf::{Rtf, VBox};
use std::hint::black_box;

fn bench_top_level_ops(c: &mut Criterion) {
    let tm = Rtf::builder().workers(0).build();
    let boxes: Vec<VBox<u64>> = (0..64).map(VBox::new).collect();

    c.bench_function("top_level/read_8", |b| {
        b.iter(|| {
            tm.atomic_ro(|tx| {
                let mut acc = 0u64;
                for vb in boxes.iter().take(8) {
                    acc = acc.wrapping_add(*tx.read(vb));
                }
                black_box(acc)
            })
        })
    });

    c.bench_function("top_level/rmw_commit", |b| {
        b.iter(|| {
            tm.atomic(|tx| {
                let v = *tx.read(&boxes[0]);
                tx.write(&boxes[0], v.wrapping_add(1));
            })
        })
    });

    c.bench_function("top_level/ro_fast_path", |b| {
        b.iter(|| tm.atomic_ro(|tx| *tx.read(&boxes[1])))
    });
}

fn bench_future_ops(c: &mut Criterion) {
    let tm = Rtf::builder().workers(2).build();
    let vb = VBox::new(7u64);

    c.bench_function("future/submit_eval", |b| {
        b.iter(|| {
            tm.atomic(|tx| {
                let vb = vb.clone();
                let f = tx.submit(move |tx| *tx.read(&vb));
                *tx.eval(&f)
            })
        })
    });

    c.bench_function("future/fork_join", |b| {
        b.iter(|| {
            tm.atomic(|tx| {
                let vb2 = vb.clone();
                tx.fork(move |tx| *tx.read(&vb2), |tx, f| *tx.eval(f))
            })
        })
    });

    c.bench_function("future/sub_write_commit", |b| {
        b.iter(|| {
            tm.atomic(|tx| {
                let vb = vb.clone();
                let f = tx.submit(move |tx| {
                    let v = *tx.read(&vb);
                    tx.write(&vb, v.wrapping_add(1));
                });
                let _ = tx.eval(&f);
            })
        })
    });

    // Cost of nesting depth: a chain of k nested futures.
    for depth in [1usize, 4] {
        c.bench_function(&format!("future/nested_depth_{depth}"), |b| {
            b.iter_batched(
                || (),
                |()| {
                    tm.atomic(|tx| {
                        fn nest(tx: &mut rtf::Tx, d: usize) -> u64 {
                            if d == 0 {
                                return 1;
                            }
                            let f = tx.submit(move |tx| nest(tx, d - 1));
                            *tx.eval(&f)
                        }
                        black_box(nest(tx, depth))
                    })
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_order_keys(c: &mut Criterion) {
    use rtf_txbase::OrderKey;
    let root = OrderKey::root();
    let deep_a = root.child_future(0).child_cont(1).child_future(2).write_key(3);
    let deep_b = root.child_future(0).child_cont(1).child_cont(2).write_key(0);
    c.bench_function("orderkey/compare_deep", |b| {
        b.iter(|| black_box(&deep_a) < black_box(&deep_b))
    });
    c.bench_function("orderkey/derive_child", |b| {
        b.iter(|| black_box(&deep_a).child_future(black_box(1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_top_level_ops, bench_future_ops, bench_order_keys
}
criterion_main!(benches);
