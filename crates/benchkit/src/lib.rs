//! Workload generation, measurement and reporting for the `rtf`
//! evaluation (reproduces §V of the paper).
//!
//! * [`measure`] — wall-clock/throughput/latency-percentile collection and
//!   TM-counter deltas;
//! * [`table`] — aligned console tables + CSV emission (the harness
//!   binaries print one table per paper figure);
//! * [`synthetic`] — the synthetic array benchmark of Fig 5: configurable
//!   transaction length, CPU-bound `iter` loop between accesses, read-only
//!   and hot-spot-contended variants, with JTF-style transactional futures
//!   or plain futures;
//! * [`runner`] — thread-allocation strategies (the paper's `i*j` notation:
//!   `i` top-level transactions, each parallelized across `j` threads);
//! * [`metrics_sidecar`] — the shared `<figure>.metrics.json` sidecar
//!   observer, including the env-driven live telemetry exporter.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod measure;
pub mod metrics_sidecar;
pub mod runner;
pub mod synthetic;
pub mod table;

pub use measure::{LatencyStats, RunMeasurement};
pub use metrics_sidecar::MetricsSidecar;
pub use runner::{run_clients, ClientReport};
pub use synthetic::{SyntheticArray, SyntheticConfig};
pub use table::Table;
