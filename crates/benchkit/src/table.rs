//! Aligned console tables and CSV output for the experiment harnesses.

use std::fmt::Write as _;

/// A simple right-ragged table: header row plus data rows.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title (printed above) and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{c:>w$}", w = *w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Prints the table to stdout and, when `csv_dir` is set, writes
    /// `<csv_dir>/<slug>.csv`.
    pub fn emit(&self, csv_dir: Option<&std::path::Path>) {
        println!("{}", self.render());
        if let Some(dir) = csv_dir {
            let _ = std::fs::create_dir_all(dir);
            let slug: String = self
                .title
                .chars()
                .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect();
            let path = dir.join(format!("{slug}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(csv written to {})\n", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("     name   value"));
        assert!(r.contains("long-name  123456"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\",\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
