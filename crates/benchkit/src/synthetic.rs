//! The synthetic array benchmark of Fig 5 (§V).
//!
//! Each transaction performs a configurable number of memory accesses over
//! a large array, with a tunable CPU-bound loop of `iter` register
//! operations between consecutive accesses (the paper's dial between
//! memory-bound and CPU-bound workloads):
//!
//! * **read-only** (Fig 5a): uniform random reads; run with transactional
//!   futures, with *plain* futures (no TM — isolates JTF's semantic
//!   overhead), or without futures;
//! * **contended** (Fig 5b/5c): a variable-length read prefix followed by
//!   10 updates on 20 hot-spot items, selected uniformly with replacement.
//!
//! Parallelization splits the access loop across `j - 1` futures plus the
//! continuation, exactly the structure the paper evaluates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtf::{Rtf, Tx};
use rtf_plainfut::PlainExecutor;
use rtf_tstructs::TArray;
use std::sync::Arc;

/// Workload shape (paper parameters).
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Array size (paper: 1M elements).
    pub array_size: usize,
    /// Memory accesses per transaction ("transaction length").
    pub tx_len: usize,
    /// CPU-bound loop iterations between two accesses (`iter`).
    pub iters_between: u32,
    /// Hot-spot set size for the contended variant (paper: 20).
    pub hot_spots: usize,
    /// Updates per contended transaction (paper: 10).
    pub hot_writes: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            array_size: 1 << 20,
            tx_len: 1000,
            iters_between: 100,
            hot_spots: 20,
            hot_writes: 10,
        }
    }
}

/// The populated array plus a non-transactional twin for the plain-future
/// baseline.
pub struct SyntheticArray {
    /// Workload shape.
    pub cfg: SyntheticConfig,
    arr: TArray<u64>,
    twin: Arc<Vec<u64>>,
}

/// The CPU-bound `iter` loop: register arithmetic the optimizer cannot
/// remove.
#[inline]
pub fn cpu_work(iters: u32) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..iters {
        acc = std::hint::black_box(acc.rotate_left(7) ^ (i as u64).wrapping_mul(0xff51_afd7));
    }
    acc
}

impl SyntheticArray {
    /// Builds the array (element `i` holds `i`).
    pub fn new(cfg: SyntheticConfig) -> SyntheticArray {
        SyntheticArray {
            cfg,
            arr: TArray::new(cfg.array_size, |i| i as u64),
            twin: Arc::new((0..cfg.array_size as u64).collect()),
        }
    }

    /// A view over the same data with a different workload shape (lets a
    /// parameter sweep reuse one expensive array allocation). The array
    /// size cannot change.
    pub fn with_config(&self, cfg: SyntheticConfig) -> SyntheticArray {
        assert_eq!(cfg.array_size, self.arr.len(), "array size is fixed at construction");
        SyntheticArray { cfg, arr: self.arr.clone(), twin: Arc::clone(&self.twin) }
    }

    /// One read-only transaction parallelized across `futures`
    /// transactional futures (0 = no futures). Returns a checksum.
    pub fn run_read_only(&self, tm: &Rtf, futures: usize, seed: u64) -> u64 {
        let cfg = self.cfg;
        let arr = self.arr.clone();
        tm.atomic_ro(move |tx| {
            if futures == 0 {
                return scan_chunk(tx, &arr, cfg, seed, cfg.tx_len);
            }
            let chunk = cfg.tx_len.div_ceil(futures + 1);
            let mut handles = Vec::new();
            for f in 1..=futures {
                let arr = arr.clone();
                let len = chunk.min(cfg.tx_len.saturating_sub(f * chunk));
                handles.push(
                    tx.submit(move |tx| {
                        scan_chunk(tx, &arr, cfg, seed.wrapping_add(f as u64), len)
                    }),
                );
            }
            let mut acc = scan_chunk(tx, &arr, cfg, seed, chunk);
            for h in &handles {
                acc = acc.wrapping_add(*tx.eval(h));
            }
            acc
        })
    }

    /// The plain-future baseline of Fig 5a: identical access/CPU pattern,
    /// no concurrency control.
    pub fn run_read_only_plain(&self, ex: &PlainExecutor, futures: usize, seed: u64) -> u64 {
        let cfg = self.cfg;
        if futures == 0 {
            return plain_chunk(&self.twin, cfg, seed, cfg.tx_len);
        }
        let chunk = cfg.tx_len.div_ceil(futures + 1);
        let mut handles = Vec::new();
        for f in 1..=futures {
            let twin = Arc::clone(&self.twin);
            let len = chunk.min(cfg.tx_len.saturating_sub(f * chunk));
            handles
                .push(ex.submit(move || plain_chunk(&twin, cfg, seed.wrapping_add(f as u64), len)));
        }
        let mut acc = plain_chunk(&self.twin, cfg, seed, chunk);
        for h in &handles {
            acc = acc.wrapping_add(ex.eval(h));
        }
        acc
    }

    /// One contended transaction (Fig 5b/5c): read prefix of `tx_len`
    /// accesses (parallelized), then `hot_writes` updates over the
    /// `hot_spots` first elements, uniformly with replacement.
    pub fn run_contended(&self, tm: &Rtf, futures: usize, seed: u64) -> u64 {
        tm.atomic(self.contended_body(futures, seed))
    }

    /// The contended transaction as a standalone body closure, so callers
    /// can drive the *same* workload through any front-end — blocking
    /// `atomic`/`run` or the async `run_async` (the A6 experiment measures
    /// exactly that sync-vs-async overhead).
    pub fn contended_body(
        &self,
        futures: usize,
        seed: u64,
    ) -> impl Fn(&mut Tx) -> u64 + Send + 'static {
        let cfg = self.cfg;
        let arr = self.arr.clone();
        move |tx| {
            let acc = if futures == 0 {
                scan_chunk(tx, &arr, cfg, seed, cfg.tx_len)
            } else {
                let chunk = cfg.tx_len.div_ceil(futures + 1);
                let mut handles = Vec::new();
                for f in 1..=futures {
                    let arr = arr.clone();
                    let len = chunk.min(cfg.tx_len.saturating_sub(f * chunk));
                    handles.push(tx.submit(move |tx| {
                        scan_chunk(tx, &arr, cfg, seed.wrapping_add(f as u64), len)
                    }));
                }
                let mut acc = scan_chunk(tx, &arr, cfg, seed, chunk);
                for h in &handles {
                    acc = acc.wrapping_add(*tx.eval(h));
                }
                acc
            };
            // Hot-spot updates in the continuation (after the joins).
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1407_5EED);
            for _ in 0..cfg.hot_writes {
                let i = rng.gen_range(0..cfg.hot_spots);
                let v = *arr.get(tx, i);
                arr.set(tx, i, v.wrapping_add(acc | 1));
            }
            acc
        }
    }

    /// Sum of the hot-spot elements (post-run verification).
    pub fn hot_sum(&self) -> u64 {
        (0..self.cfg.hot_spots)
            .map(|i| *self.arr.slot(i).read_committed())
            .fold(0, u64::wrapping_add)
    }
}

/// `len` random reads with `iters_between` CPU work between them.
fn scan_chunk(tx: &mut Tx, arr: &TArray<u64>, cfg: SyntheticConfig, seed: u64, len: usize) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0u64;
    for _ in 0..len {
        let idx = rng.gen_range(0..cfg.array_size);
        acc = acc.wrapping_add(*arr.get(tx, idx));
        acc = acc.wrapping_add(cpu_work(cfg.iters_between));
    }
    acc
}

/// The same loop without transactions.
fn plain_chunk(twin: &[u64], cfg: SyntheticConfig, seed: u64, len: usize) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0u64;
    for _ in 0..len {
        let idx = rng.gen_range(0..cfg.array_size);
        acc = acc.wrapping_add(std::hint::black_box(twin[idx]));
        acc = acc.wrapping_add(cpu_work(cfg.iters_between));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            array_size: 1024,
            tx_len: 64,
            iters_between: 4,
            hot_spots: 8,
            hot_writes: 4,
        }
    }

    #[test]
    fn read_only_checksum_deterministic_per_shape() {
        // Each chunk draws from its own RNG stream, so the checksum depends
        // on the futures count — but for a fixed (seed, futures) shape it
        // must be exactly reproducible.
        let tm = Rtf::builder().workers(2).build();
        let s = SyntheticArray::new(small());
        assert_eq!(s.run_read_only(&tm, 0, 42), s.run_read_only(&tm, 0, 42));
        assert_eq!(s.run_read_only(&tm, 3, 42), s.run_read_only(&tm, 3, 42));
        assert_ne!(s.run_read_only(&tm, 0, 42), s.run_read_only(&tm, 0, 43));
    }

    #[test]
    fn plain_baseline_matches_transactional_checksum() {
        let tm = Rtf::builder().workers(2).build();
        let ex = PlainExecutor::new(2);
        let s = SyntheticArray::new(small());
        assert_eq!(s.run_read_only(&tm, 2, 7), s.run_read_only_plain(&ex, 2, 7));
    }

    #[test]
    fn contended_run_commits_and_mutates_hot_spots() {
        let tm = Rtf::builder().workers(2).build();
        let s = SyntheticArray::new(small());
        let before = s.hot_sum();
        for i in 0..10 {
            s.run_contended(&tm, 2, i);
        }
        assert_ne!(before, s.hot_sum());
        assert_eq!(tm.stats().commits(), 10);
    }

    #[test]
    fn cpu_work_scales_and_is_pure() {
        assert_eq!(cpu_work(10), cpu_work(10));
        assert_ne!(cpu_work(10), cpu_work(11));
    }
}
