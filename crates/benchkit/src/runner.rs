//! Client-thread orchestration for throughput/latency runs.
//!
//! The paper's `i*j` thread-allocation notation: `i` client threads each
//! run top-level transactions parallelized across `j` threads (`j - 1`
//! futures plus the continuation). Here the client threads are real OS
//! threads issuing transactions; the futures run on the runtime's worker
//! pool, so a configuration's total thread budget is
//! `clients + worker-pool size`.

use std::time::Instant;

use crate::measure::{LatencyStats, RunMeasurement};

/// Per-run report (measurement; TM counter deltas are diffed by callers).
pub type ClientReport = RunMeasurement;

/// Runs `clients` threads, each executing `ops_per_client` operations via
/// `op(client_idx, op_idx)`, and measures wall time plus per-op latency.
pub fn run_clients(
    clients: usize,
    ops_per_client: usize,
    op: impl Fn(usize, usize) + Sync,
) -> RunMeasurement {
    assert!(clients > 0, "at least one client");
    let begin = Instant::now();
    let all_samples: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let op = &op;
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(ops_per_client);
                    for i in 0..ops_per_client {
                        let t0 = Instant::now();
                        op(c, i);
                        samples.push(t0.elapsed().as_nanos() as u64);
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let elapsed = begin.elapsed();
    let samples: Vec<u64> = all_samples.into_iter().flatten().collect();
    RunMeasurement {
        ops: (clients * ops_per_client) as u64,
        elapsed,
        latency: LatencyStats::from_samples(samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_exactly_the_requested_ops() {
        let counter = AtomicU64::new(0);
        let m = run_clients(3, 40, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 120);
        assert_eq!(m.ops, 120);
        assert_eq!(m.latency.count, 120);
        assert!(m.throughput() > 0.0);
    }

    #[test]
    fn client_and_op_indices_cover_space() {
        use std::sync::Mutex;
        let seen = Mutex::new(std::collections::HashSet::new());
        run_clients(2, 5, |c, i| {
            seen.lock().unwrap().insert((c, i));
        });
        assert_eq!(seen.lock().unwrap().len(), 10);
    }
}
