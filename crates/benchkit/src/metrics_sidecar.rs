//! The `<figure>.metrics.json` sidecar every harness binary writes next to
//! its CSVs — one shared implementation instead of per-binary boilerplate.
//!
//! A sidecar is one [`TxObs`] observer attached to *every* TM a figure's
//! sweep builds (hundreds of short-lived instances for the big sweeps), so
//! the final JSON aggregates the whole figure: latency histograms, abort
//! hotspots, raw counters.
//!
//! The sidecar is also where the **live telemetry pipeline** plugs into the
//! harnesses: when the environment asks for it (`RTF_METRICS_STREAM` /
//! `RTF_PROM_TEXT` / `RTF_PROM_ADDR`), [`MetricsSidecar::new`] starts a
//! [`LiveExporter`] over the shared observer, streaming snapshots while the
//! sweep runs. The exporter is stopped — emitting one final tick — *before*
//! the sidecar file is written, which is what makes the last streamed line
//! reconcile exactly with the final JSON (`metrics_check --require-live`
//! enforces this). The exporter lives here and not per-TM because sweeps
//! build a fresh TM per cell: a per-TM exporter would cover only the first
//! cell and truncate the stream.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use rtf::{LiveConfig, LiveExporter, ObsConfig, TxObs};

/// One observer (plus the optional env-driven live exporter) shared by
/// every TM a figure binary builds.
pub struct MetricsSidecar {
    obs: Arc<TxObs>,
    figure: String,
    /// Env-driven live sampler; taken (and stopped, with a final
    /// reconciling tick) by [`MetricsSidecar::finish_live`].
    live: Mutex<Option<LiveExporter>>,
}

impl MetricsSidecar {
    /// Creates the sidecar observer and, when the environment configures a
    /// stream destination, starts the live exporter over it. Spans stay
    /// off: the sidecar wants aggregates, and the sweeps build hundreds of
    /// short-lived TMs.
    pub fn new(figure: &str) -> MetricsSidecar {
        let obs = TxObs::new(ObsConfig { spans: false, ..ObsConfig::default() });
        let live = LiveConfig::from_env().and_then(|cfg| {
            match LiveExporter::start(Arc::clone(&obs), cfg) {
                Ok(live) => Some(live),
                Err(e) => {
                    eprintln!("{figure}: live metrics exporter failed to start: {e}");
                    None
                }
            }
        });
        MetricsSidecar { obs, figure: figure.to_string(), live: Mutex::new(live) }
    }

    /// The shared observer (attach to every TM the sweep builds).
    pub fn obs(&self) -> &Arc<TxObs> {
        &self.obs
    }

    /// The figure name (used as the sidecar file stem).
    pub fn figure(&self) -> &str {
        &self.figure
    }

    /// Stops the live exporter, if one is running: emits its final tick so
    /// the stream's last line matches the snapshot the write paths export.
    /// Idempotent; called implicitly by [`MetricsSidecar::write`] and
    /// [`MetricsSidecar::write_to`].
    pub fn finish_live(&self) {
        if let Some(mut live) = self.live.lock().take() {
            live.stop();
        }
    }

    /// Writes `<csv_dir>/<figure>.metrics.json` (when a CSV directory was
    /// requested) and prints a one-line summary either way.
    pub fn write(&self, csv_dir: Option<&Path>) {
        self.finish_live();
        let snap = self.obs.metrics();
        let c = &snap.counters;
        eprintln!(
            "{}: {} commits, {} top-level aborts (rate {:.3}), commit p50/p99 {}/{} ns",
            self.figure,
            c.commits(),
            c.top_aborts(),
            c.top_abort_rate(),
            snap.commit.p50,
            snap.commit.p99,
        );
        let Some(dir) = csv_dir else { return };
        let path = dir.join(format!("{}.metrics.json", self.figure));
        let write = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, snap.to_json().pretty()));
        match write {
            Ok(()) => println!("(metrics sidecar written to {})\n", path.display()),
            Err(e) => eprintln!("metrics sidecar {} not written: {e}", path.display()),
        }
    }

    /// Writes the sidecar JSON to an explicit path (binaries with a
    /// `--metrics FILE` flag rather than a CSV directory).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        self.finish_live();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.obs.metrics().to_json().pretty())
    }
}
