//! Measurement primitives: latency percentiles and run summaries.

use std::time::Duration;

/// Latency distribution of a batch of operations.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Mean, nanoseconds.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Computes the distribution from raw samples (sorts in place).
    pub fn from_samples(mut samples: Vec<u64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|s| *s as u128).sum();
        let pct = |p: f64| samples[(((samples.len() - 1) as f64) * p) as usize];
        LatencyStats {
            count,
            mean_ns: (sum as f64) / (count as f64),
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            max_ns: *samples.last().expect("non-empty"),
        }
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }
}

/// Summary of one measured run.
#[derive(Clone, Debug)]
pub struct RunMeasurement {
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Per-operation latency distribution.
    pub latency: LatencyStats,
}

impl RunMeasurement {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Formats a float compactly for tables (3 significant-ish digits).
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn throughput_math() {
        let m = RunMeasurement {
            ops: 500,
            elapsed: Duration::from_millis(250),
            latency: LatencyStats::default(),
        };
        assert!((m.throughput() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(1.23456), "1.235");
    }
}
