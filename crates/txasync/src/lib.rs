//! Async front-end for the `rtf` transactional-futures runtime.
//!
//! Three pieces, all executor-agnostic (no tokio — the stack vendors its
//! own dependencies, and transactions only need `Waker` semantics):
//!
//! * re-exports of the core async entry points ([`Rtf::run_async`],
//!   [`Rtf::run_ticketed_async`], [`TxRun`], and `TxFuture`'s `IntoFuture`)
//!   so async callers depend on one crate;
//! * a minimal single-threaded executor — [`block_on`] and
//!   [`block_on_all`] — built on `std::task::Wake` + thread park/unpark,
//!   used by the tests, the equivalence suite and the chaos harness;
//! * [`AsyncStm`], a findex-style adapter (`batch_read` /
//!   `guarded_write`) exposing a word-addressed transactional memory as
//!   plain async atomic operations.
//!
//! The executor matters more than it looks: the acceptance property of the
//! async front-end is that a multi-future transaction tree completes on a
//! *single-threaded* executor over a *zero-worker* pool — every poll helps
//! the pool instead of blocking, so no OS thread ever parks on transaction
//! state. [`block_on`] is deliberately the simplest executor that can
//! demonstrate this.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

pub use rtf::{Rtf, TxError, TxRun};
pub use rtf_txengine::{TxData, VBox};

/// Park-based waker: `wake` latches a flag and unparks the executor
/// thread. The flag distinguishes real wakeups from the spurious unparks
/// `std::thread::park` permits.
struct ThreadWaker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

impl ThreadWaker {
    fn pair() -> (Arc<ThreadWaker>, Waker) {
        let tw = Arc::new(ThreadWaker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        });
        let waker = Waker::from(Arc::clone(&tw));
        (tw, waker)
    }

    /// Parks until the next `wake` since the last call (consumes the flag).
    fn wait(&self) {
        while !self.notified.swap(false, Ordering::Acquire) {
            std::thread::park();
        }
    }
}

/// Drives `fut` to completion on the calling thread.
///
/// Between polls the thread parks on the waker — it holds no locks and
/// spins on nothing, so a future that needs another thread's progress
/// (e.g. a worker-pool transaction) costs nothing while pending.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let (tw, waker) = ThreadWaker::pair();
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => tw.wait(),
        }
    }
}

/// Drives a batch of futures concurrently on the calling thread, returning
/// their outputs in input order.
///
/// All futures share one waker; each wakeup round re-polls every
/// unfinished future (a spurious poll is always legal). Rounds poll in
/// input order, so ordered-lane batches whose commit order matches their
/// input order resolve without any worker threads at all.
pub fn block_on_all<F: Future>(futs: Vec<F>) -> Vec<F::Output> {
    /// One future in flight plus its output slot.
    type Slot<F> = (Pin<Box<F>>, Option<<F as Future>::Output>);
    let (tw, waker) = ThreadWaker::pair();
    let mut cx = Context::from_waker(&waker);
    let mut slots: Vec<Slot<F>> = futs.into_iter().map(|f| (Box::pin(f), None)).collect();
    loop {
        let mut pending = false;
        for (fut, out) in slots.iter_mut() {
            if out.is_none() {
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(r) => *out = Some(r),
                    Poll::Pending => pending = true,
                }
            }
        }
        if !pending {
            return slots
                .into_iter()
                .map(|(_, out)| out.expect("finished future lost its output"))
                .collect();
        }
        tw.wait();
    }
}

/// A findex-style async word store over the transactional runtime: a fixed
/// array of optional words addressed by index, with the two operations the
/// Cosmian findex `Stm` trait shapes its protocol around — a snapshot
/// batch read and a compare-guarded batch write. Every operation is one
/// top-level transaction.
pub struct AsyncStm<V: TxData + Clone + PartialEq> {
    tm: Rtf,
    slots: Arc<Vec<VBox<Option<V>>>>,
}

impl<V: TxData + Clone + PartialEq> AsyncStm<V> {
    /// An empty store with `len` addressable words on runtime `tm`.
    pub fn new(tm: Rtf, len: usize) -> AsyncStm<V> {
        let slots = Arc::new((0..len).map(|_| VBox::new(None)).collect::<Vec<_>>());
        AsyncStm { tm, slots }
    }

    /// Number of addressable words.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store has no addressable words.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads the words at `addrs` in one atomic snapshot.
    ///
    /// # Panics
    ///
    /// The returned transaction panics when polled if any address is out
    /// of bounds.
    pub fn batch_read(
        &self,
        addrs: Vec<usize>,
    ) -> impl Future<Output = Result<Vec<Option<V>>, TxError>> + Send {
        let slots = Arc::clone(&self.slots);
        self.tm.run_async(move |tx| {
            addrs.iter().map(|&a| tx.read(&slots[a]).as_ref().clone()).collect()
        })
    }

    /// Writes `tasks` atomically iff the word currently stored at the
    /// guard address equals the guard word; always returns the guard
    /// address's current word (so a loser learns what beat it).
    ///
    /// # Panics
    ///
    /// The returned transaction panics when polled if any address is out
    /// of bounds.
    pub fn guarded_write(
        &self,
        guard: (usize, Option<V>),
        tasks: Vec<(usize, V)>,
    ) -> impl Future<Output = Result<Option<V>, TxError>> + Send {
        let slots = Arc::clone(&self.slots);
        self.tm.run_async(move |tx| {
            let current = tx.read(&slots[guard.0]).as_ref().clone();
            if current == guard.1 {
                for (a, w) in &tasks {
                    tx.write(&slots[*a], Some(w.clone()));
                }
            }
            current
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_drives_a_plain_future() {
        assert_eq!(block_on(async { 2 + 2 }), 4);
    }

    #[test]
    fn multi_future_tree_completes_on_one_thread_with_no_workers() {
        // The acceptance property: zero workers means nothing but the
        // poll path's helping can ever run the transaction or its
        // futures, and block_on never busy-blocks an OS thread on
        // transaction state.
        let tm = Rtf::builder().workers(0).build();
        let xs: Vec<VBox<u64>> = (0..4u64).map(VBox::new).collect();
        let got = block_on(tm.run_async({
            let xs = xs.clone();
            move |tx| {
                let futs: Vec<_> = xs
                    .iter()
                    .map(|x| {
                        tx.submit({
                            let x = x.clone();
                            move |tx| *tx.read(&x) * 10
                        })
                    })
                    .collect();
                futs.iter().map(|f| *tx.eval(f)).sum::<u64>()
            }
        }))
        .unwrap();
        assert_eq!(got, (1 + 2 + 3) * 10);
    }

    #[test]
    fn block_on_all_resolves_a_batch_in_input_order() {
        let tm = Rtf::builder().workers(0).build();
        let x = VBox::new(0u64);
        let futs: Vec<_> = (0..8u64)
            .map(|i| {
                tm.run_async({
                    let x = x.clone();
                    move |tx| {
                        let v = *tx.read(&x);
                        tx.write(&x, v + i);
                        i
                    }
                })
            })
            .collect();
        let outs = block_on_all(futs);
        assert_eq!(
            outs.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        assert_eq!(*x.read_committed(), (0..8).sum::<u64>());
    }

    #[test]
    fn ticketed_batch_commits_in_ticket_order_on_one_thread() {
        let tm = Rtf::builder().workers(0).ordered(1).build();
        let x = VBox::new(1u64);
        // Each transaction multiplies then adds its index; the result is
        // order-sensitive, so a wrong commit order shows in the value.
        let futs: Vec<_> = (1..=4u64)
            .map(|i| {
                let ticket = tm.ticket();
                tm.run_ticketed_async(ticket, {
                    let x = x.clone();
                    move |tx| {
                        let v = *tx.read(&x);
                        tx.write(&x, v * 2 + i);
                    }
                })
            })
            .collect();
        for r in block_on_all(futs) {
            r.unwrap();
        }
        // ((((1*2+1)*2+2)*2+3)*2+4 = 42
        assert_eq!(*x.read_committed(), 42);
        assert_eq!(tm.stats().ordered_commits, 4);
    }

    #[test]
    fn async_stm_guarded_write_is_compare_and_batch() {
        let tm = Rtf::builder().workers(0).build();
        let stm: AsyncStm<u64> = AsyncStm::new(tm, 8);
        // Guard matches (empty slot): the batch lands.
        let prev = block_on(stm.guarded_write((0, None), vec![(0, 10), (1, 11)])).unwrap();
        assert_eq!(prev, None);
        // Stale guard: nothing lands, the winner's word comes back.
        let prev = block_on(stm.guarded_write((0, None), vec![(2, 99)])).unwrap();
        assert_eq!(prev, Some(10));
        let words = block_on(stm.batch_read(vec![0, 1, 2, 7])).unwrap();
        assert_eq!(words, vec![Some(10), Some(11), None, None]);
    }

    #[test]
    fn txfuture_into_future_awaits_inside_an_async_block() {
        let tm = Rtf::builder().workers(1).build();
        let fut = tm.spawn_future(|_tx| 7u64);
        let got = block_on(async move { fut.await });
        assert_eq!(*got.unwrap(), 7);
    }
}
