//! Top-level transactions (paper §III-A).
//!
//! A top-level transaction takes its snapshot version from the global clock
//! at begin time. Writes are buffered in a private write-set; reads check
//! the write-set first and otherwise return the most recent committed
//! version at or below the snapshot. Read-write transactions validate their
//! read-set at commit and install their writes through the commit chain;
//! read-only transactions commit immediately with no validation (§IV-E —
//! multi-versioning guarantees their snapshot is consistent, if possibly
//! stale).
//!
//! Both reads and commit-time validation run through the shared engine
//! pipeline (`rtf-txengine`); this module contributes only the top-level
//! [`Visibility`] policy — [`TopVisibility`]: tentative entries are never
//! visible, the local buffer is the private write-set, and the permanent
//! lookup is bounded by the snapshot (or unbounded, for validation).
//!
//! This module is both the *baseline TM* used by the evaluation (the
//! "no futures" configurations of Figs 5 and 6) and the foundation the
//! `rtf` core crate builds transaction trees upon.

use std::sync::Arc;

use rtf_txbase::{clock::Registration, TmStats, Version, WriteToken};
use rtf_txengine::{
    downcast, erase, read_pin, resolve_read, CellId, Event, ReadPath, ReadPin, ReadRecord, ReadSet,
    Source, TentativeEntry, TxData, VBox, VBoxCell, Val, Visibility, WriteSet,
};

use crate::commit::Conflict;
use crate::MvStm;

/// The top-level visibility policy: no tentative entry is ever visible
/// (top-level transactions read only committed state plus their own
/// write-set), the local buffer is the private write-set, and the permanent
/// lookup is bounded by `snapshot`.
pub struct TopVisibility<'a> {
    snapshot: Version,
    writes: Option<&'a WriteSet>,
}

impl<'a> TopVisibility<'a> {
    /// Policy for in-transaction reads at `snapshot`, consulting `writes`.
    pub fn reads(snapshot: Version, writes: &'a WriteSet) -> Self {
        TopVisibility { snapshot, writes: Some(writes) }
    }

    /// Policy for commit-time validation: re-resolving a read against the
    /// *latest* committed state. A read stays valid iff it would observe
    /// the same write token again, which holds exactly when no version
    /// newer than the reader's snapshot committed to that cell — the JVSTM
    /// validation rule, expressed through the engine's token comparison.
    pub fn latest() -> Self {
        TopVisibility { snapshot: Version::MAX, writes: None }
    }
}

impl Visibility for TopVisibility<'_> {
    fn tentative(&self, _entry: &TentativeEntry) -> Option<Source> {
        None
    }

    fn local(&self, id: CellId) -> Option<(Val, WriteToken)> {
        self.writes.and_then(|w| w.get(id))
    }

    fn snapshot(&self) -> Version {
        self.snapshot
    }

    fn scans_tentative(&self) -> bool {
        false
    }
}

/// A running top-level transaction.
///
/// Obtained from [`MvStm::atomic`] / [`MvStm::atomic_ro`] (which retry on
/// conflict) or from [`MvStm::begin`] for manual control.
pub struct TopTxn<'tm> {
    tm: &'tm MvStm,
    start: Version,
    _reg: Registration<'tm>,
    reads: ReadSet,
    writes: WriteSet,
    /// Declared read-only: reads skip read-set recording, writes panic.
    ro_mode: bool,
    /// Read-path counts accumulated locally and flushed as one
    /// [`Event::ReadPathBatch`] at commit/decomposition — per-read shared
    /// counters would serialize the lock-free read path (see `TmStats`).
    reads_fast: u64,
    reads_slow: u64,
    /// Epoch pin held for the transaction's lifetime, so every version-list
    /// read inside it pins reentrantly — a thread-local depth bump instead
    /// of the full era-advertisement fence ([`ReadPin`]).
    _pin: ReadPin,
}

impl<'tm> TopTxn<'tm> {
    pub(crate) fn new(tm: &'tm MvStm, ro_mode: bool) -> Self {
        // Register BEFORE taking the snapshot: the GC watermark must cover
        // the version this transaction will read. Registering a (possibly
        // slightly older) clock value first guarantees watermark <= start,
        // so every version in (watermark, start] plus the newest one at or
        // below the watermark — everything a reader at `start` can need —
        // is retained.
        let reg = tm.registry().register(tm.clock().now());
        let start = tm.clock().now();
        TopTxn {
            tm,
            start,
            _reg: reg,
            reads: ReadSet::new(),
            writes: WriteSet::new(),
            ro_mode,
            reads_fast: 0,
            reads_slow: 0,
            _pin: read_pin(),
        }
    }

    /// Flushes the locally accumulated read-path counts as one event.
    fn flush_read_paths(&mut self) {
        if self.reads_fast > 0 || self.reads_slow > 0 {
            self.tm
                .sink()
                .event(Event::ReadPathBatch { fast: self.reads_fast, slow: self.reads_slow });
            self.reads_fast = 0;
            self.reads_slow = 0;
        }
    }

    /// The snapshot version this transaction reads at.
    #[inline]
    pub fn snapshot(&self) -> Version {
        self.start
    }

    /// Whether any write was buffered so far.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Transactional read.
    pub fn read<T: TxData>(&mut self, vbox: &VBox<T>) -> Arc<T> {
        downcast(self.read_cell(vbox.cell()))
    }

    /// Transactional write (replaces the box's value).
    pub fn write<T: TxData>(&mut self, vbox: &VBox<T>, value: T) {
        self.write_cell(vbox.cell(), erase(value));
    }

    /// Untyped read (used by the core crate and data structures).
    pub fn read_cell(&mut self, cell: &Arc<VBoxCell>) -> Val {
        let r = resolve_read(&TopVisibility::reads(self.start, &self.writes), cell);
        match r.path {
            ReadPath::Fast => self.reads_fast += 1,
            ReadPath::Slow => self.reads_slow += 1,
        }
        // Reads served from the write-set carry no validation obligation;
        // everything else is a permanent-snapshot observation to validate.
        if r.source == Source::Permanent && !self.ro_mode {
            self.reads.record(ReadRecord {
                cell: Arc::clone(cell),
                token: r.token,
                source: r.source,
                epoch: 0,
            });
        }
        r.value
    }

    /// Untyped write.
    pub fn write_cell(&mut self, cell: &Arc<VBoxCell>, value: Val) {
        assert!(!self.ro_mode, "write inside a transaction declared read-only (atomic_ro)");
        self.writes.put(cell, value);
    }

    /// Attempts to commit. On success returns the commit version (`None`
    /// for the read-only fast path, which consumes no version number).
    pub fn try_commit(mut self) -> Result<Option<Version>, Conflict> {
        self.flush_read_paths();
        let sink = self.tm.sink();
        if self.writes.is_empty() {
            // Read-only fast path: the snapshot was consistent by
            // construction; commit without validation (§IV-E).
            sink.event(Event::TopRoCommit);
            return Ok(None);
        }
        let begun = std::time::Instant::now();
        match self.tm.chain().try_commit(
            &self.reads,
            self.writes.into_writes(),
            self.tm.clock(),
            self.tm.registry(),
            sink.as_ref(),
        ) {
            Ok(v) => {
                sink.event(Event::TopCommitNs(begun.elapsed().as_nanos() as u64));
                sink.event(Event::TopCommit);
                Ok(Some(v))
            }
            Err(c) => {
                sink.event(Event::TopValidationAbort);
                Err(c)
            }
        }
    }

    /// Decomposes the transaction into raw parts (used by the `rtf` core
    /// crate, whose tree roots extend this read/write-set bookkeeping).
    pub fn into_parts(mut self) -> (Version, ReadSet, WriteSet) {
        self.flush_read_paths();
        (self.start, self.reads, self.writes)
    }

    /// Statistics of the owning TM.
    pub fn stats(&self) -> &Arc<TmStats> {
        self.tm.stats_arc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MvStm;

    #[test]
    fn atomic_read_write_roundtrip() {
        let tm = MvStm::new();
        let b = VBox::new(1u64);
        let out = tm.atomic(|tx| {
            let v = *tx.read(&b);
            tx.write(&b, v + 10);
            *tx.read(&b)
        });
        assert_eq!(out, 11);
        assert_eq!(*b.read_committed(), 11);
    }

    #[test]
    fn snapshot_isolation_within_txn() {
        let tm = MvStm::new();
        let a = VBox::new(5u64);
        let b = VBox::new(7u64);
        tm.atomic(|tx| {
            let x = *tx.read(&a);
            let y = *tx.read(&b);
            assert_eq!(x + y, 12);
        });
    }

    #[test]
    fn read_your_own_writes() {
        let tm = MvStm::new();
        let b = VBox::new(0u64);
        tm.atomic(|tx| {
            tx.write(&b, 42);
            assert_eq!(*tx.read(&b), 42);
            tx.write(&b, 43);
            assert_eq!(*tx.read(&b), 43);
        });
        assert_eq!(*b.read_committed(), 43);
    }

    #[test]
    fn conflicting_increments_retry_to_correctness() {
        let tm = Arc::new(MvStm::new());
        let b = VBox::new(0u64);
        let threads = 4;
        let per = 250;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tm = Arc::clone(&tm);
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..per {
                        tm.atomic(|tx| {
                            let v = *tx.read(&b);
                            tx.write(&b, v + 1);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*b.read_committed(), (threads * per) as u64);
        let snap = tm.stats().snapshot();
        assert_eq!(snap.top_commits, (threads * per) as u64);
    }

    #[test]
    fn read_only_fast_path_counts() {
        let tm = MvStm::new();
        let b = VBox::new(3u64);
        let v = tm.atomic(|tx| *tx.read(&b));
        assert_eq!(v, 3);
        let snap = tm.stats().snapshot();
        assert_eq!(snap.top_ro_commits, 1);
        assert_eq!(snap.top_commits, 0);
    }

    #[test]
    fn atomic_ro_reads_consistent_snapshot() {
        let tm = MvStm::new();
        let b = VBox::new(3u64);
        let v = tm.atomic_ro(|tx| *tx.read(&b));
        assert_eq!(v, 3);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn atomic_ro_rejects_writes() {
        let tm = MvStm::new();
        let b = VBox::new(3u64);
        tm.atomic_ro(|tx| tx.write(&b, 4));
    }

    #[test]
    fn manual_begin_commit() {
        let tm = MvStm::new();
        let b = VBox::new(0u64);
        let mut tx = tm.begin();
        tx.write(&b, 17);
        let v = tx.try_commit().unwrap();
        assert_eq!(v, Some(1));
        assert_eq!(*b.read_committed(), 17);
    }

    #[test]
    fn manual_conflict_reported() {
        let tm = MvStm::new();
        let b = VBox::new(0u64);
        let mut t1 = tm.begin();
        let _ = *t1.read(&b);
        t1.write(&b, 1);
        tm.atomic(|tx| tx.write(&b, 2));
        assert!(t1.try_commit().is_err());
        assert_eq!(*b.read_committed(), 2);
    }

    #[test]
    fn writes_invisible_until_commit() {
        let tm = MvStm::new();
        let b = VBox::new(0u64);
        let mut t1 = tm.begin();
        t1.write(&b, 99);
        // A concurrent transaction must not see the buffered write.
        let seen = tm.atomic(|tx| *tx.read(&b));
        assert_eq!(seen, 0);
        t1.try_commit().unwrap();
        assert_eq!(*b.read_committed(), 99);
    }

    #[test]
    fn write_set_reads_are_not_validated() {
        // A transaction that only re-reads its own write survives a
        // concurrent commit to the same box (the read never touched the
        // permanent state).
        let tm = MvStm::new();
        let b = VBox::new(0u64);
        let mut t1 = tm.begin();
        t1.write(&b, 1);
        assert_eq!(*t1.read(&b), 1);
        tm.atomic(|tx| {
            let _ = *tx.read(&b);
        });
        assert!(t1.try_commit().is_ok(), "blind write must win");
        assert_eq!(*b.read_committed(), 1);
    }
}
